"""Novel-item candidate pools and evaluation positions.

A *novel* consumption at position ``t`` is one whose item does not occur
anywhere in the user's history before ``t`` (the complement of the RRC
window definition is "not in the window"; for candidate generation we
use the stricter never-consumed notion the paper applies to the novel
recommendation problem, whose candidate set is ``V − {v | v ∈ S_u}``).

Scoring the entire vocabulary for every query is wasteful and — at the
paper's Gowalla/Lastfm scale of ~10⁶ items — infeasible, so evaluation
follows the standard sampled protocol: rank the true novel item against
``n`` unconsumed distractors drawn from the training popularity
distribution (popularity-biased negatives are the harder, more realistic
choice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import EvaluationError
from repro.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class NovelEvaluationConfig:
    """Protocol knobs for sampled novel-item evaluation."""

    n_sampled_candidates: int = 100
    top_ns: Tuple[int, ...] = (1, 5, 10)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sampled_candidates <= 0:
            raise EvaluationError(
                f"n_sampled_candidates must be positive, "
                f"got {self.n_sampled_candidates}"
            )
        if not self.top_ns or any(n <= 0 for n in self.top_ns):
            raise EvaluationError(f"invalid top_ns {self.top_ns}")


def consumed_items_before(sequence: ConsumptionSequence, t: int) -> Set[int]:
    """Distinct items the user consumed strictly before position ``t``."""
    return set(sequence.items[:t].tolist())


def sample_novel_candidates(
    consumed: Set[int],
    n_items: int,
    n_candidates: int,
    random_state: RandomState = None,
    popularity: np.ndarray = None,
) -> List[int]:
    """Sample unconsumed distractor items.

    Parameters
    ----------
    consumed:
        Items to exclude (the user's history).
    n_items:
        Vocabulary size.
    n_candidates:
        How many distractors to draw (without replacement where
        possible).
    popularity:
        Optional unnormalized weights over all items; sampling is
        proportional to weight among unconsumed items. ``None`` draws
        uniformly.
    """
    if n_candidates <= 0:
        raise EvaluationError(f"n_candidates must be positive, got {n_candidates}")
    rng = ensure_rng(random_state)
    available = n_items - len(consumed)
    if available <= 0:
        return []
    n_candidates = min(n_candidates, available)

    if popularity is None:
        chosen: Set[int] = set()
        # Rejection sampling is fast when the consumed set is small
        # relative to the vocabulary (the realistic regime).
        attempts = 0
        while len(chosen) < n_candidates and attempts < 50 * n_candidates:
            draws = rng.integers(n_items, size=n_candidates)
            for item in draws.tolist():
                if item not in consumed:
                    chosen.add(int(item))
                    if len(chosen) == n_candidates:
                        break
            attempts += n_candidates
        if len(chosen) < n_candidates:
            pool = np.setdiff1d(
                np.arange(n_items), np.fromiter(consumed, dtype=np.int64, count=len(consumed))
            )
            extra = rng.choice(pool, n_candidates - len(chosen), replace=False)
            chosen.update(int(e) for e in extra)
        return sorted(chosen)

    weights = np.asarray(popularity, dtype=np.float64).copy()
    if weights.shape[0] != n_items:
        raise EvaluationError(
            f"popularity has {weights.shape[0]} entries for {n_items} items"
        )
    weights = np.maximum(weights, 0.0) + 1e-12  # keep unconsumed reachable
    if consumed:
        weights[np.fromiter(consumed, dtype=np.int64, count=len(consumed))] = 0.0
    total = weights.sum()
    if total <= 0:
        return []
    probabilities = weights / total
    chosen_array = rng.choice(
        n_items, size=n_candidates, replace=False, p=probabilities
    )
    return sorted(int(c) for c in chosen_array)


def iter_novel_evaluation_positions(
    sequence: ConsumptionSequence,
    boundary: int,
) -> Iterator[Tuple[int, Set[int]]]:
    """Yield ``(t, consumed_before_t)`` for each novel test consumption.

    A single pass maintains the consumed set incrementally, so the walk
    is linear in the sequence length.
    """
    consumed = set(sequence.items[:boundary].tolist())
    for t in range(boundary, len(sequence)):
        item = int(sequence[t])
        if item not in consumed:
            yield t, set(consumed)
        consumed.add(item)
