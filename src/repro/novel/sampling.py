"""Pre-sampling of novel-item training quadruples.

Mirrors the RRC pre-sampling of :mod:`repro.sampling.quadruples`, with
the paper's §4.3 reading: for novel recommendation the positive ``v_i``
is a *first-time* consumption, and the negatives ``v_j`` are drawn from
the items the user had not consumed either — "the number of negative
samples w.r.t. each positive sample ... is much larger compared with
that in RRC, [but] the training quadruple pre-sample strategy can
alleviate this issue."
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.exceptions import SamplingError
from repro.novel.candidates import sample_novel_candidates
from repro.rng import RandomState, ensure_rng
from repro.sampling.quadruples import QuadrupleSet


def sample_novel_quadruples(
    split: SplitDataset,
    window: Optional[WindowConfig] = None,
    n_negatives: int = 10,
    random_state: RandomState = None,
    popularity: Optional[np.ndarray] = None,
) -> QuadrupleSet:
    """Pre-sample the novel-item training set.

    For every first-time consumption ``x_t`` in each user's training
    prefix (``t >= 1``; the very first consumption has an empty history
    and carries no ranking signal against "other unconsumed items" —
    it is skipped only when the vocabulary offers no negatives),
    ``n_negatives`` unconsumed items are drawn as negatives.

    Parameters
    ----------
    popularity:
        Optional weights for popularity-biased negatives (harder
        training signal); ``None`` draws uniformly.

    Returns the same :class:`~repro.sampling.quadruples.QuadrupleSet`
    structure the RRC sampler produces, so the TS-PPR training loop and
    feature cache apply unchanged.
    """
    window = window or WindowConfig()
    if n_negatives <= 0:
        raise SamplingError(f"n_negatives must be positive, got {n_negatives}")
    rng = ensure_rng(random_state)

    users: List[int] = []
    positives: List[int] = []
    negatives: List[int] = []
    times: List[int] = []
    per_user: Dict[int, List[int]] = {}

    n_items = split.n_items
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        consumed: set = set()
        items = sequence.items[:boundary].tolist()
        for t, item in enumerate(items):
            if t >= 1 and item not in consumed:
                drawn = sample_novel_candidates(
                    consumed | {item},
                    n_items,
                    n_negatives,
                    random_state=rng,
                    popularity=popularity,
                )
                for negative in drawn:
                    index = len(users)
                    users.append(user)
                    positives.append(int(item))
                    negatives.append(int(negative))
                    times.append(t)
                    per_user.setdefault(user, []).append(index)
            consumed.add(item)

    if not users:
        raise SamplingError(
            "no novel training quadruples could be sampled; every training "
            "consumption repeats an earlier one"
        )
    return QuadrupleSet(
        users=np.asarray(users, dtype=np.int64),
        positives=np.asarray(positives, dtype=np.int64),
        negatives=np.asarray(negatives, dtype=np.int64),
        times=np.asarray(times, dtype=np.int64),
        per_user={
            user: np.asarray(indices, dtype=np.int64)
            for user, indices in per_user.items()
        },
    )
