"""Mixing RRC and novel recommendations — the paper's stated future work.

"Although it may actually be better to somehow mix the results from RRC
and novel item recommendation before presenting to users, we would like
to focus on RRC in this paper, and leave the mixture problem in our
future work." (Section 3.)

:class:`MixtureRecommender` implements the natural mixture: STREC
estimates the probability that the next consumption is a repeat; the
top-``k`` list allocates ``round(p · k)`` slots to the RRC model's
ranking over window candidates and the rest to the novel model's ranking
over sampled unconsumed items, interleaved repeat-side first when the
switch leans toward repetition.

:func:`evaluate_next_item` is the unified protocol: every test position
(repeat *or* novel) is a target; the candidate pool is the union of the
Ω-filtered window candidates and sampled unconsumed distractors; a hit
means the blended list contains the true next item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.exceptions import EvaluationError, NotFittedError
from repro.models.base import Recommender
from repro.models.strec import STRECClassifier
from repro.novel.candidates import (
    NovelEvaluationConfig,
    consumed_items_before,
    sample_novel_candidates,
)
from repro.rng import RandomState, ensure_rng
from repro.windows.repeat import candidate_items
from repro.windows.window import window_before


class MixtureRecommender:
    """STREC-routed blend of an RRC model and a novel-item model.

    Parameters
    ----------
    strec:
        Fitted repeat/novel switch.
    rrc_model:
        Fitted RRC recommender (scores window candidates).
    novel_model:
        Fitted novel recommender (scores unconsumed candidates).
    min_repeat_slots:
        Lower bound on RRC slots whenever STREC predicts a repeat —
        guards against the switch's probability being poorly calibrated.
    """

    name = "Mixture"

    def __init__(
        self,
        strec: STRECClassifier,
        rrc_model: Recommender,
        novel_model: Recommender,
        min_repeat_slots: int = 1,
    ) -> None:
        if not strec.is_fitted:
            raise NotFittedError("MixtureRecommender needs a fitted STREC")
        if not rrc_model.is_fitted or not novel_model.is_fitted:
            raise NotFittedError("MixtureRecommender needs fitted models")
        if min_repeat_slots < 0:
            raise EvaluationError(
                f"min_repeat_slots must be >= 0, got {min_repeat_slots}"
            )
        self.strec = strec
        self.rrc_model = rrc_model
        self.novel_model = novel_model
        self.min_repeat_slots = min_repeat_slots

    def repeat_probability(self, sequence, t: int) -> float:
        """STREC's estimate that the consumption at ``t`` is a repeat."""
        assert self.strec._model is not None  # is_fitted checked in init
        window = window_before(
            sequence, t, self.strec._window_config.window_size  # type: ignore[union-attr]
        )
        features = self.strec.window_features(window)[None, :]
        return float(self.strec._model.predict_proba(features)[0])

    def recommend(
        self,
        sequence,
        t: int,
        k: int,
        repeat_candidates: List[int],
        novel_candidates: List[int],
    ) -> List[int]:
        """The blended top-``k`` list at position ``t``.

        ``repeat_candidates``/``novel_candidates`` are supplied by the
        caller (the evaluation protocol or a serving layer), keeping this
        class a pure ranking combinator.
        """
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        probability = self.repeat_probability(sequence, t)
        repeat_slots = round(probability * k)
        if probability >= 0.5:
            repeat_slots = max(repeat_slots, self.min_repeat_slots)
        repeat_slots = min(repeat_slots, k, len(repeat_candidates))
        novel_slots = min(k - repeat_slots, len(novel_candidates))

        repeat_list = (
            self.rrc_model.recommend(sequence, repeat_candidates, t, k)
            if repeat_candidates
            else []
        )
        novel_list = (
            self.novel_model.recommend(sequence, novel_candidates, t, k)
            if novel_candidates
            else []
        )

        blended: List[int] = []
        blended.extend(repeat_list[:repeat_slots])
        blended.extend(item for item in novel_list[:novel_slots]
                       if item not in blended)
        # Backfill any remaining slots from the longer lists.
        for extra in (repeat_list[repeat_slots:], novel_list[novel_slots:]):
            for item in extra:
                if len(blended) >= k:
                    break
                if item not in blended:
                    blended.append(item)
        return blended[:k]


@dataclass(frozen=True)
class NextItemResult:
    """Outcome of the unified next-item evaluation."""

    hit_rate: Mapping[int, float]
    n_targets: int
    n_repeat_targets: int

    @property
    def repeat_share(self) -> float:
        if self.n_targets == 0:
            return 0.0
        return self.n_repeat_targets / self.n_targets


def evaluate_next_item(
    mixture: MixtureRecommender,
    split: SplitDataset,
    window: Optional[WindowConfig] = None,
    novel_config: Optional[NovelEvaluationConfig] = None,
    random_state: RandomState = None,
    max_targets_per_user: int = 200,
) -> NextItemResult:
    """Unified hit-rate over every test consumption, repeat or novel.

    For each test position ``t``: the repeat pool is the Ω-filtered
    window candidate set; the novel pool is ``n_sampled_candidates``
    unconsumed distractors plus the truth when the truth is novel. The
    mixture's blended top-N list is checked for the truth.
    """
    window = window or WindowConfig()
    novel_config = novel_config or NovelEvaluationConfig()
    rng = ensure_rng(random_state)
    top_ns = tuple(sorted(novel_config.top_ns))
    max_n = max(top_ns)

    hits: Dict[int, int] = {n: 0 for n in top_ns}
    n_targets = 0
    n_repeat_targets = 0
    n_items = split.n_items

    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        stop = min(len(sequence), boundary + max_targets_per_user)
        for t in range(boundary, stop):
            truth = int(sequence[t])
            repeat_pool = candidate_items(
                sequence, t, window.window_size, window.min_gap
            )
            consumed = consumed_items_before(sequence, t)
            novel_pool = sample_novel_candidates(
                consumed | {truth},
                n_items,
                novel_config.n_sampled_candidates,
                random_state=rng,
            )
            truth_is_novel = truth not in consumed
            if truth_is_novel:
                novel_pool = sorted(set(novel_pool) | {truth})
            elif truth not in repeat_pool:
                # A repeat of something outside the window (or within Ω):
                # out of scope for both branches, as in the paper.
                continue
            ranked = mixture.recommend(
                sequence, t, max_n, repeat_pool, novel_pool
            )
            n_targets += 1
            if not truth_is_novel:
                n_repeat_targets += 1
            if truth in ranked:
                position = ranked.index(truth)
                for n in top_ns:
                    if position < n:
                        hits[n] += 1

    if n_targets == 0:
        raise EvaluationError("no next-item targets found in the test data")
    return NextItemResult(
        hit_rate={n: hits[n] / n_targets for n in top_ns},
        n_targets=n_targets,
        n_repeat_targets=n_repeat_targets,
    )
