"""Novel-item recommenders.

:class:`NovelTSPPRRecommender` is the §4.3 variant of TS-PPR: identical
preference function, training loop, and feature extraction, but the
pre-sampled quadruples pair first-time consumptions with unconsumed
negatives. For a never-consumed candidate the dynamic features (recency,
familiarity) are exactly 0, so the model leans on the static latent term
and the static features — precisely the paper's observation that the
time-sensitive machinery specializes in reconsumption.

:class:`NovelPopRecommender` is the corresponding cheap baseline
(popularity over unconsumed items).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query, iter_queries_in_order
from repro.models.pop import PopRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.novel.sampling import sample_novel_quadruples
from repro.sampling.quadruples import QuadrupleSet


class NovelTSPPRRecommender(TSPPRRecommender):
    """TS-PPR trained for the novel-item recommendation problem.

    Parameters
    ----------
    config:
        Standard :class:`~repro.config.TSPPRConfig`.
    popularity_biased_negatives:
        Draw training negatives proportionally to training popularity
        (harder, better-calibrated ranking) instead of uniformly.
    """

    name = "TS-PPR (novel)"

    def __init__(
        self,
        config: Optional[TSPPRConfig] = None,
        popularity_biased_negatives: bool = True,
    ) -> None:
        super().__init__(config)
        self.popularity_biased_negatives = popularity_biased_negatives

    def _sample_quadruples(
        self,
        split: SplitDataset,
        window: WindowConfig,
        rng: np.random.Generator,
    ) -> QuadrupleSet:
        popularity = None
        if self.popularity_biased_negatives:
            popularity = split.train_dataset().item_frequencies().astype(float)
        return sample_novel_quadruples(
            split,
            window=window,
            n_negatives=self.config.n_negative_samples,
            random_state=rng,
            popularity=popularity,
        )


class NovelPopRecommender(PopRecommender):
    """Popularity baseline restricted to the novel problem.

    Scoring is identical to Pop — the candidate set (unconsumed items)
    is what distinguishes the novel protocol — but consumed candidates
    are actively demoted so a mixed candidate list never surfaces them.
    """

    name = "Pop (novel)"

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        scores = super().score(sequence, candidates, t)
        consumed = set(sequence.items[:t].tolist())
        demoted = scores.copy()
        for index, item in enumerate(candidates):
            if int(item) in consumed:
                demoted[index] = -np.inf
        return demoted

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel with incremental consumed-set maintenance.

        Overridden explicitly: inheriting Pop's kernel would silently
        drop the consumed-item demotion this model exists for.
        """
        self._check_fitted()
        if not queries:
            return []
        items_sequence = sequence.items
        consumed: set = set()
        cursor = 0
        results: List[np.ndarray] = [np.empty(0)] * len(queries)
        for index, query in iter_queries_in_order(queries):
            while cursor < query.t:
                consumed.add(int(items_sequence[cursor]))
                cursor += 1
            items = np.asarray(query.candidates, dtype=np.int64)
            demoted = self._gather(items).copy()
            for row, item in enumerate(query.candidates):
                if int(item) in consumed:
                    demoted[row] = -np.inf
            results[index] = demoted
        return results
