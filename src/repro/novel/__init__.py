"""Novel-item recommendation and the RRC/novel mixture (Section 4.3).

The paper notes that TS-PPR "can be used in novel item recommendation as
well" — positives become first-time consumptions and negatives are
pre-sampled from the (huge) unconsumed item space — and names, as future
work, *mixing* the RRC and novel lists "to balance users' demands for
both novelty-seeking and repeat consumption". This subpackage implements
both:

* :mod:`repro.novel.candidates` — novel candidate pools and the sampled
  evaluation protocol standard for large item spaces (1 truth + ``n``
  sampled unconsumed items);
* :mod:`repro.novel.sampling` — pre-sampling of novel training
  quadruples ``(u, v_i, v_j, t)`` with ``v_i`` a first-time consumption;
* :mod:`repro.novel.models` — :class:`NovelTSPPRRecommender` (TS-PPR
  trained on novel quadruples) and a popularity fallback;
* :mod:`repro.novel.mixture` — :class:`MixtureRecommender`, which routes
  each position through STREC's repeat probability and blends the two
  lists, plus the unified next-item evaluation protocol.
"""

from repro.novel.candidates import (
    NovelEvaluationConfig,
    consumed_items_before,
    iter_novel_evaluation_positions,
    sample_novel_candidates,
)
from repro.novel.mixture import MixtureRecommender, evaluate_next_item
from repro.novel.models import NovelPopRecommender, NovelTSPPRRecommender
from repro.novel.sampling import sample_novel_quadruples

__all__ = [
    "MixtureRecommender",
    "NovelEvaluationConfig",
    "NovelPopRecommender",
    "NovelTSPPRRecommender",
    "consumed_items_before",
    "evaluate_next_item",
    "iter_novel_evaluation_positions",
    "sample_novel_candidates",
    "sample_novel_quadruples",
]
