"""Online recommendation timing (Fig 13).

Measures the average wall-clock time of a single ``recommend`` call —
one "instance" in the paper's terms — over a sample of real evaluation
positions, reported in milliseconds. Results are averaged over several
trials like the paper's ("data is reported by averaging results on 3
trials each").

:func:`time_recommender_batched` times the same instances through the
batch engine (:meth:`~repro.models.base.Recommender.recommend_batch`
over per-user query lists) so Fig 13 can report the per-query walk and
the batched walk side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import EvaluationConfig
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.exceptions import EvaluationError
from repro.models.base import Recommender
from repro.windows.repeat import iter_evaluation_positions


@dataclass(frozen=True)
class OnlineTiming:
    """Per-instance online recommendation timing for one method."""

    method: str
    mean_ms: float
    n_instances: int
    n_trials: int


def collect_timing_instances(
    split: SplitDataset,
    config: Optional[EvaluationConfig] = None,
    max_instances: int = 500,
) -> List[Tuple[int, int, List[int]]]:
    """Sample ``(user, t, candidates)`` evaluation instances for timing.

    Instances are taken round-robin across users (in user order) so one
    very long user cannot dominate the measurement.
    """
    config = config or EvaluationConfig()
    per_user: List[List[Tuple[int, int, List[int]]]] = []
    for user in range(split.n_users):
        rows = [
            (user, t, candidates)
            for t, candidates in iter_evaluation_positions(
                split.full_sequence(user),
                split.train_boundary(user),
                config.window.window_size,
                config.window.min_gap,
            )
        ]
        if rows:
            per_user.append(rows)
    instances: List[Tuple[int, int, List[int]]] = []
    depth = 0
    while len(instances) < max_instances and any(depth < len(r) for r in per_user):
        for rows in per_user:
            if depth < len(rows):
                instances.append(rows[depth])
                if len(instances) >= max_instances:
                    break
        depth += 1
    if not instances:
        raise EvaluationError("no evaluation instances available for timing")
    return instances


def time_recommender(
    model: Recommender,
    split: SplitDataset,
    instances: Optional[List[Tuple[int, int, List[int]]]] = None,
    config: Optional[EvaluationConfig] = None,
    top_n: int = 10,
    n_trials: int = 3,
) -> OnlineTiming:
    """Average per-instance ``recommend`` latency in milliseconds."""
    config = config or EvaluationConfig()
    if instances is None:
        instances = collect_timing_instances(split, config)
    sequences = {user: split.full_sequence(user) for user, _, _ in instances}

    trial_means: List[float] = []
    for _ in range(n_trials):
        start = time.perf_counter()
        for user, t, candidates in instances:
            model.recommend(sequences[user], candidates, t, top_n)
        elapsed = time.perf_counter() - start
        trial_means.append(elapsed / len(instances))
    mean_ms = 1000.0 * sum(trial_means) / len(trial_means)
    return OnlineTiming(
        method=model.name,
        mean_ms=mean_ms,
        n_instances=len(instances),
        n_trials=n_trials,
    )


def time_recommender_batched(
    model: Recommender,
    split: SplitDataset,
    instances: Optional[List[Tuple[int, int, List[int]]]] = None,
    config: Optional[EvaluationConfig] = None,
    top_n: int = 10,
    n_trials: int = 3,
) -> OnlineTiming:
    """Per-instance latency when instances are answered through batches.

    The same sampled instances as :func:`time_recommender`, grouped into
    one :meth:`~repro.models.base.Recommender.recommend_batch` call per
    user; the reported mean stays per-instance so the two timings are
    directly comparable.
    """
    config = config or EvaluationConfig()
    if instances is None:
        instances = collect_timing_instances(split, config)
    queries_by_user: Dict[int, List[Query]] = {}
    for user, t, candidates in instances:
        queries_by_user.setdefault(user, []).append(
            Query(t=t, candidates=tuple(candidates))
        )
    sequences = {user: split.full_sequence(user) for user in queries_by_user}

    trial_means: List[float] = []
    for _ in range(n_trials):
        start = time.perf_counter()
        for user, queries in queries_by_user.items():
            model.recommend_batch(sequences[user], queries, top_n)
        elapsed = time.perf_counter() - start
        trial_means.append(elapsed / len(instances))
    mean_ms = 1000.0 * sum(trial_means) / len(trial_means)
    return OnlineTiming(
        method=model.name,
        mean_ms=mean_ms,
        n_instances=len(instances),
        n_trials=n_trials,
    )
