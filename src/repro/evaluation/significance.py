"""Statistical comparison of recommenders.

Single-number MaAP/MiAP differences can be noise; this module provides
the two standard nonparametric checks over the *per-target hit vectors*
of two models evaluated on the same targets:

* :func:`paired_bootstrap` — bootstrap distribution of the mean
  difference in hit rate; reports the observed difference, a confidence
  interval, and the fraction of resamples where model A wins;
* :func:`permutation_test` — sign-flip permutation p-value for the null
  hypothesis "both models have the same expected hit rate".

:func:`collect_hit_vectors` walks the RRC evaluation protocol once per
model over an identical target list, so the comparisons are properly
paired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import EvaluationConfig
from repro.data.split import SplitDataset
from repro.evaluation.protocol import collect_queries
from repro.exceptions import EvaluationError
from repro.models.base import Recommender
from repro.rng import RandomState, ensure_rng


def collect_hit_vectors(
    models: List[Recommender],
    split: SplitDataset,
    top_n: int = 10,
    config: Optional[EvaluationConfig] = None,
) -> np.ndarray:
    """Per-target hit indicators for each model; shape (n_models, n_targets).

    Target ``j`` is the same evaluation position for every model, so
    columns are paired observations. Each model answers a user's targets
    in one ``recommend_batch`` call.
    """
    if not models:
        raise EvaluationError("need at least one model")
    config = config or EvaluationConfig()
    window = config.window
    rows: List[List[float]] = [[] for _ in models]
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        queries = collect_queries(
            sequence,
            split.train_boundary(user),
            window.window_size,
            window.min_gap,
            user=user,
        )
        if not queries:
            continue
        for row, model in zip(rows, models):
            ranked_lists = model.recommend_batch(sequence, queries, top_n)
            for query, ranked in zip(queries, ranked_lists):
                row.append(1.0 if query.truth in ranked else 0.0)
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.size == 0 or matrix.shape[1] == 0:
        raise EvaluationError("no evaluation targets found")
    return matrix


@dataclass(frozen=True)
class BootstrapComparison:
    """Outcome of :func:`paired_bootstrap`."""

    observed_difference: float
    ci_low: float
    ci_high: float
    win_probability: float
    n_targets: int
    n_resamples: int

    @property
    def significant(self) -> bool:
        """Whether the confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def paired_bootstrap(
    hits_a: np.ndarray,
    hits_b: np.ndarray,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    random_state: RandomState = None,
) -> BootstrapComparison:
    """Bootstrap the mean paired difference ``hits_a − hits_b``."""
    hits_a = np.asarray(hits_a, dtype=np.float64).ravel()
    hits_b = np.asarray(hits_b, dtype=np.float64).ravel()
    if hits_a.shape != hits_b.shape:
        raise EvaluationError("hit vectors must have identical length")
    if hits_a.size == 0:
        raise EvaluationError("hit vectors are empty")
    if not 0 < confidence < 1:
        raise EvaluationError(f"confidence must lie in (0, 1), got {confidence}")
    if n_resamples <= 0:
        raise EvaluationError(f"n_resamples must be positive, got {n_resamples}")

    rng = ensure_rng(random_state)
    differences = hits_a - hits_b
    n = differences.size
    indices = rng.integers(n, size=(n_resamples, n))
    resampled_means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    return BootstrapComparison(
        observed_difference=float(differences.mean()),
        ci_low=float(low),
        ci_high=float(high),
        win_probability=float((resampled_means > 0).mean()),
        n_targets=n,
        n_resamples=n_resamples,
    )


def permutation_test(
    hits_a: np.ndarray,
    hits_b: np.ndarray,
    n_permutations: int = 2000,
    random_state: RandomState = None,
) -> float:
    """Two-sided sign-flip permutation p-value for the paired difference.

    Under the null, each paired difference is symmetric around zero, so
    flipping signs uniformly generates the null distribution of the mean.
    """
    hits_a = np.asarray(hits_a, dtype=np.float64).ravel()
    hits_b = np.asarray(hits_b, dtype=np.float64).ravel()
    if hits_a.shape != hits_b.shape:
        raise EvaluationError("hit vectors must have identical length")
    if hits_a.size == 0:
        raise EvaluationError("hit vectors are empty")
    if n_permutations <= 0:
        raise EvaluationError(
            f"n_permutations must be positive, got {n_permutations}"
        )
    rng = ensure_rng(random_state)
    differences = hits_a - hits_b
    observed = abs(differences.mean())
    signs = rng.choice([-1.0, 1.0], size=(n_permutations, differences.size))
    null_means = np.abs((signs * differences).mean(axis=1))
    # Add-one smoothing keeps the p-value strictly positive.
    return float((1 + (null_means >= observed - 1e-15).sum()) / (1 + n_permutations))
