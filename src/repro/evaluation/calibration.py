"""Probability-calibration diagnostics for the STREC switch.

Table 5 conditions TS-PPR on STREC's repeat predictions, so the switch's
*probability quality* — not just its accuracy — matters: a switch that
always answers "repeat, p = base rate" has high accuracy on
repeat-heavy data while carrying zero per-position information (the
situation EXPERIMENTS.md records as deviation #10). These diagnostics
make that failure mode measurable:

* :func:`brier_score` — mean squared error of the probabilities;
* :func:`reliability_curve` — binned predicted-vs-empirical repeat
  rates;
* :func:`resolution` — variance of the per-bin empirical rates: exactly
  0 for a constant (majority-class) switch, positive when predictions
  actually discriminate between positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.split import SplitDataset
from repro.exceptions import EvaluationError, NotFittedError
from repro.models.strec import STRECClassifier
from repro.windows.window import window_before


def collect_switch_probabilities(
    strec: STRECClassifier,
    split: SplitDataset,
    max_positions_per_user: int = 500,
) -> Tuple[np.ndarray, np.ndarray]:
    """Predicted repeat probabilities and true labels over test positions."""
    if not strec.is_fitted:
        raise NotFittedError("collect_switch_probabilities needs a fitted STREC")
    window_config = strec._window_config  # noqa: SLF001 - same package
    assert window_config is not None
    probabilities: List[float] = []
    labels: List[int] = []
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        start = split.train_boundary(user)
        stop = min(len(sequence), start + max_positions_per_user)
        for t in range(start, stop):
            view = window_before(sequence, t, window_config.window_size)
            features = strec.window_features(view)[None, :]
            probabilities.append(float(strec._model.predict_proba(features)[0]))  # noqa: SLF001
            labels.append(1 if int(sequence[t]) in view else 0)
    if not labels:
        raise EvaluationError("no test positions available for calibration")
    return np.asarray(probabilities), np.asarray(labels, dtype=np.float64)


def brier_score(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of probabilistic predictions (lower is better)."""
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if probabilities.shape != labels.shape:
        raise EvaluationError("probabilities and labels must align")
    if probabilities.size == 0:
        raise EvaluationError("empty inputs")
    if np.any((probabilities < 0) | (probabilities > 1)):
        raise EvaluationError("probabilities must lie in [0, 1]")
    return float(np.mean((probabilities - labels) ** 2))


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of the reliability curve."""

    lower: float
    upper: float
    mean_predicted: float
    empirical_rate: float
    count: int


def reliability_curve(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> List[ReliabilityBin]:
    """Binned predicted-vs-empirical rates; empty bins are skipped."""
    if n_bins < 1:
        raise EvaluationError(f"n_bins must be >= 1, got {n_bins}")
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if probabilities.shape != labels.shape or probabilities.size == 0:
        raise EvaluationError("probabilities and labels must align and be non-empty")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: List[ReliabilityBin] = []
    for index in range(n_bins):
        lower, upper = edges[index], edges[index + 1]
        if index == n_bins - 1:
            mask = (probabilities >= lower) & (probabilities <= upper)
        else:
            mask = (probabilities >= lower) & (probabilities < upper)
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(
            ReliabilityBin(
                lower=float(lower),
                upper=float(upper),
                mean_predicted=float(probabilities[mask].mean()),
                empirical_rate=float(labels[mask].mean()),
                count=count,
            )
        )
    return bins


def resolution(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> float:
    """Murphy-decomposition resolution term.

    Count-weighted variance of the per-bin empirical rates around the
    base rate. 0 means the switch's probabilities carry no per-position
    information (the majority-class degeneracy); larger is better.
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    bins = reliability_curve(probabilities, labels, n_bins)
    base_rate = float(labels.mean())
    total = sum(b.count for b in bins)
    return float(
        sum(b.count * (b.empirical_rate - base_rate) ** 2 for b in bins) / total
    )
