"""The test-time evaluation walk (Section 5.1/5.3).

For every user, scan the test suffix. Each position ``t`` whose
consumption is a repeat from the window before ``t`` *and* whose item
was not consumed within the last Ω steps is an evaluation target: the
recommender produces a top-N list from the Ω-filtered window candidates,
and the list is "correct" when it contains the true reconsumed item.

Windows at early test positions reach back into the training prefix —
the test sequence continues the user's history, exactly as in the paper.

Since the batch-engine redesign the walk is query-driven: a user's
targets are collected into :class:`~repro.engine.query.Query` objects by
one incremental :class:`~repro.engine.session.ScoringSession` pass, and
answered with a single :meth:`~repro.models.base.Recommender.recommend_batch`
call. With ``workers > 1``, users are sharded across a process pool;
because per-user hit counts are integers and the pool preserves user
order, the aggregated MaAP/MiAP are bit-identical to a sequential run.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import EvaluationConfig, normalize_top_ns
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.engine.session import ScoringSession
from repro.evaluation.metrics import (
    AccuracyResult,
    UserCounts,
    aggregate_accuracy,
)
from repro.exceptions import EvaluationError
from repro.models.base import Recommender

#: Optional filter deciding which targets count, e.g. Table 5's
#: "positions STREC classified correctly". Receives (user, t) and the
#: full sequence; returns True to keep the target.
TargetFilter = Callable[[int, int], bool]


def collect_queries(
    sequence: ConsumptionSequence,
    boundary: int,
    window_size: int,
    min_gap: int,
    user: Optional[int] = None,
    target_filter: Optional[TargetFilter] = None,
) -> List[Query]:
    """All evaluation targets of one user's test suffix, as queries.

    Position-for-position equivalent to ``iter_evaluation_positions``
    (same targets, same sorted candidate lists), built from a single
    incremental session walk; each query carries the ground-truth item.
    """
    queries: List[Query] = []
    length = len(sequence)
    if boundary >= length:
        return queries
    session = ScoringSession(
        sequence, window_size, min_gap=min_gap, start=boundary
    )
    for t in range(boundary, length):
        session.advance_to(t)
        if not session.is_target():
            continue
        if target_filter is not None and not target_filter(user, t):
            continue
        candidates = session.candidates()
        if candidates:
            queries.append(
                Query(
                    t=t,
                    candidates=tuple(candidates),
                    truth=int(sequence[t]),
                )
            )
    return queries


def evaluate_queries(
    model: Recommender,
    sequence: ConsumptionSequence,
    queries: Sequence[Query],
    top_ns: Sequence[int],
) -> UserCounts:
    """Hit counts from one batched recommend over a user's queries.

    ``top_ns`` must already be normalized (sorted, unique, positive).
    """
    hits: Dict[int, int] = {top_n: 0 for top_n in top_ns}
    if not queries:
        return UserCounts(n_targets=0, hits=hits)
    max_n = max(top_ns)
    ranked_lists = model.recommend_batch(sequence, queries, max_n)
    for query, ranked in zip(queries, ranked_lists):
        try:
            position = ranked.index(query.truth)
        except ValueError:
            continue
        for top_n in top_ns:
            if position < top_n:
                hits[top_n] += 1
    return UserCounts(n_targets=len(queries), hits=hits)


def _evaluate_sequence(
    model: Recommender,
    sequence: ConsumptionSequence,
    boundary: int,
    user: int,
    top_ns: Tuple[int, ...],
    window_size: int,
    min_gap: int,
    target_filter: Optional[TargetFilter] = None,
) -> UserCounts:
    """One user's counts from an already-fetched sequence."""
    queries = collect_queries(
        sequence,
        boundary,
        window_size,
        min_gap,
        user=user,
        target_filter=target_filter,
    )
    return evaluate_queries(model, sequence, queries, top_ns)


def evaluate_user(
    model: Recommender,
    split: SplitDataset,
    user: int,
    top_ns: Sequence[int],
    window_size: int,
    min_gap: int,
    target_filter: Optional[TargetFilter] = None,
) -> UserCounts:
    """Hit counts for one user's test suffix."""
    return _evaluate_sequence(
        model,
        split.full_sequence(user),
        split.train_boundary(user),
        user,
        normalize_top_ns(top_ns),
        window_size,
        min_gap,
        target_filter=target_filter,
    )


# ----------------------------------------------------------------------
# Parallel sharding
# ----------------------------------------------------------------------
# Workers are forked, so the model and split are inherited copy-on-write
# through this module-level slot instead of being pickled per task.
_PARALLEL_STATE: Optional[tuple] = None


def _sequence_of(split: SplitDataset, history_store, user: int):
    """One user's full walkable history: store view or split sequence.

    A store's arena columns are fork-inherited (and, mmap-backed, shared
    by the OS page cache), so the parallel path reads them zero-copy in
    every worker just as the sequential path does.
    """
    if history_store is None:
        return split.full_sequence(user)
    view = history_store.slice(user)
    if view is None:
        return ConsumptionSequence(user, [])
    return view


def _worker_counts(user: int) -> UserCounts:
    assert _PARALLEL_STATE is not None
    model, split, history_store, top_ns, window_size, min_gap = (
        _PARALLEL_STATE
    )
    return _evaluate_sequence(
        model,
        _sequence_of(split, history_store, user),
        split.train_boundary(user),
        user,
        top_ns,
        window_size,
        min_gap,
    )


def _evaluate_parallel(
    model: Recommender,
    split: SplitDataset,
    history_store,
    top_ns: Tuple[int, ...],
    window_size: int,
    min_gap: int,
    n_workers: int,
) -> List[UserCounts]:
    global _PARALLEL_STATE
    context = multiprocessing.get_context("fork")
    chunksize = max(1, split.n_users // (n_workers * 4))
    _PARALLEL_STATE = (
        model, split, history_store, top_ns, window_size, min_gap
    )
    try:
        with context.Pool(n_workers) as pool:
            # map() preserves user order, so aggregation sees the same
            # per-user list as a sequential run — and the counts are
            # integers, so the result is bit-identical.
            return pool.map(
                _worker_counts, range(split.n_users), chunksize=chunksize
            )
    finally:
        _PARALLEL_STATE = None


def evaluate_recommender(
    model: Recommender,
    split: SplitDataset,
    config: Optional[EvaluationConfig] = None,
    target_filter: Optional[TargetFilter] = None,
    workers: int = 1,
    history_store=None,
) -> AccuracyResult:
    """MaAP/MiAP of a fitted recommender over all users' test suffixes.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.base.Recommender`.
    split:
        The same split the model was fitted on.
    config:
        Cut-offs and window protocol; defaults to Top-{1,5,10} with the
        paper's ``|W| = 100, Ω = 10``.
    target_filter:
        Optional per-target predicate (used by the Table 5 combination
        experiment to keep only STREC-correct positions).
    workers:
        Shard users across this many forked worker processes. The result
        is bit-identical to ``workers=1``. Falls back to sequential when
        the model is non-deterministic (scoring consumes RNG state, so
        sharding would reorder the stream), when a ``target_filter`` is
        given (closures may not survive the fork boundary portably), or
        when the platform lacks ``fork``.
    history_store:
        Optional :class:`~repro.store.base.HistoryStore` holding every
        user's *full* history (``split.history_store(base="full")``).
        When given, the walk reads each user's sequence as a zero-copy
        store view instead of the split's per-user objects — MaAP/MiAP
        are bit-identical either way (the equivalence suite asserts it),
        resident memory is not.
    """
    config = config or EvaluationConfig()
    if workers < 1:
        raise EvaluationError(f"workers must be positive, got {workers}")
    top_ns = normalize_top_ns(config.top_ns)
    window_size = config.window.window_size
    min_gap = config.window.min_gap

    n_workers = min(workers, max(split.n_users, 1))
    use_parallel = (
        n_workers > 1
        and model.deterministic
        and target_filter is None
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_parallel:
        per_user = _evaluate_parallel(
            model, split, history_store, top_ns, window_size, min_gap,
            n_workers,
        )
    else:
        per_user = [
            _evaluate_sequence(
                model,
                _sequence_of(split, history_store, user),
                split.train_boundary(user),
                user,
                top_ns,
                window_size,
                min_gap,
                target_filter=target_filter,
            )
            for user in range(split.n_users)
        ]
    return aggregate_accuracy(per_user, top_ns)
