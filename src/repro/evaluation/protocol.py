"""The test-time evaluation walk (Section 5.1/5.3).

For every user, scan the test suffix. Each position ``t`` whose
consumption is a repeat from the window before ``t`` *and* whose item
was not consumed within the last Ω steps is an evaluation target: the
recommender produces a top-N list from the Ω-filtered window candidates,
and the list is "correct" when it contains the true reconsumed item.

Windows at early test positions reach back into the training prefix —
the test sequence continues the user's history, exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import EvaluationConfig, normalize_top_ns
from repro.data.split import SplitDataset
from repro.evaluation.metrics import (
    AccuracyResult,
    UserCounts,
    aggregate_accuracy,
)
from repro.models.base import Recommender
from repro.windows.repeat import iter_evaluation_positions

#: Optional filter deciding which targets count, e.g. Table 5's
#: "positions STREC classified correctly". Receives (user, t) and the
#: full sequence; returns True to keep the target.
TargetFilter = Callable[[int, int], bool]


def evaluate_user(
    model: Recommender,
    split: SplitDataset,
    user: int,
    top_ns: Sequence[int],
    window_size: int,
    min_gap: int,
    target_filter: Optional[TargetFilter] = None,
) -> UserCounts:
    """Hit counts for one user's test suffix."""
    top_ns = normalize_top_ns(top_ns)
    max_n = max(top_ns)
    sequence = split.full_sequence(user)
    boundary = split.train_boundary(user)

    n_targets = 0
    hits: Dict[int, int] = {top_n: 0 for top_n in top_ns}
    for t, candidates in iter_evaluation_positions(
        sequence, boundary, window_size, min_gap
    ):
        if target_filter is not None and not target_filter(user, t):
            continue
        truth = int(sequence[t])
        ranked = model.recommend(sequence, candidates, t, max_n)
        n_targets += 1
        try:
            position = ranked.index(truth)
        except ValueError:
            continue
        for top_n in top_ns:
            if position < top_n:
                hits[top_n] += 1
    return UserCounts(n_targets=n_targets, hits=hits)


def evaluate_recommender(
    model: Recommender,
    split: SplitDataset,
    config: Optional[EvaluationConfig] = None,
    target_filter: Optional[TargetFilter] = None,
) -> AccuracyResult:
    """MaAP/MiAP of a fitted recommender over all users' test suffixes.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.base.Recommender`.
    split:
        The same split the model was fitted on.
    config:
        Cut-offs and window protocol; defaults to Top-{1,5,10} with the
        paper's ``|W| = 100, Ω = 10``.
    target_filter:
        Optional per-target predicate (used by the Table 5 combination
        experiment to keep only STREC-correct positions).
    """
    config = config or EvaluationConfig()
    per_user: List[UserCounts] = [
        evaluate_user(
            model,
            split,
            user,
            config.top_ns,
            config.window.window_size,
            config.window.min_gap,
            target_filter=target_filter,
        )
        for user in range(split.n_users)
    ]
    return aggregate_accuracy(per_user, normalize_top_ns(config.top_ns))
