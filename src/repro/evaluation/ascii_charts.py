"""ASCII rendering of figure-style results for terminal output.

The experiment harness reproduces *figures* whose natural form is a
plot; in a terminal-only environment the next best thing is a compact
ASCII chart. Two primitives cover the paper's figures:

* :func:`bar_chart` — labelled horizontal bars (Fig 5/6/13-style
  comparisons);
* :func:`line_chart` — an x/y grid raster with one symbol per series
  (Fig 8-12-style sweeps and convergence curves).

Both are deterministic pure functions of their inputs so tests can
assert exact output.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.exceptions import EvaluationError

#: Symbols assigned to series in order.
SERIES_SYMBOLS = "ox+*#@%&"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    value_format: str = "{:.4f}",
) -> str:
    """Horizontal bar chart, one row per label.

    Bars scale to the maximum value; labels left-align, values append.

    >>> print(bar_chart({"Pop": 0.5, "TS-PPR": 1.0}, width=10))
    Pop     #####       0.5000
    TS-PPR  ##########  1.0000
    """
    if not values:
        raise EvaluationError("bar_chart needs at least one value")
    if width <= 0:
        raise EvaluationError(f"width must be positive, got {width}")
    numeric = {label: float(value) for label, value in values.items()}
    if any(value < 0 for value in numeric.values()):
        raise EvaluationError("bar_chart only renders non-negative values")
    peak = max(numeric.values())
    label_width = max(len(label) for label in numeric)
    lines = []
    for label, value in numeric.items():
        length = 0 if peak == 0 else int(round(width * value / peak))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
) -> str:
    """Raster plot of one or more (x, y) series.

    Each series gets a symbol from :data:`SERIES_SYMBOLS`; overlapping
    points render the later series' symbol. Axis extremes are printed on
    the frame, and a legend follows the plot.
    """
    if not series:
        raise EvaluationError("line_chart needs at least one series")
    if width < 2 or height < 2:
        raise EvaluationError("width and height must be at least 2")
    points = [
        (float(x), float(y))
        for values in series.values()
        for x, y in values
    ]
    if not points:
        raise EvaluationError("line_chart received only empty series")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        symbol = SERIES_SYMBOLS[index % len(SERIES_SYMBOLS)]
        for x, y in values:
            column = int(round((float(x) - x_low) / x_span * (width - 1)))
            row = int(round((float(y) - y_low) / y_span * (height - 1)))
            grid[height - 1 - row][column] = symbol

    lines = [f"y_max={y_high:.4g}"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"y_min={y_low:.4g}  x: {x_low:.4g} .. {x_high:.4g}")
    for index, name in enumerate(series):
        symbol = SERIES_SYMBOLS[index % len(SERIES_SYMBOLS)]
        lines.append(f"  {symbol} = {name}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend glyph string (8 levels), e.g. for r̃ histories.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    blocks = "▁▂▃▄▅▆▇█"
    values = [float(v) for v in values]
    if not values:
        raise EvaluationError("sparkline needs at least one value")
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return blocks[0] * len(values)
    out = []
    for value in values:
        level = int((value - low) / span * (len(blocks) - 1))
        out.append(blocks[level])
    return "".join(out)
