"""Plain-text and markdown rendering of experiment result tables.

The experiment harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
copy-pasteable into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Fixed-width text table from dict rows (union of keys as columns)."""
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(
            len(column),
            max(len(_stringify(row.get(column, ""))) for row in rows),
        )
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    rule = "  ".join("-" * widths[column] for column in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(
                _stringify(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def render_markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """GitHub-flavoured markdown table from dict rows."""
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_stringify(row.get(column, "")) for column in columns)
            + " |"
        )
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A labelled (x, y) series as an aligned two-column block.

    Used for figure-style outputs (sweeps, convergence curves).
    """
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    rows: List[Dict[str, object]] = [
        {x_label: x, y_label: y} for x, y in zip(xs, ys)
    ]
    return f"# {name}\n" + format_table(rows)
