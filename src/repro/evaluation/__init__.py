"""Evaluation: the paper's accuracy protocol, metrics, and timing.

* :mod:`repro.evaluation.metrics` — P(u) (Eq 22), MaAP@N (Eq 23),
  MiAP@N (Eq 24);
* :mod:`repro.evaluation.protocol` — walk each user's test suffix,
  recommend at every valid RRC target, count hits;
* :mod:`repro.evaluation.timing` — per-instance online recommendation
  timing (Fig 13);
* :mod:`repro.evaluation.reports` — plain-text/markdown table rendering
  for the experiment harness.
"""

from repro.evaluation.metrics import AccuracyResult, UserCounts, aggregate_accuracy
from repro.evaluation.protocol import evaluate_recommender
from repro.evaluation.timing import OnlineTiming, time_recommender
from repro.evaluation.reports import format_table, render_markdown_table

__all__ = [
    "AccuracyResult",
    "OnlineTiming",
    "UserCounts",
    "aggregate_accuracy",
    "evaluate_recommender",
    "format_table",
    "render_markdown_table",
    "time_recommender",
]
