"""Accuracy metrics: P(u), MaAP@N, MiAP@N.

The paper's naming (Eq 23-24) is the *reverse* of the usual
macro/micro convention and is kept as-is:

* **MaAP** pools all users — total correct recommendation lists divided
  by total lists generated. Dominated by long-sequence users.
* **MiAP** first computes each user's precision ``P(u)`` (Eq 22), then
  averages over users — insensitive to sequence-length imbalance.

Users with zero evaluation targets have undefined ``P(u)`` and are
excluded from the MiAP mean (they contribute nothing to MaAP either).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class UserCounts:
    """Hit/target counts for one user at each cut-off ``N``."""

    n_targets: int
    hits: Mapping[int, int]

    def __post_init__(self) -> None:
        if self.n_targets < 0:
            raise EvaluationError(f"n_targets must be >= 0, got {self.n_targets}")
        for top_n, count in self.hits.items():
            if not 0 <= count <= self.n_targets:
                raise EvaluationError(
                    f"hits@{top_n} = {count} outside [0, {self.n_targets}]"
                )

    def precision(self, top_n: int) -> float:
        """``P(u)`` at cut-off ``top_n`` (Eq 22)."""
        if self.n_targets == 0:
            raise EvaluationError("P(u) undefined for a user with no targets")
        return self.hits[top_n] / self.n_targets


@dataclass(frozen=True)
class AccuracyResult:
    """MaAP@N and MiAP@N over a set of users."""

    top_ns: Tuple[int, ...]
    maap: Mapping[int, float]
    miap: Mapping[int, float]
    n_users_evaluated: int
    n_targets_total: int

    def as_rows(self, method: str) -> Dict[str, object]:
        """One flat result row for table rendering."""
        row: Dict[str, object] = {"Method": method}
        for top_n in self.top_ns:
            row[f"MaAP@{top_n}"] = round(self.maap[top_n], 4)
        for top_n in self.top_ns:
            row[f"MiAP@{top_n}"] = round(self.miap[top_n], 4)
        return row


def aggregate_accuracy(
    per_user: Sequence[UserCounts],
    top_ns: Sequence[int],
) -> AccuracyResult:
    """Compute MaAP/MiAP from per-user counts.

    Raises
    ------
    EvaluationError
        If no user has any evaluation target (metrics undefined).
    """
    top_ns = tuple(top_ns)
    if not top_ns:
        raise EvaluationError("top_ns must not be empty")
    evaluated = [counts for counts in per_user if counts.n_targets > 0]
    if not evaluated:
        raise EvaluationError("no user has evaluation targets; metrics undefined")

    total_targets = sum(counts.n_targets for counts in evaluated)
    maap: Dict[int, float] = {}
    miap: Dict[int, float] = {}
    for top_n in top_ns:
        total_hits = sum(counts.hits[top_n] for counts in evaluated)
        maap[top_n] = total_hits / total_targets
        miap[top_n] = sum(counts.precision(top_n) for counts in evaluated) / len(
            evaluated
        )
    return AccuracyResult(
        top_ns=top_ns,
        maap=maap,
        miap=miap,
        n_users_evaluated=len(evaluated),
        n_targets_total=total_targets,
    )


def relative_improvement(candidate: float, best_baseline: float) -> float:
    """Relative improvement (Table 3): ``(candidate − best) / best``.

    Raises
    ------
    EvaluationError
        If the baseline value is not positive.
    """
    if best_baseline <= 0:
        raise EvaluationError(
            f"relative improvement undefined for baseline {best_baseline}"
        )
    return (candidate - best_baseline) / best_baseline
