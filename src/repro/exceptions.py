"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """A dataset, sequence, or event log is malformed or inconsistent."""


class VocabularyError(DataError):
    """An id was looked up that the vocabulary does not contain."""


class SplitError(DataError):
    """A train/test split request cannot be satisfied."""


class FeatureError(ReproError):
    """A behavioural feature is misconfigured or queried out of range."""


class EngineError(ReproError):
    """The batch-scoring engine was driven through an invalid transition."""


class StoreError(ReproError):
    """A history store was misused or its arena layout is inconsistent."""


class SamplingError(ReproError):
    """Training-quadruple sampling cannot proceed (e.g. no candidates)."""


class ModelError(ReproError):
    """A model is used before fitting or configured inconsistently."""


class NotFittedError(ModelError):
    """A recommender was asked to predict before :meth:`fit` was called."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class CheckpointError(ReproError):
    """A training checkpoint is missing, corrupt, or incompatible."""


class EvaluationError(ReproError):
    """The evaluation protocol received inconsistent inputs."""


class ExperimentError(ReproError):
    """An experiment runner was misconfigured or referenced unknown ids."""


class TuningError(ReproError):
    """A knob, machine profile, or autotune run is invalid.

    Raised when a knob value falls outside its registered range, when a
    machine-profile file is malformed / stale-versioned / checksum-torn,
    or when a tune journal cannot be resumed — always at *load* time, so
    a bad profile fails the server at startup with a typed error instead
    of crashing mid-serve.
    """


class OnlineError(ReproError):
    """Raised for online-learning failures (``repro.online``)."""


class ServingError(ReproError):
    """The online serving layer received an invalid request or reply."""


class ServingUnavailableError(ServingError):
    """A serving endpoint could not be reached (or timed out).

    Distinct from :class:`ServingError` proper — the request never
    produced a server-side answer, so (idempotent) retries are safe.
    Raised by :class:`~repro.serving.client.ServingClient` for
    connection failures and timeouts, and by the cluster router when a
    shard stays unreachable past its retry budget.
    """
