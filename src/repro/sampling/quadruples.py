"""Construction of the pre-sampled training set ``D``.

Mirrors the example of Fig 3: scanning the training prefix of each user,
every valid repeat consumption (in the window, not within the last Ω
steps) becomes a positive ``v_i`` at its position ``t``; up to ``S``
negatives ``v_j`` are drawn uniformly without replacement from the other
Ω-eligible candidates of the same window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.exceptions import SamplingError
from repro.rng import RandomState, ensure_rng
from repro.windows.repeat import iter_repeat_positions, recent_items


@dataclass(frozen=True)
class QuadrupleSet:
    """Dense arrays of training quadruples ``(u, v_i, v_j, t)``.

    All four arrays share the same length. ``per_user[u]`` lists the
    row indices belonging to user ``u`` in sampling order (positives are
    scanned by ascending ``t``, so "the first 10% of a user's quadruples"
    — the paper's small-batch rule — is a plain prefix of that list).
    """

    users: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray
    times: np.ndarray
    per_user: Dict[int, np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        lengths = {
            self.users.shape,
            self.positives.shape,
            self.negatives.shape,
            self.times.shape,
        }
        if len(lengths) != 1:
            raise SamplingError(f"quadruple arrays have mismatched shapes: {lengths}")

    def __len__(self) -> int:
        return int(self.users.size)

    @property
    def n_users_with_quadruples(self) -> int:
        return len(self.per_user)

    def row(self, index: int) -> Tuple[int, int, int, int]:
        """The quadruple at ``index`` as plain ints."""
        return (
            int(self.users[index]),
            int(self.positives[index]),
            int(self.negatives[index]),
            int(self.times[index]),
        )


def sample_quadruples(
    split: SplitDataset,
    window: Optional[WindowConfig] = None,
    n_negatives: int = 10,
    random_state: RandomState = None,
) -> QuadrupleSet:
    """Pre-sample the training set ``D`` from a split dataset.

    Parameters
    ----------
    split:
        The 70/30 split; only training prefixes are scanned.
    window:
        ``|W|`` and ``Ω``. Defaults to the paper's 100 / 10.
    n_negatives:
        ``S`` — negatives per positive. When a window offers fewer
        eligible negatives, all of them are used (no replacement, so no
        duplicated quadruples from one positive).
    random_state:
        Seed or generator for negative selection.

    Raises
    ------
    SamplingError
        If no quadruple at all can be formed (training data has no
        qualifying repeat with at least one alternative candidate).
    """
    window = window or WindowConfig()
    if n_negatives <= 0:
        raise SamplingError(f"n_negatives must be positive, got {n_negatives}")
    rng = ensure_rng(random_state)

    users: List[int] = []
    positives: List[int] = []
    negatives: List[int] = []
    times: List[int] = []
    per_user: Dict[int, List[int]] = {}

    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        for t, window_view in iter_repeat_positions(
            sequence,
            window.window_size,
            window.min_gap,
            stop=boundary,
        ):
            positive_item = int(sequence[t])
            excluded = recent_items(sequence, t, window.min_gap)
            eligible = sorted(
                window_view.item_set - excluded - {positive_item}
            )
            if not eligible:
                continue
            if len(eligible) <= n_negatives:
                chosen = eligible
            else:
                picks = rng.choice(len(eligible), size=n_negatives, replace=False)
                chosen = [eligible[int(p)] for p in np.sort(picks)]
            for negative_item in chosen:
                index = len(users)
                users.append(user)
                positives.append(positive_item)
                negatives.append(int(negative_item))
                times.append(t)
                per_user.setdefault(user, []).append(index)

    if not users:
        raise SamplingError(
            "no training quadruples could be sampled; the training data "
            "contains no qualifying repeat consumption with alternatives"
        )

    return QuadrupleSet(
        users=np.asarray(users, dtype=np.int64),
        positives=np.asarray(positives, dtype=np.int64),
        negatives=np.asarray(negatives, dtype=np.int64),
        times=np.asarray(times, dtype=np.int64),
        per_user={
            user: np.asarray(indices, dtype=np.int64)
            for user, indices in per_user.items()
        },
    )
