"""Construction of the pre-sampled training set ``D``.

Mirrors the example of Fig 3: scanning the training prefix of each user,
every valid repeat consumption (in the window, not within the last Ω
steps) becomes a positive ``v_i`` at its position ``t``; up to ``S``
negatives ``v_j`` are drawn uniformly without replacement from the other
Ω-eligible candidates of the same window.

Two implementations share that definition. :func:`sample_quadruples`
(the default) scans each user's prefix with one incremental
:class:`~repro.engine.session.ScoringSession` — O(1) window/Ω multiset
maintenance per position instead of an O(|W|) ``window_before`` rebuild
plus a ``recent_items`` set per anchor — and assembles the arrays
through amortized-doubling buffers instead of per-row Python appends.
:func:`sample_quadruples_reference` keeps the seed's per-position
rebuild. Both draw negatives through the exact same ``rng.choice`` call
sequence (same anchors, same eligible-set sizes, same order), so the
resulting :class:`QuadrupleSet` is bit-identical between them;
``tests/test_sampling.py`` pins that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.engine.session import ScoringSession
from repro.exceptions import SamplingError
from repro.rng import RandomState, ensure_rng
from repro.windows.repeat import iter_repeat_positions, recent_items


@dataclass(frozen=True)
class QuadrupleSet:
    """Dense arrays of training quadruples ``(u, v_i, v_j, t)``.

    All four arrays share the same length. ``per_user[u]`` lists the
    row indices belonging to user ``u`` in sampling order (positives are
    scanned by ascending ``t``, so "the first 10% of a user's quadruples"
    — the paper's small-batch rule — is a plain prefix of that list).
    """

    users: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray
    times: np.ndarray
    per_user: Dict[int, np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        lengths = {
            self.users.shape,
            self.positives.shape,
            self.negatives.shape,
            self.times.shape,
        }
        if len(lengths) != 1:
            raise SamplingError(f"quadruple arrays have mismatched shapes: {lengths}")

    def __len__(self) -> int:
        return int(self.users.size)

    @property
    def n_users_with_quadruples(self) -> int:
        return len(self.per_user)

    def row(self, index: int) -> Tuple[int, int, int, int]:
        """The quadruple at ``index`` as plain ints."""
        return (
            int(self.users[index]),
            int(self.positives[index]),
            int(self.negatives[index]),
            int(self.times[index]),
        )


class _GrowingInt64:
    """Append-only int64 column with amortized-doubling growth.

    Replaces per-row ``list.append`` in the sampling hot loop: rows
    arrive in small per-anchor batches and land in a preallocated numpy
    buffer via one C-level slice assignment per batch.
    """

    __slots__ = ("_data", "size")

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.empty(capacity, dtype=np.int64)
        self.size = 0

    def _reserve(self, n: int) -> int:
        end = self.size + n
        if end > self._data.size:
            capacity = self._data.size
            while capacity < end:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self.size] = self._data[: self.size]
            self._data = grown
        return end

    def extend(self, values: List[int]) -> None:
        end = self._reserve(len(values))
        self._data[self.size : end] = values
        self.size = end

    def extend_constant(self, value: int, n: int) -> None:
        end = self._reserve(n)
        self._data[self.size : end] = value
        self.size = end

    def array(self) -> np.ndarray:
        return self._data[: self.size].copy()


def sample_quadruples(
    split: SplitDataset,
    window: Optional[WindowConfig] = None,
    n_negatives: int = 10,
    random_state: RandomState = None,
) -> QuadrupleSet:
    """Pre-sample the training set ``D`` from a split dataset.

    One incremental session walk per user; bit-identical to
    :func:`sample_quadruples_reference` (see module docstring).

    Parameters
    ----------
    split:
        The 70/30 split; only training prefixes are scanned.
    window:
        ``|W|`` and ``Ω``. Defaults to the paper's 100 / 10.
    n_negatives:
        ``S`` — negatives per positive. When a window offers fewer
        eligible negatives, all of them are used (no replacement, so no
        duplicated quadruples from one positive).
    random_state:
        Seed or generator for negative selection.

    Raises
    ------
    SamplingError
        If no quadruple at all can be formed (training data has no
        qualifying repeat with at least one alternative candidate).
    """
    window = window or WindowConfig()
    if n_negatives <= 0:
        raise SamplingError(f"n_negatives must be positive, got {n_negatives}")
    rng = ensure_rng(random_state)

    users = _GrowingInt64()
    positives = _GrowingInt64()
    negatives = _GrowingInt64()
    times = _GrowingInt64()
    user_spans: Dict[int, Tuple[int, int]] = {}

    window_size, min_gap = window.window_size, window.min_gap
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        if boundary <= 1:
            continue
        user_start = users.size
        session = ScoringSession(sequence, window_size, min_gap=min_gap, start=1)
        items_list = sequence.items[:boundary].tolist()
        for t in range(1, boundary):
            session.advance_to(t)
            # Inline ``is_target``: x_t repeats from the window and is
            # not Ω-recent — the iter_repeat_positions filter.
            positive_item = items_list[t]
            last = session.last_position(positive_item)
            if last < 0:
                continue
            gap = t - last
            if gap <= min_gap or gap > window_size:
                continue
            # Ω-filtered window items minus the positive; ``candidates``
            # is already sorted, so dropping one element keeps the exact
            # order of the reference's ``sorted(set - set - {v_i})``.
            eligible = [
                item for item in session.candidates() if item != positive_item
            ]
            if not eligible:
                continue
            if len(eligible) <= n_negatives:
                chosen = eligible
            else:
                picks = rng.choice(len(eligible), size=n_negatives, replace=False)
                chosen = [eligible[int(p)] for p in np.sort(picks)]
            negatives.extend(chosen)
            users.extend_constant(user, len(chosen))
            positives.extend_constant(positive_item, len(chosen))
            times.extend_constant(t, len(chosen))
        if users.size > user_start:
            user_spans[user] = (user_start, users.size)

    if users.size == 0:
        raise SamplingError(
            "no training quadruples could be sampled; the training data "
            "contains no qualifying repeat consumption with alternatives"
        )

    return QuadrupleSet(
        users=users.array(),
        positives=positives.array(),
        negatives=negatives.array(),
        times=times.array(),
        per_user={
            user: np.arange(start, stop, dtype=np.int64)
            for user, (start, stop) in user_spans.items()
        },
    )


def sample_quadruples_reference(
    split: SplitDataset,
    window: Optional[WindowConfig] = None,
    n_negatives: int = 10,
    random_state: RandomState = None,
) -> QuadrupleSet:
    """The seed's per-position scan, kept as the equivalence baseline.

    Rebuilds a :class:`WindowView` and a recent-items set at every
    anchor; used by the training-equivalence tests and the benchmark
    guard as the scalar pipeline's sampler. Bit-identical to
    :func:`sample_quadruples`.
    """
    window = window or WindowConfig()
    if n_negatives <= 0:
        raise SamplingError(f"n_negatives must be positive, got {n_negatives}")
    rng = ensure_rng(random_state)

    users: List[int] = []
    positives: List[int] = []
    negatives: List[int] = []
    times: List[int] = []
    per_user: Dict[int, List[int]] = {}

    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        for t, window_view in iter_repeat_positions(
            sequence,
            window.window_size,
            window.min_gap,
            stop=boundary,
        ):
            positive_item = int(sequence[t])
            excluded = recent_items(sequence, t, window.min_gap)
            eligible = sorted(
                window_view.item_set - excluded - {positive_item}
            )
            if not eligible:
                continue
            if len(eligible) <= n_negatives:
                chosen = eligible
            else:
                picks = rng.choice(len(eligible), size=n_negatives, replace=False)
                chosen = [eligible[int(p)] for p in np.sort(picks)]
            for negative_item in chosen:
                index = len(users)
                users.append(user)
                positives.append(positive_item)
                negatives.append(int(negative_item))
                times.append(t)
                per_user.setdefault(user, []).append(index)

    if not users:
        raise SamplingError(
            "no training quadruples could be sampled; the training data "
            "contains no qualifying repeat consumption with alternatives"
        )

    return QuadrupleSet(
        users=np.asarray(users, dtype=np.int64),
        positives=np.asarray(positives, dtype=np.int64),
        negatives=np.asarray(negatives, dtype=np.int64),
        times=np.asarray(times, dtype=np.int64),
        per_user={
            user: np.asarray(indices, dtype=np.int64)
            for user, indices in per_user.items()
        },
    )
