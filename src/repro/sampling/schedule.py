"""Sampling schedules over a pre-built quadruple set.

Algorithm 1 alleviates the imbalance of repeat-consumption counts across
users by sampling hierarchically: first a user uniformly, then one of
that user's quadruples uniformly. :class:`UserUniformSchedule` implements
exactly that; :func:`small_batch_indices` selects the paper's
convergence-check batch ("each user's first 10% training quadruples").
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.exceptions import SamplingError
from repro.rng import RandomState, ensure_rng
from repro.sampling.quadruples import QuadrupleSet


class UserUniformSchedule:
    """User-first uniform sampler of quadruple indices.

    Every user owning at least one quadruple is equally likely per draw,
    regardless of how many quadruples they contributed — the paper's
    imbalance correction (Algorithm 1, lines 3-5; the negative was
    already bound to its positive during pre-sampling).
    """

    def __init__(self, quadruples: QuadrupleSet, random_state: RandomState = None) -> None:
        if len(quadruples) == 0:
            raise SamplingError("cannot schedule over an empty quadruple set")
        self._rng = ensure_rng(random_state)
        self._users = np.array(sorted(quadruples.per_user), dtype=np.int64)
        self._per_user = [quadruples.per_user[int(u)] for u in self._users]

    @property
    def n_users(self) -> int:
        return int(self._users.size)

    def draw(self) -> int:
        """One quadruple index: uniform user, then uniform quadruple."""
        user_slot = int(self._rng.integers(self._users.size))
        rows = self._per_user[user_slot]
        return int(rows[int(self._rng.integers(rows.size))])

    def draw_many(self, n: int) -> np.ndarray:
        """``n`` independent draws as an int array (vectorized)."""
        if n < 0:
            raise SamplingError(f"n must be non-negative, got {n}")
        user_slots = self._rng.integers(self._users.size, size=n)
        out = np.empty(n, dtype=np.int64)
        for position, slot in enumerate(user_slots):
            rows = self._per_user[int(slot)]
            out[position] = rows[int(self._rng.integers(rows.size))]
        return out


def small_batch_indices(quadruples: QuadrupleSet, fraction: float = 0.1) -> np.ndarray:
    """Indices of each user's first ``fraction`` of quadruples.

    The paper evaluates the objective on "each user's first 10% training
    quadruples" between epochs. At least one quadruple per user is always
    included so tiny users still participate in the convergence check.
    """
    if not 0 < fraction <= 1:
        raise SamplingError(f"fraction must lie in (0, 1], got {fraction}")
    selected: List[int] = []
    for user in sorted(quadruples.per_user):
        rows = quadruples.per_user[user]
        take = max(1, math.floor(rows.size * fraction))
        selected.extend(int(r) for r in rows[:take])
    return np.asarray(selected, dtype=np.int64)
