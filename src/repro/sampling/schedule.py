"""Sampling schedules over a pre-built quadruple set.

Algorithm 1 alleviates the imbalance of repeat-consumption counts across
users by sampling hierarchically: first a user uniformly, then one of
that user's quadruples uniformly. :class:`UserUniformSchedule` implements
exactly that; :func:`small_batch_indices` selects the paper's
convergence-check batch ("each user's first 10% training quadruples").
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.exceptions import SamplingError
from repro.rng import RandomState, ensure_rng
from repro.sampling.quadruples import QuadrupleSet


class UserUniformSchedule:
    """User-first uniform sampler of quadruple indices.

    Every user owning at least one quadruple is equally likely per draw,
    regardless of how many quadruples they contributed — the paper's
    imbalance correction (Algorithm 1, lines 3-5; the negative was
    already bound to its positive during pre-sampling).
    """

    def __init__(self, quadruples: QuadrupleSet, random_state: RandomState = None) -> None:
        if len(quadruples) == 0:
            raise SamplingError("cannot schedule over an empty quadruple set")
        self._rng = ensure_rng(random_state)
        self._users = np.array(sorted(quadruples.per_user), dtype=np.int64)
        self._per_user = [quadruples.per_user[int(u)] for u in self._users]
        # Lazily built by draw_many: plain Python lists index ~3x faster
        # than 0-d ndarray lookups in its tight loop.
        self._per_user_lists: List[List[int]] = []

    @property
    def n_users(self) -> int:
        return int(self._users.size)

    def draw(self) -> int:
        """One quadruple index: uniform user, then uniform quadruple."""
        user_slot = int(self._rng.integers(self._users.size))
        rows = self._per_user[user_slot]
        return int(rows[int(self._rng.integers(rows.size))])

    def draw_many(self, n: int) -> np.ndarray:
        """``n`` draws as an int array, stream-exact to ``n`` :meth:`draw` calls.

        The generator is consumed in the identical call sequence —
        user draw, then quadruple draw, per entry — so mixing
        ``draw_many`` blocks with scalar ``draw`` calls (or switching a
        training run between the block and scalar SGD modes) leaves the
        rng stream, and therefore every downstream result, bit-identical.
        (A one-shot ``integers(size=n)`` user draw would *not* be: it
        consumes the stream in a different order than interleaved
        scalar draws.) This is the block-draw helper behind
        :func:`repro.optim.sgd.run_sgd`'s block execution mode.
        """
        if n < 0:
            raise SamplingError(f"n must be non-negative, got {n}")
        if not self._per_user_lists:
            self._per_user_lists = [rows.tolist() for rows in self._per_user]
        integers = self._rng.integers
        per_user = self._per_user_lists
        n_users = int(self._users.size)
        out: List[int] = []
        append = out.append
        for _ in range(n):
            rows = per_user[integers(n_users)]
            append(rows[integers(len(rows))])
        return np.array(out, dtype=np.int64)


def small_batch_indices(quadruples: QuadrupleSet, fraction: float = 0.1) -> np.ndarray:
    """Indices of each user's first ``fraction`` of quadruples.

    The paper evaluates the objective on "each user's first 10% training
    quadruples" between epochs. At least one quadruple per user is always
    included so tiny users still participate in the convergence check.
    """
    if not 0 < fraction <= 1:
        raise SamplingError(f"fraction must lie in (0, 1], got {fraction}")
    selected: List[int] = []
    for user in sorted(quadruples.per_user):
        rows = quadruples.per_user[user]
        take = max(1, math.floor(rows.size * fraction))
        selected.extend(int(r) for r in rows[:take])
    return np.asarray(selected, dtype=np.int64)
