"""Training-quadruple pre-sampling (Section 4.2.2, Fig 3).

The training set ``D`` holds quadruples ``(u, v_i, v_j, t)``: at position
``t`` user ``u`` reconsumed ``v_i`` while ``v_j`` — another reconsumable
candidate from the same window — was not chosen. For each positive, ``S``
negatives are pre-sampled so their time-sensitive features can be
extracted before training begins.
"""

from repro.sampling.quadruples import (
    QuadrupleSet,
    sample_quadruples,
    sample_quadruples_reference,
)
from repro.sampling.schedule import UserUniformSchedule, small_batch_indices

__all__ = [
    "QuadrupleSet",
    "UserUniformSchedule",
    "sample_quadruples",
    "sample_quadruples_reference",
    "small_batch_indices",
]
