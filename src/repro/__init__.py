"""repro — Recommendation for Repeat Consumption from User Implicit Feedback.

A complete, from-scratch reproduction of Chen, Wang, Wang & Yu
(ICDE 2017): the **TS-PPR** time-sensitive personalized pairwise ranking
model, every baseline the paper compares against (Random, Pop, Recency,
FPMC, Survival/Cox, DYRC, plus the static PPR and the STREC switch), the
behavioural-feature subsystem, the RRC window/evaluation protocol, two
synthetic dataset generators standing in for Gowalla and Last.fm, and an
experiment harness regenerating every table and figure of the paper's
evaluation section.

Quickstart
----------
>>> from repro import (
...     generate_gowalla, temporal_split, TSPPRRecommender,
...     evaluate_recommender,
... )
>>> split = temporal_split(generate_gowalla(user_factor=0.2))
>>> model = TSPPRRecommender().fit(split)
>>> result = evaluate_recommender(model, split)
>>> 0.0 <= result.maap[10] <= 1.0
True
"""

from repro.config import (
    EvaluationConfig,
    SplitConfig,
    TSPPRConfig,
    WindowConfig,
    gowalla_default_config,
    lastfm_default_config,
)
from repro.data import (
    ConsumptionSequence,
    Dataset,
    SplitDataset,
    Vocabulary,
    load_event_log,
    save_event_log,
    temporal_split,
)
from repro.evaluation import (
    AccuracyResult,
    evaluate_recommender,
    time_recommender,
)
from repro.exceptions import ReproError
from repro.features import BehavioralFeatureModel
from repro.models import (
    DYRCRecommender,
    FPMCRecommender,
    PopRecommender,
    PPRRecommender,
    RandomRecommender,
    RecencyRecommender,
    Recommender,
    STRECClassifier,
    SurvivalRecommender,
    TSPPRRecommender,
)
from repro.io import load_model, save_model
from repro.novel import (
    MixtureRecommender,
    NovelPopRecommender,
    NovelTSPPRRecommender,
)
from repro.synth import generate_gowalla, generate_lastfm
from repro.tuning import GridSearch

__version__ = "1.0.0"

__all__ = [
    "AccuracyResult",
    "BehavioralFeatureModel",
    "ConsumptionSequence",
    "DYRCRecommender",
    "Dataset",
    "EvaluationConfig",
    "FPMCRecommender",
    "GridSearch",
    "MixtureRecommender",
    "NovelPopRecommender",
    "NovelTSPPRRecommender",
    "PPRRecommender",
    "PopRecommender",
    "RandomRecommender",
    "RecencyRecommender",
    "Recommender",
    "ReproError",
    "STRECClassifier",
    "SplitConfig",
    "SplitDataset",
    "SurvivalRecommender",
    "TSPPRConfig",
    "TSPPRRecommender",
    "Vocabulary",
    "WindowConfig",
    "evaluate_recommender",
    "generate_gowalla",
    "generate_lastfm",
    "gowalla_default_config",
    "lastfm_default_config",
    "load_event_log",
    "load_model",
    "save_event_log",
    "save_model",
    "temporal_split",
    "time_recommender",
    "__version__",
]
