"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures the root logger — applications
stay in control of handlers and levels. :func:`enable_console_logging` is
a convenience for scripts and the CLI.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union


def coerce_level(level: Union[int, str]) -> int:
    """Resolve a logging level given as int or name ("info", "DEBUG", …).

    This is the parser behind every ``--log-level`` CLI flag; unknown
    names raise :class:`ValueError` so argparse reports them cleanly.
    """
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("models.tsppr")`` yields the ``repro.models.tsppr``
    logger; ``get_logger()`` yields the package root logger.
    """
    if name is None:
        return logging.getLogger("repro")
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def enable_console_logging(
    level: Union[int, str] = logging.INFO
) -> logging.Logger:
    """Attach a single stream handler to the package logger (idempotent).

    ``level`` may be an int or a level name (see :func:`coerce_level`).
    """
    logger = get_logger()
    logger.setLevel(coerce_level(level))
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger


@contextmanager
def log_duration(logger: logging.Logger, label: str) -> Iterator[None]:
    """Log how long the enclosed block took, at DEBUG level."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.debug("%s took %.3fs", label, elapsed)
