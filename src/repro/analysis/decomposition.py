"""Quality-vs-recency decomposition of observed reconsumptions.

Anderson et al. (WWW'14) — the paper's behavioural foundation — ask of
each reconsumption: was the chosen item the *most frequent* candidate
(quality-driven), the *most recent* candidate (recency-driven), both, or
neither? The share of each class characterizes a dataset's repeat
dynamics; it is the one-number version of Fig 4's curves and explains
which baselines (Pop vs Recency) should do well where.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.windows.repeat import iter_repeat_positions, recent_items


@dataclass(frozen=True)
class RepeatDecomposition:
    """Shares of reconsumption drivers over a dataset's repeat events."""

    n_events: int
    quality_share: float
    recency_share: float
    both_share: float
    neither_share: float

    def __post_init__(self) -> None:
        total = (
            self.quality_share
            + self.recency_share
            + self.both_share
            + self.neither_share
        )
        if self.n_events and abs(total - 1.0) > 1e-9:
            raise DataError(f"shares must sum to 1, got {total}")


def decompose_repeats(
    dataset: Dataset,
    window: WindowConfig = None,
) -> RepeatDecomposition:
    """Classify every qualifying repeat event in ``dataset``.

    An event counts as *quality-driven* when the chosen item has the
    (weakly) highest in-window count among candidates, *recency-driven*
    when it has the smallest gap, *both* when both hold, *neither*
    otherwise. Ties are resolved generously (weak maxima), matching the
    original study.
    """
    window = window or WindowConfig()
    quality_only = recency_only = both = neither = 0
    for sequence in dataset:
        for t, view in iter_repeat_positions(
            sequence, window.window_size, window.min_gap
        ):
            chosen = int(sequence[t])
            excluded = recent_items(sequence, t, window.min_gap)
            candidates = sorted(view.item_set - excluded)
            if len(candidates) < 2:
                continue
            counts = {item: view.count(item) for item in candidates}
            gaps = {
                item: t - sequence.last_position_before(item, t)
                for item in candidates
            }
            is_quality = counts[chosen] >= max(counts.values())
            is_recency = gaps[chosen] <= min(gaps.values())
            if is_quality and is_recency:
                both += 1
            elif is_quality:
                quality_only += 1
            elif is_recency:
                recency_only += 1
            else:
                neither += 1
    n_events = quality_only + recency_only + both + neither
    if n_events == 0:
        return RepeatDecomposition(0, 0.0, 0.0, 0.0, 0.0)
    return RepeatDecomposition(
        n_events=n_events,
        quality_share=quality_only / n_events,
        recency_share=recency_only / n_events,
        both_share=both / n_events,
        neither_share=neither / n_events,
    )
