"""Per-user repeat/novelty behavioural profiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError


@dataclass(frozen=True)
class UserProfile:
    """Behavioural summary of one user's consumption sequence.

    Attributes
    ----------
    user:
        Dense user index.
    n_consumptions / n_distinct_items:
        Volume and breadth of the history.
    repeat_ratio:
        Fraction of consumptions (from the second onward) whose item was
        consumed before — the user-level mixture of repeat vs
        novelty-seeking behaviour the paper's introduction describes.
    mean_repeat_gap / median_repeat_gap:
        Steps between consecutive consumptions of the same item.
    novelty_half_life:
        Position by which half of the user's distinct items had already
        appeared — small values mean early exploration then heavy
        repetition; values near the sequence length mean steady
        exploration.
    top_item_share:
        Fraction of all consumptions going to the user's single most
        consumed item (taste concentration).
    """

    user: int
    n_consumptions: int
    n_distinct_items: int
    repeat_ratio: float
    mean_repeat_gap: float
    median_repeat_gap: float
    novelty_half_life: int
    top_item_share: float


def _profile_of(user: int, items: List[int]) -> UserProfile:
    n = len(items)
    if n == 0:
        return UserProfile(user, 0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    seen: set = set()
    first_seen_positions: List[int] = []
    last_position: Dict[int, int] = {}
    gaps: List[int] = []
    repeats = 0
    counts: Dict[int, int] = {}
    for position, item in enumerate(items):
        counts[item] = counts.get(item, 0) + 1
        if item in seen:
            if position > 0:
                repeats += 1
            gaps.append(position - last_position[item])
        else:
            seen.add(item)
            first_seen_positions.append(position)
        last_position[item] = position

    n_distinct = len(seen)
    half_index = (n_distinct - 1) // 2
    half_life = first_seen_positions[half_index] if first_seen_positions else 0
    gap_array = np.asarray(gaps, dtype=np.float64)
    return UserProfile(
        user=user,
        n_consumptions=n,
        n_distinct_items=n_distinct,
        repeat_ratio=repeats / (n - 1) if n > 1 else 0.0,
        mean_repeat_gap=float(gap_array.mean()) if gap_array.size else 0.0,
        median_repeat_gap=float(np.median(gap_array)) if gap_array.size else 0.0,
        novelty_half_life=int(half_life),
        top_item_share=max(counts.values()) / n,
    )


def user_profiles(dataset: Dataset) -> List[UserProfile]:
    """One :class:`UserProfile` per user, in user order."""
    return [
        _profile_of(sequence.user, sequence.items.tolist())
        for sequence in dataset
    ]


def dataset_profile_summary(dataset: Dataset) -> Dict[str, float]:
    """Dataset-level means of the per-user profile fields.

    Raises
    ------
    DataError
        If the dataset has no users.
    """
    profiles = user_profiles(dataset)
    if not profiles:
        raise DataError("cannot summarize an empty dataset")
    return {
        "mean_repeat_ratio": float(
            np.mean([p.repeat_ratio for p in profiles])
        ),
        "mean_distinct_items": float(
            np.mean([p.n_distinct_items for p in profiles])
        ),
        "mean_repeat_gap": float(
            np.mean([p.mean_repeat_gap for p in profiles])
        ),
        "mean_top_item_share": float(
            np.mean([p.top_item_share for p in profiles])
        ),
        "mean_novelty_half_life": float(
            np.mean([p.novelty_half_life for p in profiles])
        ),
    }
