"""Item lifetime analysis within user histories.

An item's *lifetime* for a user spans its first to its last consumption;
its intensity is how many consumptions fall inside that span. Kapoor et
al.'s boredom studies (the paper's Refs. [9], [31]) describe exactly
this arc: items are consumed intensely for a while, then abandoned.
These summaries quantify the arc and feed abandonment-aware extensions
of the Survival baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.dataset import Dataset


@dataclass(frozen=True)
class ItemLifetime:
    """One (user, item) consumption arc."""

    user: int
    item: int
    first_position: int
    last_position: int
    n_consumptions: int

    @property
    def span(self) -> int:
        """Positions from first to last consumption, inclusive."""
        return self.last_position - self.first_position + 1

    @property
    def intensity(self) -> float:
        """Consumptions per position within the span (1.0 = every step)."""
        return self.n_consumptions / self.span


def item_lifetimes(dataset: Dataset, min_consumptions: int = 2) -> List[ItemLifetime]:
    """All (user, item) lifetimes with at least ``min_consumptions``."""
    if min_consumptions < 1:
        raise ValueError(
            f"min_consumptions must be >= 1, got {min_consumptions}"
        )
    lifetimes: List[ItemLifetime] = []
    for sequence in dataset:
        first: Dict[int, int] = {}
        last: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for position, item in enumerate(sequence.items.tolist()):
            first.setdefault(item, position)
            last[item] = position
            counts[item] = counts.get(item, 0) + 1
        for item, count in counts.items():
            if count >= min_consumptions:
                lifetimes.append(
                    ItemLifetime(
                        user=sequence.user,
                        item=item,
                        first_position=first[item],
                        last_position=last[item],
                        n_consumptions=count,
                    )
                )
    return lifetimes


def lifetime_summary(dataset: Dataset) -> Dict[str, float]:
    """Mean span / intensity / consumption count over all lifetimes."""
    lifetimes = item_lifetimes(dataset)
    if not lifetimes:
        return {"mean_span": 0.0, "mean_intensity": 0.0, "mean_consumptions": 0.0}
    return {
        "mean_span": float(np.mean([l.span for l in lifetimes])),
        "mean_intensity": float(np.mean([l.intensity for l in lifetimes])),
        "mean_consumptions": float(
            np.mean([l.n_consumptions for l in lifetimes])
        ),
    }
