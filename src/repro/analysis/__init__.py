"""Repeat-consumption analytics.

Descriptive tooling in the spirit of the behavioural studies the paper
builds on (Anderson et al. WWW'14; Chen et al. AAAI'15): per-user
repeat/novelty profiles, quality-vs-recency decomposition of observed
reconsumptions, feature-rank curves (the machinery behind Fig 4), and
item lifetime summaries. Useful both to sanity-check real datasets
before modelling and to verify the synthetic generators produce the
regimes they claim.
"""

from repro.analysis.profiles import (
    UserProfile,
    dataset_profile_summary,
    user_profiles,
)
from repro.analysis.decomposition import (
    RepeatDecomposition,
    decompose_repeats,
)
from repro.analysis.lifetimes import ItemLifetime, item_lifetimes

__all__ = [
    "ItemLifetime",
    "RepeatDecomposition",
    "UserProfile",
    "dataset_profile_summary",
    "decompose_repeats",
    "item_lifetimes",
    "user_profiles",
]
