"""Configuration dataclasses for models, data, and experiments.

Defaults mirror Table 4 of the paper ("Default settings of parameters"):

=========  =========  ========
Parameter  Gowalla    Lastfm
=========  =========  ========
λ          0.01       0.001
γ          0.05       0.1
K          40         40
S          10         10
Ω          10         10
=========  =========  ========

plus the global protocol constants ``|W| = 100`` (time-window capacity) and
the 70/30 per-user temporal split of Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

#: Time-window capacity used throughout the paper (Section 5.1).
DEFAULT_WINDOW_SIZE = 100

#: Minimum gap Ω: items consumed within the last Ω steps are neither
#: recommended nor counted as evaluation targets (Section 5.1).
DEFAULT_MIN_GAP = 10

#: Fraction of each user's sequence used for training (Section 5.1).
DEFAULT_TRAIN_FRACTION = 0.7

#: Names of the four generic behavioural features, in the order used by
#: the paper's feature vector f = {q̄_v, r_v, c_vt, m_vt}.
FEATURE_NAMES: Tuple[str, ...] = (
    "item_quality",
    "item_reconsumption_ratio",
    "recency",
    "dynamic_familiarity",
)


@dataclass(frozen=True)
class WindowConfig:
    """Parameters of the RRC window protocol.

    Attributes
    ----------
    window_size:
        ``|W|`` — how many trailing consumptions form the candidate window.
    min_gap:
        ``Ω`` — items consumed in the last ``min_gap`` steps are excluded
        from candidates and from evaluation targets (``0 < Ω < |W|``).
    """

    window_size: int = DEFAULT_WINDOW_SIZE
    min_gap: int = DEFAULT_MIN_GAP

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError(f"window_size must be positive, got {self.window_size}")
        if not 0 < self.min_gap < self.window_size:
            raise ValueError(
                f"min_gap must satisfy 0 < min_gap < window_size, got "
                f"min_gap={self.min_gap}, window_size={self.window_size}"
            )


@dataclass(frozen=True)
class TSPPRConfig:
    """Hyper-parameters of the TS-PPR model (Section 4, Table 4).

    Attributes
    ----------
    n_factors:
        ``K`` — dimension of the latent preference space.
    n_negative_samples:
        ``S`` — pre-sampled negatives per positive repeat consumption.
    lambda_mapping:
        ``λ`` — L2 penalty on the per-user mappings ``A_u``.
    gamma_latent:
        ``γ`` — L2 penalty on the latent matrices ``U`` and ``V``.
    learning_rate:
        ``α`` — SGD step size (Algorithm 1).
    convergence_tol:
        ``Δr̃`` threshold: training stops when the small-batch mean margin
        changes by at most this much between checks (Section 5.6.1). The
        paper reports ``1e-3`` on million-event datasets; at this
        reproduction's laptop scale the small batch is far noisier, so
        the default is tightened to ``3e-4`` to reach the same
        training depth.
    max_epochs:
        Hard cap on the number of SGD updates (one update per "epoch" in
        the paper's terminology, i.e. per sampled quadruple).
    batch_fraction:
        Fraction of the training set used both as the convergence-check
        small batch and as the spacing between checks (``n = m = |D|/10``
        in the paper means ``batch_fraction = 0.1``).
    recency_kind:
        Which recency feature to use: ``"hyperbolic"`` (Eq 19, the paper's
        choice) or ``"exponential"`` (Eq 20).
    feature_names:
        Which behavioural features compose ``f_uvt``; ablations (Fig 7)
        pass a subset of :data:`FEATURE_NAMES`.
    use_static_term:
        Whether the static ``uᵀv`` term is included (ablation hook; the
        paper always keeps it).
    share_mapping:
        If ``True``, learn a single mapping ``A`` shared by all users
        instead of per-user ``A_u`` (ablation hook).
    init_scale_latent / init_scale_mapping:
        Standard deviations of the zero-mean Gaussian initializations for
        ``U``, ``V`` and for ``A_u`` (Algorithm 1, line 1).
    seed:
        RNG seed for initialization and quadruple scheduling.
    training_engine:
        ``"vectorized"`` (default) runs the fit pipeline through the
        incremental quadruple sampler, the session-walk feature-cache
        builder, and the block-mode SGD kernels; ``"scalar"`` keeps the
        seed's per-row reference pipeline. Both produce bit-identical
        models — the knob exists for equivalence tests and benchmarks.
    """

    n_factors: int = 40
    n_negative_samples: int = 10
    lambda_mapping: float = 0.01
    gamma_latent: float = 0.05
    learning_rate: float = 0.05
    convergence_tol: float = 3e-4
    max_epochs: int = 400_000
    batch_fraction: float = 0.1
    recency_kind: str = "hyperbolic"
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    use_static_term: bool = True
    share_mapping: bool = False
    init_scale_latent: float = 0.1
    init_scale_mapping: float = 0.1
    seed: Optional[int] = None
    training_engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.n_factors <= 0:
            raise ValueError(f"n_factors must be positive, got {self.n_factors}")
        if self.n_negative_samples <= 0:
            raise ValueError(
                f"n_negative_samples must be positive, got {self.n_negative_samples}"
            )
        if self.lambda_mapping < 0 or self.gamma_latent < 0:
            raise ValueError("regularization parameters must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if not 0 < self.batch_fraction <= 1:
            raise ValueError(
                f"batch_fraction must lie in (0, 1], got {self.batch_fraction}"
            )
        if self.recency_kind not in ("hyperbolic", "exponential"):
            raise ValueError(
                f"recency_kind must be 'hyperbolic' or 'exponential', "
                f"got {self.recency_kind!r}"
            )
        if self.training_engine not in ("vectorized", "scalar"):
            raise ValueError(
                f"training_engine must be 'vectorized' or 'scalar', "
                f"got {self.training_engine!r}"
            )
        if not self.feature_names:
            raise ValueError("feature_names must contain at least one feature")
        unknown = set(self.feature_names) - set(FEATURE_NAMES)
        if unknown:
            # Custom features are allowed when registered (the paper's
            # "domain-specific extensions"); resolve lazily to avoid a
            # circular import at module load.
            from repro.features.base import available_features

            unregistered = unknown - set(available_features())
            if unregistered:
                raise ValueError(
                    f"unknown feature names: {sorted(unregistered)}"
                )

    @property
    def n_features(self) -> int:
        """``F`` — dimension of the observable behavioural feature space."""
        return len(self.feature_names)

    def with_overrides(self, **changes) -> "TSPPRConfig":
        """Return a copy with ``changes`` applied (sweep convenience)."""
        return replace(self, **changes)


def gowalla_default_config(**overrides) -> TSPPRConfig:
    """Table 4 defaults for the Gowalla(-like) dataset."""
    config = TSPPRConfig(lambda_mapping=0.01, gamma_latent=0.05)
    return config.with_overrides(**overrides) if overrides else config


def lastfm_default_config(**overrides) -> TSPPRConfig:
    """Table 4 defaults for the Lastfm(-like) dataset."""
    config = TSPPRConfig(lambda_mapping=0.001, gamma_latent=0.1)
    return config.with_overrides(**overrides) if overrides else config


@dataclass(frozen=True)
class SplitConfig:
    """Per-user temporal split protocol (Section 5.1).

    Users whose training share is shorter than ``min_train_length`` are
    dropped entirely (the paper keeps users with ``0.7 · |S_u| ≥ 100``).
    """

    train_fraction: float = DEFAULT_TRAIN_FRACTION
    min_train_length: int = DEFAULT_WINDOW_SIZE

    def __post_init__(self) -> None:
        if not 0 < self.train_fraction < 1:
            raise ValueError(
                f"train_fraction must lie in (0, 1), got {self.train_fraction}"
            )
        if self.min_train_length < 1:
            raise ValueError(
                f"min_train_length must be >= 1, got {self.min_train_length}"
            )


@dataclass(frozen=True)
class EvaluationConfig:
    """Protocol knobs for the accuracy evaluation (Section 5.3)."""

    top_ns: Tuple[int, ...] = (1, 5, 10)
    window: WindowConfig = field(default_factory=WindowConfig)

    def __post_init__(self) -> None:
        if not self.top_ns:
            raise ValueError("top_ns must not be empty")
        if any(n <= 0 for n in self.top_ns):
            raise ValueError(f"all top_ns must be positive, got {self.top_ns}")


def normalize_top_ns(top_ns: Sequence[int]) -> Tuple[int, ...]:
    """Validate and canonicalize a list of cut-offs (sorted, unique)."""
    values = sorted({int(n) for n in top_ns})
    if not values:
        raise ValueError("top_ns must not be empty")
    if values[0] <= 0:
        raise ValueError(f"top_ns must all be positive, got {top_ns}")
    return tuple(values)
