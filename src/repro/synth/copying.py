"""The per-user repeat/explore copy process.

Each simulated step either *explores* (probability ``p_explore``) —
drawing from the user's personal catalog with Zipf weights — or
*repeats* — copying an item from the recent history with weight

``w(v) = count_window(v)^frequency_exponent × gap(v)^(−recency_exponent)``

where ``count_window`` is the item's multiplicity in the last
``memory_span`` consumptions and ``gap`` the steps since its last
consumption. Large exponents concentrate repeats on frequent/recent
items (steep Fig 4 curves, Gowalla-like); exponents near zero flatten
the choice (Lastfm-like).

Additionally, per-user *item affinities* multiply both explore and
repeat weights, giving every user stable favourites — the personalized
signal TS-PPR's latent term and DYRC's weights can pick up.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import DataError
from repro.rng import RandomState, ensure_rng


def repeat_weights(
    history: List[int],
    memory_span: int,
    frequency_exponent: float,
    recency_exponent: float,
    affinities: Optional[Dict[int, float]] = None,
) -> "tuple[list[int], np.ndarray]":
    """Candidate items and unnormalized repeat weights at the next step.

    Returns the distinct items of the last ``memory_span`` history
    entries and their weights. Empty history yields empty outputs.
    """
    if memory_span <= 0:
        raise DataError(f"memory_span must be positive, got {memory_span}")
    window = history[-memory_span:]
    t_next = len(history)
    counts: Dict[int, int] = {}
    last_seen: Dict[int, int] = {}
    base = len(history) - len(window)
    for offset, item in enumerate(window):
        counts[item] = counts.get(item, 0) + 1
        last_seen[item] = base + offset
    items = sorted(counts)
    if not items:
        return [], np.empty(0)
    weights = np.empty(len(items), dtype=np.float64)
    for index, item in enumerate(items):
        gap = t_next - last_seen[item]
        weight = (counts[item] ** frequency_exponent) * (gap ** (-recency_exponent))
        if affinities is not None:
            weight *= affinities.get(item, 1.0)
        weights[index] = weight
    return items, weights


def most_recent_beyond_gap(
    history: List[int],
    memory_span: int,
    min_gap: int,
) -> Optional[int]:
    """The most recently consumed item whose gap exceeds ``min_gap``.

    Models "resume" behaviour — returning to the album/venue one left a
    little while ago — and returns ``None`` when no in-memory item lies
    beyond the gap.
    """
    t_next = len(history)
    window = history[-memory_span:]
    base = len(history) - len(window)
    recent = set(history[max(0, t_next - min_gap):])
    for offset in range(len(window) - 1, -1, -1):
        item = window[offset]
        if item not in recent:
            return item
    return None


def simulate_user_sequence(
    length: int,
    catalog: np.ndarray,
    catalog_weights: np.ndarray,
    p_explore: float,
    memory_span: int,
    frequency_exponent: float,
    recency_exponent: float,
    affinity_strength: float = 0.0,
    resume_probability: float = 0.0,
    resume_min_gap: int = 10,
    drift_interval: int = 0,
    drift_fraction: float = 0.5,
    random_state: RandomState = None,
) -> np.ndarray:
    """Simulate one user's consumption sequence.

    Parameters
    ----------
    length:
        Number of consumptions to generate.
    catalog:
        The user's personal item universe (distinct item indices).
    catalog_weights:
        Unnormalized explore weights over ``catalog`` (e.g. global Zipf
        probabilities restricted to the catalog).
    p_explore:
        Probability of an explore step (the first step always explores).
    memory_span:
        How far back the repeat process can copy from.
    frequency_exponent, recency_exponent:
        Steepness of the repeat choice (see module docstring).
    affinity_strength:
        ``> 0`` draws per-item log-normal affinities with this sigma,
        multiplying both explore and repeat weights.
    resume_probability:
        At a repeat step, probability of *resuming*: deterministically
        copying the most recent item whose gap exceeds
        ``resume_min_gap`` (album/venue resumption). Creates the regime
        where a pure-recency ranker is hard to beat at Top-1.
    resume_min_gap:
        The gap horizon defining "resume" targets; aligning it with the
        evaluation's Ω makes resumes land inside the evaluated range.
    drift_interval:
        If positive, the user's taste *drifts*: at each step with
        probability ``1 / drift_interval``, the affinities of a random
        ``drift_fraction`` of catalog items are resampled. Static
        factorizations (PPR, FPMC's user-item term) cannot track this,
        while window-local features (familiarity, recency) can — the
        temporal-preference premise of the paper.
    drift_fraction:
        Share of catalog items whose affinity is redrawn per drift event.
    """
    if length <= 0:
        raise DataError(f"length must be positive, got {length}")
    catalog = np.asarray(catalog, dtype=np.int64)
    if catalog.size == 0:
        raise DataError("catalog must not be empty")
    catalog_weights = np.asarray(catalog_weights, dtype=np.float64)
    if catalog_weights.shape != catalog.shape:
        raise DataError(
            f"catalog_weights shape {catalog_weights.shape} does not match "
            f"catalog shape {catalog.shape}"
        )
    if not 0 <= p_explore <= 1:
        raise DataError(f"p_explore must lie in [0, 1], got {p_explore}")
    rng = ensure_rng(random_state)

    if drift_interval < 0:
        raise DataError(f"drift_interval must be >= 0, got {drift_interval}")
    if not 0 < drift_fraction <= 1:
        raise DataError(f"drift_fraction must lie in (0, 1], got {drift_fraction}")

    affinities: Optional[Dict[int, float]] = None
    affinity_draws = np.ones(catalog.size)
    if affinity_strength > 0:
        affinity_draws = rng.lognormal(0.0, affinity_strength, catalog.size)
        affinities = {
            int(item): float(a) for item, a in zip(catalog.tolist(), affinity_draws)
        }

    def normalized_explore() -> np.ndarray:
        weights = catalog_weights * affinity_draws
        total = weights.sum()
        if total <= 0:
            raise DataError("catalog weights must contain a positive entry")
        return weights / total

    explore_probabilities = normalized_explore()

    if not 0 <= resume_probability <= 1:
        raise DataError(
            f"resume_probability must lie in [0, 1], got {resume_probability}"
        )

    history: List[int] = []
    for step in range(length):
        if (
            drift_interval
            and affinity_strength > 0
            and step > 0
            and rng.random() < 1.0 / drift_interval
        ):
            n_drift = max(1, int(catalog.size * drift_fraction))
            drifted = rng.choice(catalog.size, size=n_drift, replace=False)
            affinity_draws[drifted] = rng.lognormal(
                0.0, affinity_strength, n_drift
            )
            assert affinities is not None
            for position in drifted:
                affinities[int(catalog[int(position)])] = float(
                    affinity_draws[int(position)]
                )
            explore_probabilities = normalized_explore()
        explore = step == 0 or rng.random() < p_explore
        if not explore:
            if resume_probability and rng.random() < resume_probability:
                resumed = most_recent_beyond_gap(
                    history, memory_span, resume_min_gap
                )
                if resumed is not None:
                    history.append(resumed)
                    continue
            items, weights = repeat_weights(
                history,
                memory_span,
                frequency_exponent,
                recency_exponent,
                affinities,
            )
            weight_sum = weights.sum() if weights.size else 0.0
            if weight_sum > 0:
                choice = rng.choice(len(items), p=weights / weight_sum)
                history.append(int(items[int(choice)]))
                continue
            # Degenerate window: fall through to an explore step.
        choice = rng.choice(catalog.size, p=explore_probabilities)
        history.append(int(catalog[int(choice)]))
    return np.asarray(history, dtype=np.int64)
