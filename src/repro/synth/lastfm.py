"""Lastfm-like music-listening generator.

The real Last.fm data (Celma 2010) exhibits, per the paper:

* a *high* repeat rate — about 77% of listens are of previously played
  songs (the paper's Section 1, citing [9]),
* *flat* feature-rank curves (Fig 4's Lastfm panels) — repeats spread
  over many songs, so quality/reconsumption/familiarity discriminate
  weakly and TS-PPR's improvement is smaller,
* accuracy *rising* with Ω (Fig 11: the shrinking candidate set
  dominates the weak recency effect).

The preset realizes that regime: large personal catalogs, low explore
probability, weak frequency/recency exponents, weak affinities.

:func:`write_lastfm_event_log` additionally emits a raw event log with
play durations where a configurable fraction of listens are sub-30-second
skips, exercising the paper's "listens shorter than 30 seconds are
dislikes" loader filter end to end.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.data.dataset import Dataset
from repro.data.loaders import EventRecord, write_events
from repro.rng import RandomState, ensure_rng
from repro.synth.base import SyntheticConfig, generate_dataset

#: Parameters reproducing the Lastfm regime (laptop scale).
LASTFM_PRESET = SyntheticConfig(
    name="Lastfm-like",
    n_users=48,
    n_items=6000,
    sequence_length_range=(320, 560),
    catalog_size_range=(200, 380),
    zipf_exponent=0.9,
    p_explore_range=(0.16, 0.30),
    memory_span=220,
    frequency_exponent=0.65,
    recency_exponent=0.15,
    affinity_strength=0.9,
    explore_weight_exponent=0.35,
    resume_probability=0.05,
    frequency_heterogeneity=0.3,
    recency_heterogeneity=0.1,
)


def generate_lastfm(
    random_state: RandomState = None,
    user_factor: float = 1.0,
    length_factor: float = 1.0,
) -> Dataset:
    """Generate a Lastfm-like listening dataset."""
    config = LASTFM_PRESET
    if user_factor != 1.0 or length_factor != 1.0:
        config = config.scaled(user_factor, length_factor)
    return generate_dataset(config, random_state)


def write_lastfm_event_log(
    path: Union[str, Path],
    dataset: Dataset,
    skip_fraction: float = 0.08,
    random_state: RandomState = None,
) -> int:
    """Write ``dataset`` as a raw listening log with play durations.

    A ``skip_fraction`` of *extra* rows are injected with durations under
    30 seconds (the dislikes the paper's preprocessing removes); all real
    listens get durations of 30-300 seconds. Loading the file with
    ``load_event_log(path, min_duration=30.0)`` therefore reconstructs
    exactly the input dataset's sequences.
    """
    if not 0 <= skip_fraction < 1:
        raise ValueError(f"skip_fraction must lie in [0, 1), got {skip_fraction}")
    rng = ensure_rng(random_state)

    def _events():
        clock = 0
        for sequence in dataset:
            user_id = str(dataset.user_vocab.id_of(sequence.user))
            for item in sequence:
                if skip_fraction and rng.random() < skip_fraction:
                    # An injected skip: some other song, played < 30s.
                    skipped = int(rng.integers(dataset.n_items))
                    yield EventRecord(
                        user=user_id,
                        item=str(dataset.item_vocab.id_of(skipped)),
                        timestamp=float(clock),
                        duration=float(rng.uniform(2.0, 29.0)),
                    )
                    clock += 1
                yield EventRecord(
                    user=user_id,
                    item=str(dataset.item_vocab.id_of(item)),
                    timestamp=float(clock),
                    duration=float(rng.uniform(30.0, 300.0)),
                )
                clock += 1

    return write_events(path, _events())
