"""Synthetic dataset configuration and the top-level generator."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.exceptions import DataError
from repro.rng import RandomState, ensure_rng, spawn
from repro.synth.copying import simulate_user_sequence
from repro.synth.popularity import ZipfPopularity


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the repeat/explore copy process for one dataset.

    Attributes
    ----------
    name:
        Dataset label ("Gowalla-like", "Lastfm-like", ...).
    n_users, n_items:
        Population sizes. ``n_items`` is the global universe; each user
        sees only a personal catalog.
    sequence_length_range:
        Inclusive (min, max) of the uniform per-user sequence length.
    catalog_size_range:
        Inclusive (min, max) of the uniform per-user catalog size.
    zipf_exponent:
        Heavy-tailedness of global item popularity.
    p_explore_range:
        Inclusive (min, max) of the uniform per-user explore
        probability; ``1 − p_explore`` is roughly the repeat rate.
    memory_span:
        How far back the repeat process copies from.
    frequency_exponent, recency_exponent:
        Repeat-choice steepness (see :mod:`repro.synth.copying`).
    affinity_strength:
        Per-user item-affinity log-normal sigma (personalized taste).
    explore_weight_exponent:
        Exponent applied to the global popularity weights *within* a
        user's catalog when exploring: 1 keeps the full Zipf skew
        (explores concentrate on a few popular items), 0 makes explores
        uniform over the catalog (maximally diverse windows).
    resume_probability, resume_min_gap:
        "Resume" behaviour passed through to
        :func:`repro.synth.copying.simulate_user_sequence`.
    frequency_heterogeneity, recency_heterogeneity:
        Half-widths of per-user uniform jitter around the base
        exponents. Users then trade frequency against recency
        differently — the personalized structure TS-PPR's per-user
        mappings ``A_u`` exploit and globally weighted baselines
        (Pop, DYRC) cannot.
    drift_interval, drift_fraction:
        Taste drift passed through to
        :func:`repro.synth.copying.simulate_user_sequence` — defeats
        purely static factorizations (PPR, FPMC's user-item term).
    """

    name: str
    n_users: int = 60
    n_items: int = 4000
    sequence_length_range: Tuple[int, int] = (220, 420)
    catalog_size_range: Tuple[int, int] = (40, 120)
    zipf_exponent: float = 1.0
    p_explore_range: Tuple[float, float] = (0.3, 0.5)
    memory_span: int = 150
    frequency_exponent: float = 1.0
    recency_exponent: float = 1.0
    affinity_strength: float = 0.5
    explore_weight_exponent: float = 1.0
    resume_probability: float = 0.0
    resume_min_gap: int = 10
    frequency_heterogeneity: float = 0.0
    recency_heterogeneity: float = 0.0
    drift_interval: int = 0
    drift_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_items <= 0:
            raise DataError("n_users and n_items must be positive")
        low, high = self.sequence_length_range
        if not 0 < low <= high:
            raise DataError(
                f"invalid sequence_length_range {self.sequence_length_range}"
            )
        low, high = self.catalog_size_range
        if not 0 < low <= high:
            raise DataError(f"invalid catalog_size_range {self.catalog_size_range}")
        if high > self.n_items:
            raise DataError(
                f"catalog size {high} exceeds universe size {self.n_items}"
            )
        low, high = self.p_explore_range
        if not 0 <= low <= high <= 1:
            raise DataError(f"invalid p_explore_range {self.p_explore_range}")
        if self.memory_span <= 0:
            raise DataError(f"memory_span must be positive, got {self.memory_span}")

    def scaled(self, user_factor: float = 1.0, length_factor: float = 1.0) -> "SyntheticConfig":
        """A resized copy — used by the fast benchmark profile."""
        low, high = self.sequence_length_range
        return replace(
            self,
            n_users=max(2, int(self.n_users * user_factor)),
            sequence_length_range=(
                max(10, int(low * length_factor)),
                max(10, int(high * length_factor)),
            ),
        )


def generate_dataset(
    config: SyntheticConfig,
    random_state: RandomState = None,
) -> Dataset:
    """Generate a full dataset from a synthetic configuration.

    Each user gets an independent child RNG, so adding users never
    perturbs existing users' sequences for a fixed seed.
    """
    rng = ensure_rng(random_state)
    popularity = ZipfPopularity(config.n_items, config.zipf_exponent)
    probabilities = popularity.probabilities

    sequences = []
    children = spawn(rng, config.n_users)
    for user, child in enumerate(children):
        length = int(
            child.integers(
                config.sequence_length_range[0],
                config.sequence_length_range[1] + 1,
            )
        )
        catalog_size = int(
            child.integers(
                config.catalog_size_range[0],
                config.catalog_size_range[1] + 1,
            )
        )
        p_explore = float(
            child.uniform(config.p_explore_range[0], config.p_explore_range[1])
        )
        catalog = popularity.sample_distinct(catalog_size, child)
        catalog_weights = probabilities[catalog] ** config.explore_weight_exponent
        frequency_exponent = max(
            0.0,
            config.frequency_exponent
            + float(child.uniform(-1.0, 1.0)) * config.frequency_heterogeneity,
        )
        recency_exponent = max(
            0.0,
            config.recency_exponent
            + float(child.uniform(-1.0, 1.0)) * config.recency_heterogeneity,
        )
        items = simulate_user_sequence(
            length=length,
            catalog=catalog,
            catalog_weights=catalog_weights,
            p_explore=p_explore,
            memory_span=config.memory_span,
            frequency_exponent=frequency_exponent,
            recency_exponent=recency_exponent,
            affinity_strength=config.affinity_strength,
            resume_probability=config.resume_probability,
            resume_min_gap=config.resume_min_gap,
            drift_interval=config.drift_interval,
            drift_fraction=config.drift_fraction,
            random_state=child,
        )
        sequences.append(ConsumptionSequence(user, items))

    return Dataset(
        sequences,
        Vocabulary.identity(config.n_items),
        name=config.name,
    )
