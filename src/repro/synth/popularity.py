"""Zipf-distributed item popularity.

Real consumption logs have heavy-tailed item popularity; both the Pop
baseline's usefulness and the item-quality feature's discriminative
power (Fig 4a) depend on it. :class:`ZipfPopularity` provides an
explicit, truncated Zipf distribution over a finite item universe with
O(log n) inverse-CDF sampling.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.rng import RandomState, ensure_rng


class ZipfPopularity:
    """Truncated Zipf distribution over items ``0..n_items-1``.

    ``P(item at popularity rank r) ∝ (r + 1)^(−exponent)``; item index
    equals popularity rank (item 0 is the most popular), which keeps
    generated data easy to reason about in tests.

    Parameters
    ----------
    n_items:
        Universe size.
    exponent:
        Zipf exponent ``s >= 0``; 0 degenerates to uniform.
    """

    def __init__(self, n_items: int, exponent: float = 1.0) -> None:
        if n_items <= 0:
            raise DataError(f"n_items must be positive, got {n_items}")
        if exponent < 0:
            raise DataError(f"exponent must be non-negative, got {exponent}")
        self.n_items = n_items
        self.exponent = exponent
        weights = (np.arange(1, n_items + 1, dtype=np.float64)) ** (-exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        # Guard against floating-point drift at the tail.
        self._cdf[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """The full probability vector (read-only use)."""
        return self._probabilities

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        """Draw ``size`` item indices by inverse-CDF sampling."""
        if size < 0:
            raise DataError(f"size must be non-negative, got {size}")
        rng = ensure_rng(random_state)
        uniforms = rng.random(size)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def sample_distinct(
        self,
        size: int,
        random_state: RandomState = None,
        max_attempts_factor: int = 50,
    ) -> np.ndarray:
        """Draw ``size`` *distinct* items, popularity-biased.

        Used to build per-user catalogs: popular items appear in many
        users' catalogs, rare items in few. Falls back to uniform
        top-up if rejection sampling stalls (tiny universes).
        """
        if size > self.n_items:
            raise DataError(
                f"cannot draw {size} distinct items from a universe of "
                f"{self.n_items}"
            )
        rng = ensure_rng(random_state)
        chosen: "set[int]" = set()
        attempts = 0
        max_attempts = max_attempts_factor * size
        while len(chosen) < size and attempts < max_attempts:
            draws = self.sample(size, rng)
            for item in draws.tolist():
                chosen.add(item)
                if len(chosen) == size:
                    break
            attempts += size
        if len(chosen) < size:
            remaining = np.setdiff1d(
                np.arange(self.n_items), np.fromiter(chosen, dtype=np.int64)
            )
            extra = rng.choice(remaining, size - len(chosen), replace=False)
            chosen.update(int(e) for e in extra)
        return np.fromiter(sorted(chosen), dtype=np.int64)
