"""Synthetic consumption-sequence generators (dataset substitution).

The paper evaluates on Gowalla check-ins and Last.fm listens; neither
dump is reachable offline, so this subpackage generates sequences from a
*repeat/explore copy process* (after Anderson et al., WWW'14, the
paper's own behavioural reference):

at each step a user either **explores** — drawing a (possibly new) item
from a personal Zipf-weighted catalog — or **repeats** — drawing from
the recent history with weight
``count^frequency_exponent × gap^(−recency_exponent)``.

The two presets reproduce the regimes the paper's conclusions rest on:

* :func:`~repro.synth.gowalla.generate_gowalla` — moderate repeat rate,
  steep quality/reconsumption/recency discrimination (strong exponents,
  small catalogs) → large TS-PPR wins, accuracy falls with Ω;
* :func:`~repro.synth.lastfm.generate_lastfm` — ~77% repeat rate, flat
  discrimination (weak exponents, large catalogs) → small TS-PPR wins,
  accuracy rises with Ω.
"""

from repro.synth.base import SyntheticConfig, generate_dataset
from repro.synth.copying import simulate_user_sequence
from repro.synth.gowalla import GOWALLA_PRESET, generate_gowalla
from repro.synth.lastfm import (
    LASTFM_PRESET,
    generate_lastfm,
    write_lastfm_event_log,
)
from repro.synth.popularity import ZipfPopularity

__all__ = [
    "GOWALLA_PRESET",
    "LASTFM_PRESET",
    "SyntheticConfig",
    "ZipfPopularity",
    "generate_dataset",
    "generate_gowalla",
    "generate_lastfm",
    "simulate_user_sequence",
    "write_lastfm_event_log",
]
