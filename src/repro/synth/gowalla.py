"""Gowalla-like LBSN check-in generator.

The real Gowalla dump (Cho et al., KDD'11) exhibits, per the paper's
Fig 4 and Section 5.3 discussion:

* a *moderate* window-repeat rate (location check-ins mix routine
  places with exploration),
* *steep* feature-rank curves — repeats concentrate heavily on
  high-quality, high-reconsumption-ratio, recently visited places,
* a *strong recency effect* (Fig 11: accuracy falls as Ω grows).

The preset below realizes that regime: small personal catalogs (people
frequent few venues), strong frequency/recency exponents, and strong
per-user affinities.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.rng import RandomState
from repro.synth.base import SyntheticConfig, generate_dataset

#: Parameters reproducing the Gowalla regime (laptop scale).
GOWALLA_PRESET = SyntheticConfig(
    name="Gowalla-like",
    n_users=60,
    n_items=4000,
    sequence_length_range=(220, 400),
    catalog_size_range=(150, 300),
    zipf_exponent=0.7,
    p_explore_range=(0.40, 0.60),
    memory_span=120,
    frequency_exponent=1.5,
    recency_exponent=1.3,
    affinity_strength=2.0,
    explore_weight_exponent=0.2,
    frequency_heterogeneity=1.2,
    recency_heterogeneity=1.0,
)


def generate_gowalla(
    random_state: RandomState = None,
    user_factor: float = 1.0,
    length_factor: float = 1.0,
) -> Dataset:
    """Generate a Gowalla-like check-in dataset.

    ``user_factor`` / ``length_factor`` rescale the preset for fast test
    and benchmark profiles.
    """
    config = GOWALLA_PRESET
    if user_factor != 1.0 or length_factor != 1.0:
        config = config.scaled(user_factor, length_factor)
    return generate_dataset(config, random_state)
