"""Per-user temporal train/test split (Section 5.1 of the paper).

For each user, the first ``train_fraction`` (default 70%) of the
consumption sequence is the training prefix and the remainder is the
test suffix. Users whose training prefix would be shorter than
``min_train_length`` (the window capacity ``|W| = 100`` in the paper)
are dropped before splitting.

The test side is evaluated *with history*: recommending at test position
``t`` needs the window ending just before ``t``, which may reach back
into the training prefix. :class:`SplitDataset` therefore keeps the full
sequences along with the per-user split boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SplitConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import SplitError


@dataclass(frozen=True)
class SplitDataset:
    """A dataset with per-user temporal split boundaries.

    Attributes
    ----------
    dataset:
        The filtered dataset (users failing the length filter removed).
    boundaries:
        ``boundaries[u]`` is the first *test* position of user ``u``;
        positions ``< boundaries[u]`` form the training prefix.
    """

    dataset: Dataset
    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != self.dataset.n_users:
            raise SplitError(
                f"{len(self.boundaries)} boundaries for "
                f"{self.dataset.n_users} users"
            )
        for user, boundary in enumerate(self.boundaries):
            length = len(self.dataset.sequence(user))
            if not 0 < boundary <= length:
                raise SplitError(
                    f"user {user}: boundary {boundary} outside (0, {length}]"
                )

    @property
    def n_users(self) -> int:
        return self.dataset.n_users

    @property
    def n_items(self) -> int:
        return self.dataset.n_items

    def full_sequence(self, user: int) -> ConsumptionSequence:
        """The complete (train + test) sequence of ``user``."""
        return self.dataset.sequence(user)

    def train_boundary(self, user: int) -> int:
        """First test position of ``user``."""
        return self.boundaries[user]

    def train_sequence(self, user: int) -> ConsumptionSequence:
        """The training prefix of ``user``."""
        return self.dataset.sequence(user).prefix(self.boundaries[user])

    def test_sequence(self, user: int) -> ConsumptionSequence:
        """The held-out test suffix of ``user``."""
        return self.dataset.sequence(user).suffix(self.boundaries[user])

    def train_dataset(self, name: Optional[str] = None) -> Dataset:
        """All training prefixes as a standalone dataset.

        Static features (item quality, reconsumption ratio) and baseline
        statistics must be computed from this view only, never from the
        full sequences.
        """
        sequences = [
            self.train_sequence(user) for user in range(self.dataset.n_users)
        ]
        return Dataset(
            sequences,
            self.dataset.item_vocab,
            self.dataset.user_vocab,
            name=name or f"{self.dataset.name}-train",
        )

    def history_store(
        self,
        kind: str = "arena",
        base: str = "train",
        directory: Optional[str] = None,
    ):
        """The split's histories behind the ``HistoryStore`` protocol.

        ``base="train"`` packs each user's training prefix — the serving
        topology, where the test suffix arrives later as live events.
        ``base="full"`` packs the complete sequences — the offline
        evaluation topology, where the walk reads the whole history.
        """
        from repro.store import make_history_store

        if base == "train":
            histories = (
                self.dataset.sequence(user).items[: self.boundaries[user]]
                for user in range(self.dataset.n_users)
            )
        elif base == "full":
            histories = (
                self.dataset.sequence(user).items
                for user in range(self.dataset.n_users)
            )
        else:
            raise SplitError(
                f"base must be 'train' or 'full', got {base!r}"
            )
        return make_history_store(histories, kind=kind, directory=directory)

    def n_train_consumptions(self) -> int:
        return sum(self.boundaries)

    def n_test_consumptions(self) -> int:
        return self.dataset.n_consumptions() - self.n_train_consumptions()


def temporal_split(
    dataset: Dataset,
    config: Optional[SplitConfig] = None,
) -> SplitDataset:
    """Apply the paper's filtered 70/30 per-user temporal split.

    Users with ``floor(train_fraction · |S_u|) < min_train_length`` are
    removed; remaining users are re-indexed densely.

    Raises
    ------
    SplitError
        If no user survives the length filter.
    """
    config = config or SplitConfig()
    kept_users: List[int] = []
    for user in range(dataset.n_users):
        train_length = int(len(dataset.sequence(user)) * config.train_fraction)
        if train_length >= config.min_train_length:
            kept_users.append(user)
    if not kept_users:
        raise SplitError(
            f"no user satisfies {config.train_fraction:.0%} · |S_u| >= "
            f"{config.min_train_length} in dataset {dataset.name!r}"
        )
    filtered = dataset.subset_users(kept_users)
    boundaries = tuple(
        int(len(filtered.sequence(user)) * config.train_fraction)
        for user in range(filtered.n_users)
    )
    return SplitDataset(dataset=filtered, boundaries=boundaries)
