"""Bidirectional mapping between raw ids and dense integer indices.

Raw logs identify users and items with arbitrary hashable ids (strings,
ints, tuples). All numeric code in the library works on dense
``0..n-1`` indices so that latent matrices can be plain numpy arrays.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List

from repro.exceptions import VocabularyError


class Vocabulary:
    """An append-only bidirectional id ↔ index mapping.

    Indices are assigned densely in first-seen order, which keeps the
    mapping deterministic for a given input ordering.

    Examples
    --------
    >>> vocab = Vocabulary()
    >>> vocab.add("song-a")
    0
    >>> vocab.add("song-b")
    1
    >>> vocab.add("song-a")  # idempotent
    0
    >>> vocab.id_of(1)
    'song-b'
    """

    __slots__ = ("_index_of", "_ids")

    def __init__(self, ids: Iterable[Hashable] = ()) -> None:
        self._index_of: Dict[Hashable, int] = {}
        self._ids: List[Hashable] = []
        for raw_id in ids:
            self.add(raw_id)

    def add(self, raw_id: Hashable) -> int:
        """Insert ``raw_id`` if new and return its dense index."""
        existing = self._index_of.get(raw_id)
        if existing is not None:
            return existing
        index = len(self._ids)
        self._index_of[raw_id] = index
        self._ids.append(raw_id)
        return index

    def index_of(self, raw_id: Hashable) -> int:
        """Return the dense index of ``raw_id``.

        Raises
        ------
        VocabularyError
            If ``raw_id`` has never been added.
        """
        index = self._index_of.get(raw_id)
        if index is None:
            raise VocabularyError(f"unknown id: {raw_id!r}")
        return index

    def id_of(self, index: int) -> Hashable:
        """Return the raw id stored at ``index``."""
        if not 0 <= index < len(self._ids):
            raise VocabularyError(
                f"index {index} out of range for vocabulary of size {len(self._ids)}"
            )
        return self._ids[index]

    def __contains__(self, raw_id: Hashable) -> bool:
        return raw_id in self._index_of

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._ids == other._ids

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self._ids)})"

    @classmethod
    def identity(cls, size: int) -> "Vocabulary":
        """A vocabulary whose raw ids are already ``0..size-1`` ints.

        Convenient for synthetic datasets that are born dense.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return cls(range(size))
