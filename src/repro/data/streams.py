"""Incremental session state for online serving.

The batch machinery (:mod:`repro.windows`, :mod:`repro.features`)
recomputes windows and features from full sequences — fine for offline
evaluation, wasteful when serving a live stream. The paper motivates the
windowed problem definition partly with "fast online algorithms"
(Section 1); :class:`SessionTracker` is that algorithm's state:

* a rolling time window of capacity ``|W|`` (deque semantics),
* per-item in-window counts (dynamic familiarity in O(1)),
* per-item last-consumption positions over the *whole* history
  (recency in O(1)),
* the Ω-filtered candidate set, maintained incrementally.

Every query answers from dictionaries — no pass over the history — and
the unit tests assert exact agreement with the batch implementations on
random streams.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.config import WindowConfig
from repro.exceptions import DataError
from repro.features.vectorizer import BehavioralFeatureModel


class SessionTracker:
    """O(1)-per-event window/candidate/feature state for one user.

    Parameters
    ----------
    user:
        Dense user index (forwarded to models' scoring).
    window:
        The RRC protocol parameters (``|W|``, ``Ω``).

    Notes
    -----
    Positions are assigned by arrival order starting at 0, matching the
    batch convention where ``t`` indexes the consumption sequence. After
    ``consume`` has been called ``t`` times, the tracker answers queries
    "at position t" — i.e. about the *next*, not-yet-observed event.
    """

    def __init__(self, user: int, window: Optional[WindowConfig] = None) -> None:
        if user < 0:
            raise DataError(f"user must be non-negative, got {user}")
        self.user = user
        self.window_config = window or WindowConfig()
        self._window: Deque[int] = deque()
        self._window_counts: Dict[int, int] = {}
        self._last_position: Dict[int, int] = {}
        self._t = 0

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------
    def consume(self, item: int) -> None:
        """Observe the next consumption event."""
        item = int(item)
        if item < 0:
            raise DataError(f"item must be non-negative, got {item}")
        capacity = self.window_config.window_size
        if len(self._window) == capacity:
            evicted = self._window.popleft()
            remaining = self._window_counts[evicted] - 1
            if remaining:
                self._window_counts[evicted] = remaining
            else:
                del self._window_counts[evicted]
        self._window.append(item)
        self._window_counts[item] = self._window_counts.get(item, 0) + 1
        self._last_position[item] = self._t
        self._t += 1

    def consume_all(self, items) -> "SessionTracker":
        """Ingest a whole iterable of events; returns self."""
        for item in items:
            self.consume(item)
        return self

    # ------------------------------------------------------------------
    # Queries (all O(1) or O(|answer|))
    # ------------------------------------------------------------------
    @property
    def t(self) -> int:
        """Events consumed so far == the position of the next event."""
        return self._t

    def window_items(self) -> List[int]:
        """Window contents, oldest first (O(|W|))."""
        return list(self._window)

    def window_length(self) -> int:
        return len(self._window)

    def count_in_window(self, item: int) -> int:
        """In-window multiplicity of ``item``."""
        return self._window_counts.get(int(item), 0)

    def familiarity(self, item: int) -> float:
        """Dynamic familiarity ``m_vt`` (Eq 21) for the next position."""
        length = len(self._window)
        if length == 0:
            return 0.0
        return self.count_in_window(item) / length

    def gap(self, item: int) -> Optional[int]:
        """Steps since the item's last consumption; ``None`` if never."""
        last = self._last_position.get(int(item))
        if last is None:
            return None
        return self._t - last

    def recency(self, item: int, kind: str = "hyperbolic") -> float:
        """Recency feature ``c_vt`` (Eq 19 / Eq 20) for the next position."""
        item_gap = self.gap(item)
        if item_gap is None:
            return 0.0
        if kind == "hyperbolic":
            return 1.0 / item_gap
        if kind == "exponential":
            return float(np.exp(-item_gap))
        raise DataError(f"unknown recency kind {kind!r}")

    def is_repeat(self, item: int) -> bool:
        """Would consuming ``item`` next be a window repeat?"""
        return int(item) in self._window_counts

    def is_valid_target(self, item: int) -> bool:
        """Repeat *and* beyond the Ω gap — an RRC-scope event."""
        item_gap = self.gap(item)
        if item_gap is None or int(item) not in self._window_counts:
            return False
        return item_gap > self.window_config.min_gap

    def candidates(self) -> List[int]:
        """The Ω-filtered candidate set, sorted (matches batch protocol)."""
        min_gap = self.window_config.min_gap
        return sorted(
            item
            for item in self._window_counts
            if self._t - self._last_position[item] > min_gap
        )

    def feature_vector(
        self,
        item: int,
        feature_model: BehavioralFeatureModel,
    ) -> np.ndarray:
        """``f_uvt`` for the next position, from tracker state only.

        Static features come from the fitted model's lookup tables;
        dynamic ones from this tracker — no sequence object needed.
        """
        values = []
        for name in feature_model.feature_names:
            if name == "recency":
                extractor = feature_model.extractor("recency")
                values.append(self.recency(item, extractor.kind))  # type: ignore[attr-defined]
            elif name == "dynamic_familiarity":
                values.append(self.familiarity(item))
            else:
                # Static extractors ignore sequence/window arguments; a
                # lightweight shim provides the interface they expect.
                values.append(
                    feature_model.extractor(name).value(
                        _EMPTY_SEQUENCE, int(item), self._t, _EMPTY_WINDOW
                    )
                )
        return np.asarray(values, dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"SessionTracker(user={self.user}, t={self._t}, "
            f"window={len(self._window)}/{self.window_config.window_size})"
        )


class _EmptySequence:
    """Minimal stand-in passed to static extractors (never inspected)."""

    user = 0
    items = np.empty(0, dtype=np.int64)

    def last_position_before(self, item: int, t: int) -> int:
        raise DataError(
            "static feature extractors must not consult the sequence"
        )


class _EmptyWindow:
    """Minimal stand-in window for static extractors."""

    item_set: Set[int] = frozenset()

    def count(self, item: int) -> int:
        raise DataError("static feature extractors must not consult the window")

    def familiarity(self, item: int) -> float:
        raise DataError("static feature extractors must not consult the window")


_EMPTY_SEQUENCE = _EmptySequence()
_EMPTY_WINDOW = _EmptyWindow()
