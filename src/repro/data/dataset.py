"""Dataset container: all users' consumption sequences plus vocabularies.

A :class:`Dataset` is the object every other subsystem consumes. It owns

* one :class:`~repro.data.sequence.ConsumptionSequence` per user,
* the user and item :class:`~repro.data.vocab.Vocabulary` objects,
* cheap global statistics (item frequencies; Table 2-style summaries).

Item frequency over a dataset is the basis of the *item quality* feature
(Eq 16-17) and of the Pop baseline, so it is computed once and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.exceptions import DataError


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics in the shape of the paper's Table 2."""

    name: str
    n_users: int
    n_items: int
    n_consumptions: int
    n_distinct_consumed_items: int
    mean_sequence_length: float
    repeat_fraction: float

    def as_row(self) -> Dict[str, object]:
        """Dict form for table rendering."""
        return {
            "Data Set": self.name,
            "Users": self.n_users,
            "Items": self.n_items,
            "Consumption": self.n_consumptions,
            "Distinct consumed": self.n_distinct_consumed_items,
            "Mean |S_u|": round(self.mean_sequence_length, 1),
            "Repeat fraction": round(self.repeat_fraction, 4),
        }


class Dataset:
    """All consumption sequences of one data source.

    Parameters
    ----------
    sequences:
        One sequence per user; ``sequences[i].user`` must equal ``i``.
    item_vocab:
        Item vocabulary. Its size defines the dense item-index space;
        it may be larger than the set of items actually consumed (as in
        the paper, where the item universe dwarfs any user's history).
    user_vocab:
        Optional user vocabulary; defaults to identity ids.
    name:
        Human-readable label used in reports ("Gowalla-like", ...).
    """

    def __init__(
        self,
        sequences: Sequence[ConsumptionSequence],
        item_vocab: Vocabulary,
        user_vocab: Optional[Vocabulary] = None,
        name: str = "dataset",
    ) -> None:
        sequences = list(sequences)
        for expected_user, sequence in enumerate(sequences):
            if sequence.user != expected_user:
                raise DataError(
                    f"sequence at position {expected_user} belongs to user "
                    f"{sequence.user}; sequences must be dense and ordered"
                )
        n_items = len(item_vocab)
        for sequence in sequences:
            if len(sequence) and int(sequence.items.max()) >= n_items:
                raise DataError(
                    f"user {sequence.user} consumed item index "
                    f"{int(sequence.items.max())} outside vocabulary of size {n_items}"
                )
        if user_vocab is None:
            user_vocab = Vocabulary.identity(len(sequences))
        elif len(user_vocab) != len(sequences):
            raise DataError(
                f"user vocabulary size {len(user_vocab)} does not match "
                f"{len(sequences)} sequences"
            )
        self.name = name
        self._sequences: List[ConsumptionSequence] = sequences
        self.item_vocab = item_vocab
        self.user_vocab = user_vocab
        self._item_frequencies: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self._sequences)

    @property
    def n_items(self) -> int:
        return len(self.item_vocab)

    def history_store(self, kind: str = "arena", directory: Optional[str] = None):
        """This dataset's histories behind the ``HistoryStore`` protocol.

        ``kind`` is one of ``repro.store.STORE_KINDS``; the default packs
        every sequence into a columnar
        :class:`~repro.store.arena.ArenaHistoryStore` whose per-user
        reads are zero-copy views.
        """
        from repro.store import make_history_store

        return make_history_store(
            (sequence.items for sequence in self._sequences),
            kind=kind,
            directory=directory,
        )

    def sequence(self, user: int) -> ConsumptionSequence:
        """The consumption sequence of dense user index ``user``."""
        if not 0 <= user < len(self._sequences):
            raise DataError(
                f"user {user} out of range for dataset with {self.n_users} users"
            )
        return self._sequences[user]

    def __len__(self) -> int:
        return self.n_users

    def __iter__(self) -> Iterator[ConsumptionSequence]:
        return iter(self._sequences)

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, consumptions={self.n_consumptions()})"
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def n_consumptions(self) -> int:
        """Total number of consumption events across all users."""
        return sum(len(sequence) for sequence in self._sequences)

    def item_frequencies(self) -> np.ndarray:
        """Per-item consumption counts ``n_v`` over the whole dataset.

        Cached; the returned array is read-only.
        """
        if self._item_frequencies is None:
            counts = np.zeros(self.n_items, dtype=np.int64)
            for sequence in self._sequences:
                if len(sequence):
                    np.add.at(counts, sequence.items, 1)
            counts.setflags(write=False)
            self._item_frequencies = counts
        return self._item_frequencies

    def stats(self, window_size: int = 100) -> DatasetStats:
        """Table 2-style summary, plus the repeat fraction.

        The repeat fraction counts consumptions whose item already
        appears in the preceding ``window_size``-capacity window —
        the paper's notion of a repeat consumption.
        """
        n_consumptions = self.n_consumptions()
        distinct: set = set()
        repeats = 0
        positions = 0
        for sequence in self._sequences:
            items = sequence.items.tolist()
            distinct.update(items)
            for t, item in enumerate(items):
                if t == 0:
                    continue
                start = max(0, t - window_size)
                if item in set(items[start:t]):
                    repeats += 1
                positions += 1
        mean_length = n_consumptions / self.n_users if self.n_users else 0.0
        repeat_fraction = repeats / positions if positions else 0.0
        return DatasetStats(
            name=self.name,
            n_users=self.n_users,
            n_items=self.n_items,
            n_consumptions=n_consumptions,
            n_distinct_consumed_items=len(distinct),
            mean_sequence_length=mean_length,
            repeat_fraction=repeat_fraction,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_user_items(
        cls,
        user_items: Iterable[Sequence[int]],
        n_items: Optional[int] = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Build a dataset from per-user item-index lists.

        ``n_items`` defaults to one past the largest index observed.
        """
        sequences = [
            ConsumptionSequence(user, items)
            for user, items in enumerate(user_items)
        ]
        if n_items is None:
            max_seen = -1
            for sequence in sequences:
                if len(sequence):
                    max_seen = max(max_seen, int(sequence.items.max()))
            n_items = max_seen + 1
        return cls(sequences, Vocabulary.identity(n_items), name=name)

    def subset_users(self, users: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """A new dataset keeping only ``users`` (re-indexed densely).

        The item vocabulary is preserved so feature/frequency arrays stay
        aligned with the parent dataset.
        """
        kept = []
        user_ids = []
        for new_index, user in enumerate(users):
            old = self.sequence(user)
            kept.append(ConsumptionSequence(new_index, old.items))
            user_ids.append(self.user_vocab.id_of(user))
        return Dataset(
            kept,
            self.item_vocab,
            Vocabulary(user_ids),
            name=name or self.name,
        )
