"""Extended dataset statistics beyond the Table 2 summary.

These helpers quantify the repeat-consumption structure of a dataset:
gap distributions between repeats, per-user repeat ratios, and item
popularity profiles. They feed the Fig 4 experiment and the synthetic
generators' self-checks (the generators assert they produced the regime
they were asked for).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.data.dataset import Dataset


def per_user_repeat_ratio(dataset: Dataset, window_size: int = 100) -> np.ndarray:
    """Fraction of each user's consumptions that are window repeats.

    Position ``t`` counts as a repeat when its item occurs in the
    preceding ``window_size`` consumptions. Position 0 is never a repeat
    but is included in the denominator only from position 1 onward, so a
    user with fewer than two events gets ratio 0.
    """
    ratios = np.zeros(dataset.n_users, dtype=np.float64)
    for sequence in dataset:
        items = sequence.items.tolist()
        if len(items) < 2:
            continue
        repeats = 0
        for t in range(1, len(items)):
            start = max(0, t - window_size)
            if items[t] in set(items[start:t]):
                repeats += 1
        ratios[sequence.user] = repeats / (len(items) - 1)
    return ratios


def repeat_gap_histogram(dataset: Dataset, max_gap: int = 200) -> np.ndarray:
    """Histogram of gaps between consecutive consumptions of an item.

    ``result[g]`` counts pairs of same-item consumptions exactly ``g``
    steps apart within one user's sequence, for ``1 <= g <= max_gap``;
    index 0 is unused and stays 0. Gaps beyond ``max_gap`` are folded
    into the last bin.
    """
    if max_gap < 1:
        raise ValueError(f"max_gap must be >= 1, got {max_gap}")
    histogram = np.zeros(max_gap + 1, dtype=np.int64)
    for sequence in dataset:
        last_seen: Dict[int, int] = {}
        for t, item in enumerate(sequence.items.tolist()):
            previous = last_seen.get(item)
            if previous is not None:
                gap = min(t - previous, max_gap)
                histogram[gap] += 1
            last_seen[item] = t
    return histogram


def item_popularity_profile(dataset: Dataset, n_quantiles: int = 10) -> np.ndarray:
    """Quantiles of the positive item-frequency distribution.

    Returns ``n_quantiles + 1`` values (0%..100%) over items that were
    consumed at least once; all-zero if nothing was consumed.
    """
    frequencies = dataset.item_frequencies()
    positive = frequencies[frequencies > 0]
    if positive.size == 0:
        return np.zeros(n_quantiles + 1, dtype=np.float64)
    quantiles = np.linspace(0.0, 1.0, n_quantiles + 1)
    return np.quantile(positive, quantiles)


def sequence_length_summary(dataset: Dataset) -> Dict[str, float]:
    """Min / median / mean / max of per-user sequence lengths."""
    lengths = np.array([len(s) for s in dataset], dtype=np.float64)
    if lengths.size == 0:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": float(lengths.min()),
        "median": float(np.median(lengths)),
        "mean": float(lengths.mean()),
        "max": float(lengths.max()),
    }


def distinct_items_per_user(dataset: Dataset) -> np.ndarray:
    """Number of distinct items each user ever consumed."""
    counts = np.zeros(dataset.n_users, dtype=np.int64)
    for sequence in dataset:
        counts[sequence.user] = sequence.distinct_items().size
    return counts
