"""One user's time-ordered consumption sequence.

A :class:`ConsumptionSequence` is an immutable wrapper around a 1-D int
array of item indices, ordered by consumption time. Following the paper
(Section 3), "time" is the discrete position ``t`` in the sequence; the
wrapper exposes exactly the primitives the window/feature machinery
needs: slicing, per-item occurrence positions, and last-consumption
lookups.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Union

import numpy as np

from repro.exceptions import DataError


class ConsumptionSequence:
    """Immutable time-ascending consumption history of a single user.

    Parameters
    ----------
    user:
        Dense user index this sequence belongs to.
    items:
        Item indices in consumption order. Repetitions are expected —
        they are the whole point of the paper.

    Notes
    -----
    Positions (``t``) are 0-based throughout the library: ``sequence[0]``
    is the user's first observed consumption. The paper's 1-based ``x_t``
    maps to ``sequence[t - 1]``.
    """

    __slots__ = ("user", "_items", "_positions_of")

    def __init__(self, user: int, items: Sequence[int]) -> None:
        if user < 0:
            raise DataError(f"user index must be non-negative, got {user}")
        array = np.asarray(items, dtype=np.int64)
        if array.ndim != 1:
            raise DataError(
                f"items must be one-dimensional, got shape {array.shape}"
            )
        if array.size and array.min() < 0:
            raise DataError("item indices must be non-negative")
        array.setflags(write=False)
        self.user = int(user)
        self._items = array
        self._positions_of: Union[Dict[int, List[int]], None] = None

    @property
    def items(self) -> np.ndarray:
        """The read-only item-index array."""
        return self._items

    def __len__(self) -> int:
        return int(self._items.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items.tolist())

    def __getitem__(self, position: Union[int, slice]) -> Union[int, np.ndarray]:
        if isinstance(position, slice):
            return self._items[position]
        return int(self._items[position])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsumptionSequence):
            return NotImplemented
        return self.user == other.user and np.array_equal(self._items, other._items)

    def __repr__(self) -> str:
        return f"ConsumptionSequence(user={self.user}, length={len(self)})"

    # ------------------------------------------------------------------
    # Derived views used by windows and features
    # ------------------------------------------------------------------
    def distinct_items(self) -> np.ndarray:
        """Sorted array of the distinct items this user ever consumed."""
        return np.unique(self._items)

    def positions_of(self, item: int) -> List[int]:
        """All positions ``t`` with ``sequence[t] == item`` (ascending)."""
        return self._positions_index().get(int(item), [])

    def last_position_before(self, item: int, t: int) -> int:
        """Largest position ``p < t`` with ``sequence[p] == item``.

        This is the paper's ``l_ut(v)`` (Eq 19). Returns ``-1`` when the
        item was never consumed strictly before ``t``.
        """
        positions = self._positions_index().get(int(item))
        if not positions:
            return -1
        # Binary search for the rightmost position < t.
        lo, hi = 0, len(positions)
        while lo < hi:
            mid = (lo + hi) // 2
            if positions[mid] < t:
                lo = mid + 1
            else:
                hi = mid
        return positions[lo - 1] if lo else -1

    def count_before(self, item: int, t: int) -> int:
        """Number of consumptions of ``item`` at positions ``< t``."""
        positions = self._positions_index().get(int(item))
        if not positions:
            return 0
        lo, hi = 0, len(positions)
        while lo < hi:
            mid = (lo + hi) // 2
            if positions[mid] < t:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def prefix(self, length: int) -> "ConsumptionSequence":
        """The first ``length`` consumptions as a new sequence."""
        if length < 0:
            raise DataError(f"prefix length must be non-negative, got {length}")
        return ConsumptionSequence(self.user, self._items[:length])

    def suffix(self, start: int) -> "ConsumptionSequence":
        """The consumptions from position ``start`` onward."""
        if start < 0:
            raise DataError(f"suffix start must be non-negative, got {start}")
        return ConsumptionSequence(self.user, self._items[start:])

    def concat(self, other: "ConsumptionSequence") -> "ConsumptionSequence":
        """This sequence followed by ``other`` (same user required)."""
        if other.user != self.user:
            raise DataError(
                f"cannot concatenate sequences of users {self.user} and {other.user}"
            )
        return ConsumptionSequence(
            self.user, np.concatenate([self._items, other._items])
        )

    def _positions_index(self) -> Dict[int, List[int]]:
        """Lazily build and cache the item → positions index."""
        if self._positions_of is None:
            index: Dict[int, List[int]] = {}
            for position, item in enumerate(self._items.tolist()):
                index.setdefault(item, []).append(position)
            self._positions_of = index
        return self._positions_of
