"""Event-log readers and writers.

Real deployments of the paper's pipeline start from flat event logs:

* Gowalla check-ins: ``user<TAB>timestamp<TAB>lat<TAB>lon<TAB>location``
* Last.fm listens:  ``user<TAB>timestamp<TAB>artist<TAB>track`` with an
  optional play-duration column; listens shorter than 30 seconds are
  discarded as dislikes (Section 5.1).

This module reads such logs into :class:`~repro.data.dataset.Dataset`
objects, sorting each user's events by timestamp and mapping raw ids to
dense indices. A generic three-column format
(``user<SEP>item<SEP>timestamp[<SEP>duration]``) covers both sources;
the synthetic generators write the same format so the loader path is
exercised end to end.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.exceptions import DataError

#: Play duration (seconds) below which a listen counts as a dislike.
MIN_LISTEN_SECONDS = 30.0


@dataclass(frozen=True)
class EventRecord:
    """One implicit-feedback event from a raw log."""

    user: str
    item: str
    timestamp: float
    duration: Optional[float] = None


def read_events(
    path: Union[str, Path],
    delimiter: str = "\t",
    has_header: bool = False,
) -> Iterator[EventRecord]:
    """Stream :class:`EventRecord` objects from a delimited log file.

    Expected columns: ``user, item, timestamp[, duration]``. Blank lines
    are skipped; malformed rows raise :class:`~repro.exceptions.DataError`
    with the offending line number.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_number, row in enumerate(reader, start=1):
            if has_header and line_number == 1:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 3:
                raise DataError(
                    f"{path}:{line_number}: expected at least 3 columns "
                    f"(user, item, timestamp), got {len(row)}"
                )
            user, item, raw_timestamp = row[0].strip(), row[1].strip(), row[2].strip()
            if not user or not item:
                raise DataError(f"{path}:{line_number}: empty user or item id")
            try:
                timestamp = float(raw_timestamp)
            except ValueError as exc:
                raise DataError(
                    f"{path}:{line_number}: bad timestamp {raw_timestamp!r}"
                ) from exc
            duration: Optional[float] = None
            if len(row) >= 4 and row[3].strip():
                try:
                    duration = float(row[3])
                except ValueError as exc:
                    raise DataError(
                        f"{path}:{line_number}: bad duration {row[3]!r}"
                    ) from exc
            yield EventRecord(user=user, item=item, timestamp=timestamp, duration=duration)


def write_events(
    path: Union[str, Path],
    events: Iterable[EventRecord],
    delimiter: str = "\t",
) -> int:
    """Write events to a delimited log file; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for event in events:
            row: List[object] = [event.user, event.item, repr(float(event.timestamp))]
            if event.duration is not None:
                row.append(repr(float(event.duration)))
            writer.writerow(row)
            count += 1
    return count


def events_to_dataset(
    events: Iterable[EventRecord],
    name: str = "dataset",
    min_duration: Optional[float] = None,
) -> Dataset:
    """Group events by user, sort by timestamp, and build a dataset.

    Parameters
    ----------
    min_duration:
        If given, events carrying a duration shorter than this are
        dropped (the paper's 30-second Last.fm filter). Events without a
        duration column are always kept.

    Notes
    -----
    Sorting is stable, so events sharing a timestamp keep their log
    order — matching how the paper treats time as a position index.
    """
    per_user: Dict[str, List[Tuple[float, int, str]]] = {}
    arrival = 0
    for event in events:
        if (
            min_duration is not None
            and event.duration is not None
            and event.duration < min_duration
        ):
            continue
        per_user.setdefault(event.user, []).append(
            (event.timestamp, arrival, event.item)
        )
        arrival += 1

    user_vocab = Vocabulary(sorted(per_user))
    item_vocab = Vocabulary()
    sequences: List[ConsumptionSequence] = []
    for user_index, user_id in enumerate(user_vocab):
        rows = sorted(per_user[user_id])
        items = [item_vocab.add(item_id) for _, _, item_id in rows]
        sequences.append(ConsumptionSequence(user_index, items))
    return Dataset(sequences, item_vocab, user_vocab, name=name)


def load_event_log(
    path: Union[str, Path],
    name: Optional[str] = None,
    delimiter: str = "\t",
    has_header: bool = False,
    min_duration: Optional[float] = None,
) -> Dataset:
    """Read a log file straight into a :class:`Dataset`."""
    path = Path(path)
    return events_to_dataset(
        read_events(path, delimiter=delimiter, has_header=has_header),
        name=name or path.stem,
        min_duration=min_duration,
    )


def save_event_log(
    dataset: Dataset,
    path: Union[str, Path],
    delimiter: str = "\t",
) -> int:
    """Serialize a dataset back to the generic log format.

    Timestamps are synthesized from each event's global arrival order so
    a round-trip through :func:`load_event_log` reconstructs the same
    per-user sequences.
    """
    def _events() -> Iterator[EventRecord]:
        clock = 0
        for sequence in dataset:
            user_id = str(dataset.user_vocab.id_of(sequence.user))
            for item in sequence:
                yield EventRecord(
                    user=user_id,
                    item=str(dataset.item_vocab.id_of(item)),
                    timestamp=float(clock),
                )
                clock += 1

    return write_events(path, _events(), delimiter=delimiter)
