"""Event-log readers and writers.

Real deployments of the paper's pipeline start from flat event logs:

* Gowalla check-ins: ``user<TAB>timestamp<TAB>lat<TAB>lon<TAB>location``
* Last.fm listens:  ``user<TAB>timestamp<TAB>artist<TAB>track`` with an
  optional play-duration column; listens shorter than 30 seconds are
  discarded as dislikes (Section 5.1).

This module reads such logs into :class:`~repro.data.dataset.Dataset`
objects, sorting each user's events by timestamp and mapping raw ids to
dense indices. A generic three-column format
(``user<SEP>item<SEP>timestamp[<SEP>duration]``) covers both sources;
the synthetic generators write the same format so the loader path is
exercised end to end.

Dirty-input policy (``on_error``): real logs contain garbage rows, and
aborting a million-row load on row one is production-hostile. Readers
accept ``on_error="raise"`` (default — first malformed row raises
:class:`~repro.exceptions.DataError` with its line number) or
``on_error="skip"`` — malformed rows are quarantined with their line
numbers and reasons into a :class:`LoaderReport` and the stream
continues, subject to an *error budget*: if more than
``error_budget`` (a fraction, default 5%) of the data rows are bad,
the load aborts with a :class:`~repro.exceptions.DataError` anyway,
because at that point the log itself is suspect. Exactly-at-budget
loads succeed. Writers go through the atomic temp-file + rename path
so a crash mid-write never leaves a truncated log.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.exceptions import DataError
from repro.resilience.atomic import atomic_writer

#: Play duration (seconds) below which a listen counts as a dislike.
MIN_LISTEN_SECONDS = 30.0

#: Default ceiling on the fraction of malformed rows tolerated in
#: ``on_error="skip"`` mode before the whole load is aborted.
DEFAULT_ERROR_BUDGET = 0.05


@dataclass(frozen=True)
class EventRecord:
    """One implicit-feedback event from a raw log."""

    user: str
    item: str
    timestamp: float
    duration: Optional[float] = None


@dataclass(frozen=True)
class SkippedRow:
    """One quarantined malformed row."""

    line_number: int
    reason: str


@dataclass
class LoaderReport:
    """Quarantine report filled in by ``read_events(on_error="skip")``.

    Attributes
    ----------
    path:
        The log file the report describes.
    n_rows:
        Data rows seen (parsed + skipped; blank lines and the header
        don't count).
    skipped:
        The quarantined rows, each with its line number and reason —
        the triage artifact that used to be a crash.
    """

    path: Optional[str] = None
    n_rows: int = 0
    skipped: List[SkippedRow] = field(default_factory=list)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped)

    @property
    def error_fraction(self) -> float:
        """Fraction of data rows quarantined (0.0 on an empty log)."""
        return self.n_skipped / self.n_rows if self.n_rows else 0.0

    def render(self) -> str:
        """Human-readable quarantine summary."""
        header = (
            f"{self.path or '<log>'}: {self.n_skipped}/{self.n_rows} "
            f"rows quarantined"
        )
        lines = [header]
        for row in self.skipped:
            lines.append(f"  line {row.line_number}: {row.reason}")
        return "\n".join(lines)


def _parse_row(
    path: Path, line_number: int, row: List[str]
) -> EventRecord:
    """One data row -> :class:`EventRecord`, or :class:`DataError`."""
    if len(row) < 3:
        raise DataError(
            f"{path}:{line_number}: expected at least 3 columns "
            f"(user, item, timestamp), got {len(row)}"
        )
    user, item, raw_timestamp = row[0].strip(), row[1].strip(), row[2].strip()
    if not user or not item:
        raise DataError(f"{path}:{line_number}: empty user or item id")
    try:
        timestamp = float(raw_timestamp)
    except ValueError as exc:
        raise DataError(
            f"{path}:{line_number}: bad timestamp {raw_timestamp!r}"
        ) from exc
    duration: Optional[float] = None
    if len(row) >= 4 and row[3].strip():
        try:
            duration = float(row[3])
        except ValueError as exc:
            raise DataError(
                f"{path}:{line_number}: bad duration {row[3]!r}"
            ) from exc
    return EventRecord(user=user, item=item, timestamp=timestamp, duration=duration)


def read_events(
    path: Union[str, Path],
    delimiter: str = "\t",
    has_header: bool = False,
    on_error: str = "raise",
    error_budget: float = DEFAULT_ERROR_BUDGET,
    report: Optional[LoaderReport] = None,
) -> Iterator[EventRecord]:
    """Stream :class:`EventRecord` objects from a delimited log file.

    Expected columns: ``user, item, timestamp[, duration]``. Blank lines
    are skipped.

    Parameters
    ----------
    on_error:
        ``"raise"`` (default): the first malformed row raises
        :class:`~repro.exceptions.DataError` with its line number.
        ``"skip"``: malformed rows are quarantined into ``report`` and
        skipped; when the stream ends, a :class:`DataError` is raised
        if *more than* ``error_budget`` of the data rows were bad.
    error_budget:
        Tolerated malformed-row fraction in ``"skip"`` mode; exactly at
        the budget passes, one row over aborts.
    report:
        Optional caller-owned :class:`LoaderReport` to fill in (one is
        created internally otherwise, so the budget is still enforced).
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    if not 0.0 <= error_budget <= 1.0:
        raise ValueError(
            f"error_budget must lie in [0, 1], got {error_budget}"
        )
    path = Path(path)
    if report is None:
        report = LoaderReport()
    report.path = str(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_number, row in enumerate(reader, start=1):
            if has_header and line_number == 1:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            report.n_rows += 1
            try:
                event = _parse_row(path, line_number, row)
            except DataError as exc:
                if on_error == "raise":
                    raise
                report.skipped.append(
                    SkippedRow(line_number=line_number, reason=str(exc))
                )
                continue
            yield event
    if report.n_rows and report.error_fraction > error_budget:
        first = report.skipped[0]
        raise DataError(
            f"{path}: {report.n_skipped}/{report.n_rows} rows malformed, "
            f"over the {error_budget:.1%} error budget "
            f"(first bad row: line {first.line_number}: {first.reason})"
        )


def write_events(
    path: Union[str, Path],
    events: Iterable[EventRecord],
    delimiter: str = "\t",
) -> int:
    """Write events to a delimited log file; returns the row count.

    The write is atomic (temp file + fsync + rename): a crash mid-write
    leaves any pre-existing log untouched instead of truncated.
    """
    path = Path(path)
    count = 0
    with atomic_writer(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for event in events:
            row: List[object] = [event.user, event.item, repr(float(event.timestamp))]
            if event.duration is not None:
                row.append(repr(float(event.duration)))
            writer.writerow(row)
            count += 1
    return count


def events_to_dataset(
    events: Iterable[EventRecord],
    name: str = "dataset",
    min_duration: Optional[float] = None,
) -> Dataset:
    """Group events by user, sort by timestamp, and build a dataset.

    Parameters
    ----------
    min_duration:
        If given, events carrying a duration shorter than this are
        dropped (the paper's 30-second Last.fm filter). Events without a
        duration column are always kept.

    Notes
    -----
    Sorting is stable, so events sharing a timestamp keep their log
    order — matching how the paper treats time as a position index.
    """
    per_user: Dict[str, List[Tuple[float, int, str]]] = {}
    arrival = 0
    for event in events:
        if (
            min_duration is not None
            and event.duration is not None
            and event.duration < min_duration
        ):
            continue
        per_user.setdefault(event.user, []).append(
            (event.timestamp, arrival, event.item)
        )
        arrival += 1

    user_vocab = Vocabulary(sorted(per_user))
    item_vocab = Vocabulary()
    sequences: List[ConsumptionSequence] = []
    for user_index, user_id in enumerate(user_vocab):
        rows = sorted(per_user[user_id])
        items = [item_vocab.add(item_id) for _, _, item_id in rows]
        sequences.append(ConsumptionSequence(user_index, items))
    return Dataset(sequences, item_vocab, user_vocab, name=name)


def load_event_log(
    path: Union[str, Path],
    name: Optional[str] = None,
    delimiter: str = "\t",
    has_header: bool = False,
    min_duration: Optional[float] = None,
    on_error: str = "raise",
    error_budget: float = DEFAULT_ERROR_BUDGET,
    report: Optional[LoaderReport] = None,
) -> Dataset:
    """Read a log file straight into a :class:`Dataset`.

    ``on_error``/``error_budget``/``report`` forward to
    :func:`read_events` (see the module docstring for the policy).
    """
    path = Path(path)
    return events_to_dataset(
        read_events(
            path,
            delimiter=delimiter,
            has_header=has_header,
            on_error=on_error,
            error_budget=error_budget,
            report=report,
        ),
        name=name or path.stem,
        min_duration=min_duration,
    )


def save_event_log(
    dataset: Dataset,
    path: Union[str, Path],
    delimiter: str = "\t",
) -> int:
    """Serialize a dataset back to the generic log format.

    Timestamps are synthesized from each event's global arrival order so
    a round-trip through :func:`load_event_log` reconstructs the same
    per-user sequences.
    """
    def _events() -> Iterator[EventRecord]:
        clock = 0
        for sequence in dataset:
            user_id = str(dataset.user_vocab.id_of(sequence.user))
            for item in sequence:
                yield EventRecord(
                    user=user_id,
                    item=str(dataset.item_vocab.id_of(item)),
                    timestamp=float(clock),
                )
                clock += 1

    return write_events(path, _events(), delimiter=delimiter)
