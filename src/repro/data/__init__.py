"""Data model for user implicit-feedback consumption sequences.

The paper's unit of data is a per-user, time-ascending *consumption
sequence* ``S_u = (x_1, ..., x_T)`` over a shared item vocabulary. This
subpackage provides:

* :class:`~repro.data.vocab.Vocabulary` — bidirectional raw-id ↔ dense
  integer index mapping for users and items;
* :class:`~repro.data.sequence.ConsumptionSequence` — one user's ordered
  consumption history (ints into the item vocabulary);
* :class:`~repro.data.dataset.Dataset` — the collection of all sequences
  plus vocabularies and summary statistics (Table 2);
* loaders for event-log files (:mod:`repro.data.loaders`), including the
  paper's "drop listens shorter than 30 seconds" filter;
* the per-user 70/30 temporal split with the ``0.7·|S_u| ≥ |W|`` user
  filter (:mod:`repro.data.split`).
"""

from repro.data.dataset import Dataset, DatasetStats
from repro.data.loaders import (
    EventRecord,
    load_event_log,
    read_events,
    save_event_log,
    write_events,
)
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset, temporal_split
from repro.data.vocab import Vocabulary

__all__ = [
    "ConsumptionSequence",
    "Dataset",
    "DatasetStats",
    "EventRecord",
    "SplitDataset",
    "Vocabulary",
    "load_event_log",
    "read_events",
    "save_event_log",
    "temporal_split",
    "write_events",
]
