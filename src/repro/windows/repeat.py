"""Repeat/novel labeling and RRC candidate construction.

All functions take a 0-based position ``t`` naming the consumption being
classified or predicted (``x_t`` in 1-based paper notation maps to
position ``t - 1`` here). The window used is always the one *before*
``t`` — ``W_{u, t-1}`` in the paper.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError
from repro.windows.window import WindowView, window_before


def recent_items(sequence: ConsumptionSequence, t: int, min_gap: int) -> Set[int]:
    """Items consumed in the last ``min_gap`` positions before ``t``.

    These are the items the paper deems trivially remembered and
    therefore excluded both from recommendation candidates and from
    evaluation targets (parameter ``Ω``, Section 5.1).
    """
    if min_gap < 0:
        raise DataError(f"min_gap must be non-negative, got {min_gap}")
    start = max(0, t - min_gap)
    return set(sequence.items[start:t].tolist())


def is_repeat(sequence: ConsumptionSequence, t: int, window_size: int) -> bool:
    """Whether the consumption at position ``t`` repeats from its window."""
    if not 0 <= t < len(sequence):
        raise DataError(
            f"position {t} outside [0, {len(sequence)}) for user {sequence.user}"
        )
    window = window_before(sequence, t, window_size)
    return sequence[t] in window


def is_valid_target(
    sequence: ConsumptionSequence,
    t: int,
    window_size: int,
    min_gap: int,
) -> bool:
    """Whether position ``t`` is an RRC training/evaluation target.

    True iff ``x_t`` is a repeat from its window **and** the same item
    was not consumed within the last ``min_gap`` positions.
    """
    if not is_repeat(sequence, t, window_size):
        return False
    return sequence[t] not in recent_items(sequence, t, min_gap)


def candidate_items(
    sequence: ConsumptionSequence,
    t: int,
    window_size: int,
    min_gap: int,
) -> List[int]:
    """The RRC candidate set at position ``t`` (sorted for determinism).

    Distinct items of the window before ``t``, minus items consumed in
    the last ``min_gap`` positions.
    """
    window = window_before(sequence, t, window_size)
    excluded = recent_items(sequence, t, min_gap)
    return sorted(window.item_set - excluded)


def iter_repeat_positions(
    sequence: ConsumptionSequence,
    window_size: int,
    min_gap: int,
    start: int = 0,
    stop: Optional[int] = None,
) -> Iterator[Tuple[int, WindowView]]:
    """Yield ``(t, window_before_t)`` for every valid RRC target position.

    Scans positions ``[max(start, 1), stop)`` (``stop`` defaults to the
    sequence length). Used both for training-positive extraction (scan
    the training prefix) and for evaluation (scan the test suffix with
    full history available).

    The scan maintains the window incrementally through per-item
    last-occurrence bookkeeping, so a full pass is O(length) in window
    membership checks rather than O(length × window_size).
    """
    if stop is None:
        stop = len(sequence)
    if not 0 <= start <= stop <= len(sequence):
        raise DataError(
            f"invalid scan range [{start}, {stop}) for sequence of length "
            f"{len(sequence)}"
        )
    items = sequence.items
    for t in range(max(start, 1), stop):
        item = int(items[t])
        last = sequence.last_position_before(item, t)
        if last < 0:
            continue
        gap = t - last
        if gap > window_size:
            continue  # not in the window: a novel (re)consumption
        if gap <= min_gap:
            continue  # too recent: excluded by Ω
        yield t, window_before(sequence, t, window_size)


def iter_evaluation_positions(
    sequence: ConsumptionSequence,
    boundary: int,
    window_size: int,
    min_gap: int,
) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(t, candidates)`` for each test-side RRC target.

    ``boundary`` is the first test position; windows may reach back into
    the training prefix, which is exactly the paper's protocol (the test
    sequence continues the user's history).
    """
    for t, window in iter_repeat_positions(
        sequence, window_size, min_gap, start=boundary
    ):
        excluded = recent_items(sequence, t, min_gap)
        candidates = sorted(window.item_set - excluded)
        if candidates:
            yield t, candidates
