"""Window views over consumption sequences.

A :class:`WindowView` is a lightweight snapshot of the trailing portion
of a user's history right before some position ``t``. It exposes the
quantities the behavioural features need — per-item counts inside the
window and the window length — without copying more than one slice.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError


class WindowView:
    """The consumptions at positions ``[start, end)`` of one sequence.

    Attributes
    ----------
    user:
        Dense user index the window belongs to.
    start, end:
        Half-open position range within the owning sequence. ``end`` is
        the position the window is "before": recommending ``x_end`` uses
        exactly this view.
    items:
        Read-only array of the item indices inside the window, oldest
        first.
    """

    __slots__ = ("user", "start", "end", "items", "_counts", "_item_set")

    def __init__(self, user: int, start: int, end: int, items: np.ndarray) -> None:
        self.user = user
        self.start = start
        self.end = end
        self.items = items
        self._counts: Dict[int, int] = {}
        self._item_set: FrozenSet[int] = frozenset()
        counts: Dict[int, int] = {}
        for item in items.tolist():
            counts[item] = counts.get(item, 0) + 1
        self._counts = counts
        self._item_set = frozenset(counts)

    def __len__(self) -> int:
        return int(self.items.size)

    def __contains__(self, item: int) -> bool:
        return int(item) in self._item_set

    def __repr__(self) -> str:
        return (
            f"WindowView(user={self.user}, start={self.start}, "
            f"end={self.end}, length={len(self)})"
        )

    @property
    def item_set(self) -> FrozenSet[int]:
        """Distinct items present in the window."""
        return self._item_set

    def count(self, item: int) -> int:
        """How many times ``item`` occurs in the window."""
        return self._counts.get(int(item), 0)

    def distinct_items(self) -> List[int]:
        """Distinct items, sorted ascending for determinism."""
        return sorted(self._item_set)

    def familiarity(self, item: int) -> float:
        """The dynamic-familiarity feature ``m_vt`` (Eq 21) for ``item``.

        Fraction of the window's consumptions that are ``item``; 0 for an
        empty window.
        """
        length = len(self)
        if length == 0:
            return 0.0
        return self.count(item) / length

    def last_occurrence(self, item: int) -> int:
        """Most recent position ``< end`` where ``item`` occurs, or -1."""
        item = int(item)
        if item not in self._item_set:
            return -1
        local = np.flatnonzero(self.items == item)
        return self.start + int(local[-1])


def window_before(
    sequence: ConsumptionSequence,
    t: int,
    window_size: int,
) -> WindowView:
    """The window of up to ``window_size`` consumptions before position ``t``.

    This is the paper's ``W_{u, t-1}`` when the incoming consumption is
    ``x_t``: positions ``[max(0, t - window_size), t - 1]``. For small
    ``t`` the window is simply shorter.

    Raises
    ------
    DataError
        If ``t`` lies outside ``[0, len(sequence)]`` (``t == len`` is
        allowed: recommending the not-yet-observed next consumption) or
        ``window_size`` is not positive.
    """
    if window_size <= 0:
        raise DataError(f"window_size must be positive, got {window_size}")
    if not 0 <= t <= len(sequence):
        raise DataError(
            f"position {t} outside [0, {len(sequence)}] for user {sequence.user}"
        )
    start = max(0, t - window_size)
    return WindowView(sequence.user, start, t, sequence.items[start:t])
