"""Time windows, repeat/novel labeling, and RRC candidate sets.

Conventions (0-based positions, window *before* a position):

* ``window_before(sequence, t, size)`` covers positions
  ``[max(0, t - size), t - 1]`` — the paper's ``W_{u, t-1}`` when the
  next incoming consumption is ``x_t``.
* ``x_t`` is a *repeat* iff its item occurs in that window.
* ``x_t`` is a *valid RRC target* iff it is a repeat **and** the item was
  not consumed in the last ``Ω`` positions ``[t - Ω, t - 1]``
  (Section 5.1: recently consumed items need no recommendation).
* The *candidate set* at ``t`` is the distinct items of the window minus
  the items of the last ``Ω`` positions.
"""

from repro.windows.repeat import (
    candidate_items,
    is_repeat,
    is_valid_target,
    iter_evaluation_positions,
    iter_repeat_positions,
    recent_items,
)
from repro.windows.window import WindowView, window_before

__all__ = [
    "WindowView",
    "candidate_items",
    "is_repeat",
    "is_valid_target",
    "iter_evaluation_positions",
    "iter_repeat_positions",
    "recent_items",
    "window_before",
]
