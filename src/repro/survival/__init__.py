"""Survival-analysis substrate: Cox proportional hazards from scratch.

The paper's **Survival** baseline (Kapoor et al., KDD'14) models the
time until a user *returns* to an item with a Cox proportional-hazards
regression. The reference implementation used the ``lifelines`` package,
which is not available in this offline environment, so
:mod:`repro.survival.cox` implements the standard estimator directly:

* partial likelihood with **Breslow** handling of tied event times,
* **Newton-Raphson** maximization (via :mod:`repro.optim.newton`),
* **Breslow** baseline cumulative-hazard estimator.

:mod:`repro.survival.datasets` converts consumption sequences into the
(duration, event, covariates) triples the model consumes.
"""

from repro.survival.cox import CoxPHModel
from repro.survival.datasets import SurvivalData, build_return_time_data

__all__ = ["CoxPHModel", "SurvivalData", "build_return_time_data"]
