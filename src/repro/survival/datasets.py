"""Converting consumption sequences into survival observations.

Following Kapoor et al. (KDD'14), the unit of observation is a
*return interval*: the gap (in consumption steps) between two
consecutive consumptions of the same item by the same user. The interval
closed by an observed reconsumption is an event (``event = 1``); the
open interval from an item's last consumption to the end of the user's
training history is right-censored (``event = 0``).

The covariates are the ones the reference model uses (and the paper's
Fig 13 discussion names explicitly): per-(user, item) return-gap
statistics —

0. ``log1p`` of the **time-weighted average return time** of the pair's
   previous intervals (recent gaps weighted geometrically higher);
   intervals with no history fall back to ``DEFAULT_GAP``;
1. ``log1p`` of how many times the user has consumed the item so far.

Computing the time-weighted average online requires a pass over the
user's past consumptions, which is what makes the Survival baseline's
online recommendation orders of magnitude slower than the others
(Fig 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError

#: Number of covariates produced per observation.
N_COVARIATES = 2

#: Gap assumed for a pair with no prior return interval (the window
#: capacity: "about as far back as the model can see").
DEFAULT_GAP = 100.0

#: Geometric decay of older gaps in the time-weighted average.
GAP_DECAY = 0.7


@dataclass(frozen=True)
class SurvivalData:
    """Aligned arrays of survival observations."""

    durations: np.ndarray
    events: np.ndarray
    covariates: np.ndarray

    def __post_init__(self) -> None:
        n = self.durations.shape[0]
        if self.events.shape[0] != n or self.covariates.shape[0] != n:
            raise DataError("survival arrays must have equal length")

    def __len__(self) -> int:
        return int(self.durations.size)

    @property
    def n_events(self) -> int:
        return int(self.events.sum())


def weighted_average_gap(gaps: Sequence[float], decay: float = GAP_DECAY) -> float:
    """Time-weighted average return time: recent gaps count more.

    ``gaps`` are ordered oldest → newest; the newest gap gets weight 1,
    the one before it ``decay``, then ``decay²``, ...
    """
    if not gaps:
        return DEFAULT_GAP
    weight = 1.0
    numerator = 0.0
    denominator = 0.0
    for gap in reversed(list(gaps)):
        numerator += weight * gap
        denominator += weight
        weight *= decay
    return numerator / denominator


def return_covariates(twa_gap: float, consumption_count: int) -> np.ndarray:
    """The covariate vector for one (user, item) return interval."""
    if consumption_count < 1:
        raise DataError(
            f"consumption_count must be >= 1, got {consumption_count}"
        )
    if twa_gap <= 0:
        raise DataError(f"twa_gap must be positive, got {twa_gap}")
    return np.array(
        [np.log1p(twa_gap), np.log1p(consumption_count)], dtype=np.float64
    )


def build_return_time_data(
    train_dataset: Dataset,
    max_observations_per_user: int = 2000,
) -> SurvivalData:
    """Extract return intervals from every user's training sequence.

    Parameters
    ----------
    train_dataset:
        Training prefixes only — the survival model must not see test
        gaps.
    max_observations_per_user:
        Cap on intervals contributed per user, taking the most recent
        ones. This bounds fitting cost on very long sequences, mirroring
        how the reference baseline subsampled long Last.fm histories.
    """
    durations: List[float] = []
    events: List[float] = []
    covariates: List[np.ndarray] = []

    for sequence in train_dataset:
        rows = _user_intervals(sequence)
        if len(rows) > max_observations_per_user:
            rows = rows[-max_observations_per_user:]
        for duration, event, row in rows:
            durations.append(duration)
            events.append(event)
            covariates.append(row)

    if not durations:
        raise DataError("no return intervals found in the training data")
    return SurvivalData(
        durations=np.asarray(durations, dtype=np.float64),
        events=np.asarray(events, dtype=np.float64),
        covariates=np.vstack(covariates),
    )


def _user_intervals(
    sequence: ConsumptionSequence,
) -> List[Tuple[float, float, np.ndarray]]:
    """(duration, event, covariates) rows for one user, oldest first."""
    rows: List[Tuple[float, float, np.ndarray]] = []
    last_seen: Dict[int, int] = {}
    seen_count: Dict[int, int] = {}
    past_gaps: Dict[int, List[float]] = {}
    items = sequence.items.tolist()
    for t, item in enumerate(items):
        previous = last_seen.get(item)
        if previous is not None:
            gap = float(t - previous)
            rows.append(
                (
                    gap,
                    1.0,
                    return_covariates(
                        weighted_average_gap(past_gaps.get(item, [])),
                        seen_count[item],
                    ),
                )
            )
            past_gaps.setdefault(item, []).append(gap)
        last_seen[item] = t
        seen_count[item] = seen_count.get(item, 0) + 1

    # Open intervals at the end of the training history are censored.
    length = len(items)
    for item, t in last_seen.items():
        duration = float(length - t)
        if duration <= 0:
            continue
        rows.append(
            (
                duration,
                0.0,
                return_covariates(
                    weighted_average_gap(past_gaps.get(item, [])),
                    seen_count[item],
                ),
            )
        )
    return rows
