"""Cox proportional-hazards regression.

The model: hazard of the event for subject ``i`` at time ``t`` is
``h(t | x_i) = h₀(t) · exp(x_iᵀ β)``. ``β`` is estimated by maximizing
the Breslow partial likelihood; the baseline cumulative hazard ``H₀`` by
the Breslow estimator. Right-censored observations are supported through
the ``events`` indicator.

The implementation is fully vectorized: observations are sorted by
descending duration once, after which risk-set aggregates are prefix
sums.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DataError, NotFittedError
from repro.optim.newton import newton_minimize


class CoxPHModel:
    """Cox proportional-hazards model with Breslow ties.

    Parameters
    ----------
    l2_penalty:
        Optional ridge penalty on ``β`` — stabilizes fits on the small,
        heavily tied discrete-gap datasets the Survival baseline
        produces.
    tol, max_iter:
        Newton-Raphson stopping controls.

    Attributes
    ----------
    coef_:
        Fitted ``β``, shape ``(n_covariates,)``.
    baseline_times_:
        Sorted distinct event times.
    baseline_cumhaz_:
        Breslow cumulative baseline hazard ``H₀`` at those times.
    """

    def __init__(
        self,
        l2_penalty: float = 1e-4,
        tol: float = 1e-7,
        max_iter: int = 200,
    ) -> None:
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.l2_penalty = l2_penalty
        self.tol = tol
        self.max_iter = max_iter
        self.coef_: Optional[np.ndarray] = None
        self.baseline_times_: Optional[np.ndarray] = None
        self.baseline_cumhaz_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        durations: np.ndarray,
        events: np.ndarray,
        covariates: np.ndarray,
    ) -> "CoxPHModel":
        """Fit ``β`` and the baseline hazard.

        Parameters
        ----------
        durations:
            Observed times (event or censoring), shape ``(n,)``; must be
            positive.
        events:
            1 where the event occurred, 0 where censored.
        covariates:
            Design matrix, shape ``(n, F)``.
        """
        durations = np.asarray(durations, dtype=np.float64).ravel()
        events = np.asarray(events, dtype=np.float64).ravel()
        X = np.asarray(covariates, dtype=np.float64)
        if X.ndim != 2:
            raise DataError(f"covariates must be 2-D, got shape {X.shape}")
        n, n_features = X.shape
        if durations.shape[0] != n or events.shape[0] != n:
            raise DataError(
                f"durations ({durations.shape[0]}), events ({events.shape[0]}) "
                f"and covariates ({n}) must agree in length"
            )
        if n == 0:
            raise DataError("cannot fit CoxPHModel on zero observations")
        if np.any(durations <= 0):
            raise DataError("all durations must be positive")
        if not set(np.unique(events).tolist()) <= {0.0, 1.0}:
            raise DataError("events must be a 0/1 indicator")
        if events.sum() == 0:
            raise DataError("at least one uncensored event is required")

        # Sort by descending duration so risk sets become prefixes.
        order = np.argsort(-durations, kind="stable")
        durations_sorted = durations[order]
        events_sorted = events[order]
        X_sorted = X[order]

        # Group boundaries of tied durations (descending order).
        boundaries = self._tie_group_ends(durations_sorted)

        def objective(beta: np.ndarray):
            return self._neg_partial_loglik(
                beta, durations_sorted, events_sorted, X_sorted, boundaries
            )

        result = newton_minimize(
            objective,
            np.zeros(n_features),
            tol=self.tol,
            max_iter=self.max_iter,
            raise_on_failure=False,
        )
        self.coef_ = result.x
        self.n_iter_ = result.n_iter

        self._fit_baseline(durations, events, X)
        return self

    @staticmethod
    def _tie_group_ends(durations_desc: np.ndarray) -> np.ndarray:
        """End index (exclusive) of every tie group in descending order."""
        n = durations_desc.size
        changes = np.flatnonzero(np.diff(durations_desc)) + 1
        return np.append(changes, n)

    def _neg_partial_loglik(
        self,
        beta: np.ndarray,
        durations_desc: np.ndarray,
        events_desc: np.ndarray,
        X_desc: np.ndarray,
        group_ends: np.ndarray,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Breslow negative partial log-likelihood + gradient + Hessian."""
        n, n_features = X_desc.shape
        scores = X_desc @ beta
        scores = np.clip(scores, -500, 500)  # guard exp overflow
        weights = np.exp(scores)

        # Prefix sums over the descending order = risk-set aggregates.
        weight_cum = np.cumsum(weights)
        weighted_X = X_desc * weights[:, None]
        weighted_X_cum = np.cumsum(weighted_X, axis=0)
        outer = X_desc[:, :, None] * X_desc[:, None, :] * weights[:, None, None]
        outer_cum = np.cumsum(outer, axis=0)

        value = 0.0
        gradient = np.zeros(n_features)
        hessian = np.zeros((n_features, n_features))
        group_start = 0
        for group_end in group_ends:
            group = slice(group_start, group_end)
            event_mask = events_desc[group] > 0
            d_k = float(event_mask.sum())
            if d_k > 0:
                risk_end = group_end - 1  # inclusive index into prefix sums
                W = weight_cum[risk_end]
                mean_x = weighted_X_cum[risk_end] / W
                mean_outer = outer_cum[risk_end] / W
                events_X = X_desc[group][event_mask]
                events_scores = scores[group][event_mask]
                value -= float(events_scores.sum()) - d_k * np.log(W)
                gradient -= events_X.sum(axis=0) - d_k * mean_x
                hessian += d_k * (mean_outer - np.outer(mean_x, mean_x))
            group_start = group_end

        if self.l2_penalty:
            value += 0.5 * self.l2_penalty * float(beta @ beta)
            gradient += self.l2_penalty * beta
            hessian += self.l2_penalty * np.eye(n_features)
        return value, gradient, hessian

    def _fit_baseline(
        self,
        durations: np.ndarray,
        events: np.ndarray,
        X: np.ndarray,
    ) -> None:
        """Breslow estimator of the cumulative baseline hazard ``H₀``."""
        assert self.coef_ is not None
        weights = np.exp(np.clip(X @ self.coef_, -500, 500))
        event_times = np.unique(durations[events > 0])
        cumhaz = np.empty(event_times.size, dtype=np.float64)
        running = 0.0
        for index, time in enumerate(event_times):
            d_k = float(((durations == time) & (events > 0)).sum())
            at_risk = float(weights[durations >= time].sum())
            running += d_k / at_risk
            cumhaz[index] = running
        self.baseline_times_ = event_times
        self.baseline_cumhaz_ = cumhaz

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.coef_ is None or self.baseline_times_ is None:
            raise NotFittedError("CoxPHModel used before fit")

    def predict_partial_hazard(self, covariates: np.ndarray) -> np.ndarray:
        """``exp(xᵀβ)`` per row — relative risk versus the baseline."""
        self._check_fitted()
        X = np.atleast_2d(np.asarray(covariates, dtype=np.float64))
        return np.exp(np.clip(X @ self.coef_, -500, 500))

    def cumulative_hazard(
        self, times: np.ndarray, covariates: np.ndarray
    ) -> np.ndarray:
        """``H(t | x) = H₀(t) · exp(xᵀβ)`` for paired times/rows."""
        self._check_fitted()
        times = np.asarray(times, dtype=np.float64).ravel()
        partial = self.predict_partial_hazard(covariates).ravel()
        if partial.size != times.size:
            raise DataError(
                f"times ({times.size}) and covariate rows ({partial.size}) "
                f"must pair up"
            )
        baseline = self._baseline_at(times)
        return baseline * partial

    def survival_function(
        self, times: np.ndarray, covariates: np.ndarray
    ) -> np.ndarray:
        """``S(t | x) = exp(−H(t | x))``."""
        return np.exp(-self.cumulative_hazard(times, covariates))

    def expected_return_score(
        self, elapsed: np.ndarray, covariates: np.ndarray
    ) -> np.ndarray:
        """Ranking score for "returns next" given elapsed time.

        The discrete-step analogue of the instantaneous return intensity:
        the conditional probability that the event lands in the next time
        step given survival so far,
        ``1 − exp(−(H(t+1|x) − H(t|x)))``. Monotone in the hazard, which
        is what the Survival recommender ranks by.
        """
        self._check_fitted()
        elapsed = np.asarray(elapsed, dtype=np.float64).ravel()
        partial = self.predict_partial_hazard(covariates).ravel()
        if partial.size != elapsed.size:
            raise DataError("elapsed and covariate rows must pair up")
        increment = self._baseline_at(elapsed + 1.0) - self._baseline_at(elapsed)
        # Items past the largest observed gap keep a tiny floor hazard so
        # ranking among them still follows the covariates.
        increment = np.maximum(increment, 1e-12)
        return 1.0 - np.exp(-increment * partial)

    def expected_return_time(self, covariates: np.ndarray) -> np.ndarray:
        """Restricted mean survival time ``E[T | x]`` per covariate row.

        Integrates the step survival function over the observed event-time
        grid: ``E[T] ≈ Σ_k S(t_k | x) · (t_{k+1} − t_k)`` with ``t_0 = 0``
        and the integral truncated at the largest observed event time.
        This is the "estimated return time" the continuous-time Survival
        baseline ranks by.
        """
        self._check_fitted()
        assert self.baseline_times_ is not None
        assert self.baseline_cumhaz_ is not None
        partial = self.predict_partial_hazard(covariates).ravel()
        times = self.baseline_times_
        # Survival just *before* each event time: S(t_k^-) uses H0 of the
        # previous step; contribution of [t_{k-1}, t_k) is S(t_{k-1}) Δt.
        padded_cumhaz = np.concatenate([[0.0], self.baseline_cumhaz_[:-1]])
        step_starts = np.concatenate([[0.0], times[:-1]])
        widths = times - step_starts
        # (n_rows, n_times): survival of each row at each step start.
        survival = np.exp(-np.outer(partial, padded_cumhaz))
        return survival @ widths

    def _baseline_at(self, times: np.ndarray) -> np.ndarray:
        """Step-function lookup of ``H₀`` at arbitrary times."""
        assert self.baseline_times_ is not None
        assert self.baseline_cumhaz_ is not None
        indices = np.searchsorted(self.baseline_times_, times, side="right")
        padded = np.concatenate([[0.0], self.baseline_cumhaz_])
        return padded[indices]

    def concordance_index(
        self,
        durations: np.ndarray,
        events: np.ndarray,
        covariates: np.ndarray,
    ) -> float:
        """Harrell's C-index of the fitted risk scores (sanity metric).

        Fraction of comparable pairs ordered correctly: higher risk →
        earlier event. 0.5 is chance; 1.0 is perfect.
        """
        self._check_fitted()
        durations = np.asarray(durations, dtype=np.float64).ravel()
        events = np.asarray(events, dtype=np.float64).ravel()
        risks = self.predict_partial_hazard(covariates).ravel()
        concordant = 0.0
        comparable = 0
        for i in range(durations.size):
            if events[i] == 0:
                continue
            # i experienced the event; j survived past durations[i].
            later = durations > durations[i]
            comparable += int(later.sum())
            concordant += float((risks[later] < risks[i]).sum())
            concordant += 0.5 * float((risks[later] == risks[i]).sum())
        if comparable == 0:
            return 0.5
        return concordant / comparable
