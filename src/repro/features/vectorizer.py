"""Assembling individual features into the vector ``f_uvt``.

:class:`BehavioralFeatureModel` is the object models interact with: fit
it once on the training dataset, then query feature vectors (or whole
candidate matrices) at recommendation or sampling time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import NotFittedError
from repro.features.base import FeatureExtractor, create_feature
from repro.features.dynamic import RecencyFeature
from repro.windows.window import WindowView, window_before


class BehavioralFeatureModel:
    """The observable feature map ``(u, v, t) → f_uvt ∈ [0, 1]^F``.

    Parameters
    ----------
    feature_names:
        Which features compose the vector, in order. Defaults to the
        paper's four. Names must be registered (see
        :func:`repro.features.base.register_feature`).
    recency_kind:
        Passed to the recency feature if it is among ``feature_names``:
        ``"hyperbolic"`` (Eq 19) or ``"exponential"`` (Eq 20).
    extractors:
        Alternatively, pre-built extractor instances; overrides
        ``feature_names``.
    """

    def __init__(
        self,
        feature_names: Optional[Sequence[str]] = None,
        recency_kind: str = "hyperbolic",
        extractors: Optional[Sequence[FeatureExtractor]] = None,
    ) -> None:
        if extractors is not None:
            self._extractors: List[FeatureExtractor] = list(extractors)
        else:
            if feature_names is None:
                feature_names = (
                    "item_quality",
                    "item_reconsumption_ratio",
                    "recency",
                    "dynamic_familiarity",
                )
            self._extractors = [
                RecencyFeature(recency_kind) if name == RecencyFeature.name
                else create_feature(name)
                for name in feature_names
            ]
        self._window_config: Optional[WindowConfig] = None

    @property
    def feature_names(self) -> Tuple[str, ...]:
        return tuple(extractor.name for extractor in self._extractors)

    @property
    def n_features(self) -> int:
        """``F`` — the observable feature dimension."""
        return len(self._extractors)

    @property
    def is_fitted(self) -> bool:
        return self._window_config is not None

    @property
    def window_config(self) -> WindowConfig:
        if self._window_config is None:
            raise NotFittedError("BehavioralFeatureModel not fitted")
        return self._window_config

    def fit(
        self,
        train_dataset: Dataset,
        window: Optional[WindowConfig] = None,
    ) -> "BehavioralFeatureModel":
        """Fit every static feature on the training dataset."""
        window = window or WindowConfig()
        for extractor in self._extractors:
            extractor.fit(train_dataset, window)
        self._window_config = window
        return self

    def extractor(self, name: str) -> FeatureExtractor:
        """Access one of the composed extractors by name."""
        for candidate in self._extractors:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no extractor named {name!r} in {self.feature_names}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vector(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: Optional[WindowView] = None,
    ) -> np.ndarray:
        """The feature vector ``f_uvt`` for one item at position ``t``."""
        if self._window_config is None:
            raise NotFittedError("BehavioralFeatureModel.vector called before fit")
        if window is None:
            window = window_before(sequence, t, self._window_config.window_size)
        return np.array(
            [ex.value(sequence, item, t, window) for ex in self._extractors],
            dtype=np.float64,
        )

    def matrix(
        self,
        sequence: ConsumptionSequence,
        items: Sequence[int],
        t: int,
        window: Optional[WindowView] = None,
    ) -> np.ndarray:
        """Feature vectors for many items at one position; shape (n, F).

        Sharing the window view across items makes this the fast path for
        scoring a whole candidate set.
        """
        if self._window_config is None:
            raise NotFittedError("BehavioralFeatureModel.matrix called before fit")
        if window is None:
            window = window_before(sequence, t, self._window_config.window_size)
        rows = np.empty((len(items), self.n_features), dtype=np.float64)
        for row, item in enumerate(items):
            for column, extractor in enumerate(self._extractors):
                rows[row, column] = extractor.value(sequence, int(item), t, window)
        return rows

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"BehavioralFeatureModel(features={list(self.feature_names)}, {state})"
