"""Static behavioural features: item quality and reconsumption ratio.

Both are per-item lookup tables learned from the training dataset only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import FeatureError, NotFittedError
from repro.features.base import FeatureExtractor, register_feature
from repro.windows.window import WindowView


def compute_item_quality(frequencies: np.ndarray) -> np.ndarray:
    """Normalized item quality ``q̄_v`` (Eq 16-17).

    ``q_v = ln(1 + n_v)``, min-max normalized over the whole item
    vocabulary. When every item has the same frequency the normalized
    quality is defined as all-zeros (the paper's formula is 0/0 there;
    any constant works since TS-PPR only consumes feature differences).
    """
    quality = np.log1p(np.asarray(frequencies, dtype=np.float64))
    q_min, q_max = float(quality.min()), float(quality.max())
    if q_max == q_min:
        return np.zeros_like(quality)
    return (quality - q_min) / (q_max - q_min)


def compute_reconsumption_ratio(
    dataset: Dataset,
    window_size: int,
) -> np.ndarray:
    """Item reconsumption ratio ``r_v`` (Eq 18).

    For each item: the fraction of its observed consumptions that are
    repeats from the preceding window. Items never consumed in the
    training data get ratio 0.

    Notes
    -----
    Eq (18) literally sums indicator ratios; its intended meaning — and
    what we compute — is (#observations of ``v`` as a repeat) divided by
    (#observations of ``v``). Whether an observation is a repeat uses the
    window only; the Ω gap plays no role in the *feature* definition.
    """
    repeats = np.zeros(dataset.n_items, dtype=np.int64)
    totals = np.zeros(dataset.n_items, dtype=np.int64)
    for sequence in dataset:
        items = sequence.items
        if items.size:
            np.add.at(totals, items, 1)
        for t in range(1, int(items.size)):
            item = int(items[t])
            last = sequence.last_position_before(item, t)
            if last >= 0 and t - last <= window_size:
                repeats[item] += 1
    ratio = np.zeros(dataset.n_items, dtype=np.float64)
    consumed = totals > 0
    ratio[consumed] = repeats[consumed] / totals[consumed]
    return ratio


class ItemQualityFeature(FeatureExtractor):
    """``q̄_v``: log-frequency of the item, min-max normalized (Eq 16-17)."""

    name = "item_quality"

    def __init__(self) -> None:
        self._quality: Optional[np.ndarray] = None

    def fit(self, train_dataset: Dataset, window: WindowConfig) -> "ItemQualityFeature":
        self._quality = compute_item_quality(train_dataset.item_frequencies())
        return self

    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        if self._quality is None:
            raise NotFittedError("ItemQualityFeature.value called before fit")
        if not 0 <= item < self._quality.size:
            raise FeatureError(
                f"item {item} outside fitted vocabulary of size {self._quality.size}"
            )
        return float(self._quality[item])

    @property
    def table(self) -> np.ndarray:
        """The fitted per-item quality array (read-only use)."""
        if self._quality is None:
            raise NotFittedError("ItemQualityFeature not fitted")
        return self._quality


class ReconsumptionRatioFeature(FeatureExtractor):
    """``r_v``: fraction of an item's consumptions that are repeats (Eq 18)."""

    name = "item_reconsumption_ratio"

    def __init__(self) -> None:
        self._ratio: Optional[np.ndarray] = None

    def fit(
        self, train_dataset: Dataset, window: WindowConfig
    ) -> "ReconsumptionRatioFeature":
        self._ratio = compute_reconsumption_ratio(train_dataset, window.window_size)
        return self

    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        if self._ratio is None:
            raise NotFittedError("ReconsumptionRatioFeature.value called before fit")
        if not 0 <= item < self._ratio.size:
            raise FeatureError(
                f"item {item} outside fitted vocabulary of size {self._ratio.size}"
            )
        return float(self._ratio[item])

    @property
    def table(self) -> np.ndarray:
        """The fitted per-item reconsumption-ratio array."""
        if self._ratio is None:
            raise NotFittedError("ReconsumptionRatioFeature not fitted")
        return self._ratio


register_feature(ItemQualityFeature.name, ItemQualityFeature)
register_feature(ReconsumptionRatioFeature.name, ReconsumptionRatioFeature)
