"""Time-sensitive behavioural features (Section 4.4 of the paper).

The feature vector fed to TS-PPR is

``f_uvt = (q̄_v, r_v, c_vt, m_vt)``

* ``q̄_v`` — normalized item quality, Eq (16)-(17);
* ``r_v`` — item reconsumption ratio, Eq (18);
* ``c_vt`` — recency, hyperbolic Eq (19) (default) or exponential Eq (20);
* ``m_vt`` — dynamic familiarity, Eq (21).

All four are domain-independent and normalized into ``[0, 1]``. The
subsystem is extensible: implement
:class:`~repro.features.base.FeatureExtractor` and register it with
:func:`~repro.features.base.register_feature` to append domain-specific
features, exactly as the paper suggests.
"""

from repro.features.base import (
    FeatureExtractor,
    available_features,
    create_feature,
    register_feature,
)
from repro.features.dynamic import DynamicFamiliarityFeature, RecencyFeature
from repro.features.static import ItemQualityFeature, ReconsumptionRatioFeature
from repro.features.vectorizer import BehavioralFeatureModel
from repro.features.cache import QuadrupleFeatureCache

__all__ = [
    "BehavioralFeatureModel",
    "DynamicFamiliarityFeature",
    "FeatureExtractor",
    "ItemQualityFeature",
    "QuadrupleFeatureCache",
    "RecencyFeature",
    "ReconsumptionRatioFeature",
    "available_features",
    "create_feature",
    "register_feature",
]
