"""Feature pre-computation for sampled training quadruples.

Section 4.2.2: computing time-sensitive features for every possible
negative online is infeasible, so features of the pre-sampled quadruples
are extracted *in advance of training*. :class:`QuadrupleFeatureCache`
stores, for each quadruple ``(u, v_i, v_j, t)``, the pair
``(f_uv_i t, f_uv_j t)`` in two dense float arrays so the SGD loop does
pure array indexing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.data.split import SplitDataset
from repro.exceptions import SamplingError
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.window import window_before

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.quadruples import QuadrupleSet


class QuadrupleFeatureCache:
    """Dense feature storage aligned with a quadruple set.

    Attributes
    ----------
    positive:
        Array of shape ``(n_quadruples, F)`` — ``f_{u v_i t}``.
    negative:
        Array of shape ``(n_quadruples, F)`` — ``f_{u v_j t}``.
    """

    def __init__(self, positive: np.ndarray, negative: np.ndarray) -> None:
        positive = np.asarray(positive, dtype=np.float64)
        negative = np.asarray(negative, dtype=np.float64)
        if positive.shape != negative.shape:
            raise SamplingError(
                f"positive {positive.shape} and negative {negative.shape} "
                f"feature arrays must have the same shape"
            )
        if positive.ndim != 2:
            raise SamplingError(
                f"feature arrays must be 2-D, got shape {positive.shape}"
            )
        self.positive = positive
        self.negative = negative

    def __len__(self) -> int:
        return int(self.positive.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.positive.shape[1])

    def difference(self, index: int) -> np.ndarray:
        """``f_uv_i t − f_uv_j t`` for quadruple ``index`` (Eq 6)."""
        return self.positive[index] - self.negative[index]

    def differences(self) -> np.ndarray:
        """All feature differences at once; shape ``(n, F)``."""
        return self.positive - self.negative

    @classmethod
    def build(
        cls,
        quadruples: "QuadrupleSet",
        split: SplitDataset,
        feature_model: BehavioralFeatureModel,
    ) -> "QuadrupleFeatureCache":
        """Extract features for every quadruple in one history pass.

        Quadruples sharing a ``(user, t)`` anchor share one window view;
        per-item vectors at an anchor are additionally memoized because a
        positive item recurs across its ``S`` negatives.
        """
        window_size = feature_model.window_config.window_size
        n = len(quadruples)
        positive = np.empty((n, feature_model.n_features), dtype=np.float64)
        negative = np.empty((n, feature_model.n_features), dtype=np.float64)

        by_anchor: Dict[Tuple[int, int], List[int]] = {}
        for index in range(n):
            key = (int(quadruples.users[index]), int(quadruples.times[index]))
            by_anchor.setdefault(key, []).append(index)

        for (user, t), indices in by_anchor.items():
            sequence = split.full_sequence(user)
            window = window_before(sequence, t, window_size)
            memo: Dict[int, np.ndarray] = {}

            def features_of(item: int) -> np.ndarray:
                cached = memo.get(item)
                if cached is None:
                    cached = feature_model.vector(sequence, item, t, window)
                    memo[item] = cached
                return cached

            for index in indices:
                positive[index] = features_of(int(quadruples.positives[index]))
                negative[index] = features_of(int(quadruples.negatives[index]))
        return cls(positive, negative)
