"""Feature pre-computation for sampled training quadruples.

Section 4.2.2: computing time-sensitive features for every possible
negative online is infeasible, so features of the pre-sampled quadruples
are extracted *in advance of training*. :class:`QuadrupleFeatureCache`
stores, for each quadruple ``(u, v_i, v_j, t)``, the pair
``(f_uv_i t, f_uv_j t)`` in two dense float arrays so the SGD loop does
pure array indexing.

:meth:`QuadrupleFeatureCache.build` walks each user's anchors with one
incremental :class:`~repro.engine.session.ScoringSession` and fills the
rows through :class:`~repro.engine.features.SessionFeatureMatrix`'s
per-feature column kernels — the same bit-exact fast paths the scoring
engine uses — instead of rebuilding a ``window_before`` view per anchor.
With ``workers > 1`` users are sharded across a fork-based process pool;
each row depends only on its own user's history, and every worker writes
rows back at their global indices, so the assembled arrays are
bit-identical at any worker count (mirroring
:func:`repro.evaluation.protocol.evaluate_recommender`).
:meth:`QuadrupleFeatureCache.build_reference` keeps the seed's
per-anchor rebuild as the equivalence baseline.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.data.split import SplitDataset
from repro.exceptions import SamplingError
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.window import WindowView, window_before

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.quadruples import QuadrupleSet


def _anchor_features(
    memo: Dict[int, np.ndarray],
    feature_model: BehavioralFeatureModel,
    sequence,
    t: int,
    window: WindowView,
    item: int,
) -> np.ndarray:
    """Memoized per-item vector at one anchor (reference path).

    Hoisted to module level so the per-anchor loop does not rebuild a
    closure per anchor; a positive item recurs across its ``S``
    negatives, so the memo saves one extraction per repeat.
    """
    cached = memo.get(item)
    if cached is None:
        cached = feature_model.vector(sequence, item, t, window)
        memo[item] = cached
    return cached


class QuadrupleFeatureCache:
    """Dense feature storage aligned with a quadruple set.

    Attributes
    ----------
    positive:
        Array of shape ``(n_quadruples, F)`` — ``f_{u v_i t}``.
    negative:
        Array of shape ``(n_quadruples, F)`` — ``f_{u v_j t}``.
    """

    def __init__(self, positive: np.ndarray, negative: np.ndarray) -> None:
        positive = np.asarray(positive, dtype=np.float64)
        negative = np.asarray(negative, dtype=np.float64)
        if positive.shape != negative.shape:
            raise SamplingError(
                f"positive {positive.shape} and negative {negative.shape} "
                f"feature arrays must have the same shape"
            )
        if positive.ndim != 2:
            raise SamplingError(
                f"feature arrays must be 2-D, got shape {positive.shape}"
            )
        self.positive = positive
        self.negative = negative

    def __len__(self) -> int:
        return int(self.positive.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.positive.shape[1])

    def difference(self, index: int) -> np.ndarray:
        """``f_uv_i t − f_uv_j t`` for quadruple ``index`` (Eq 6)."""
        return self.positive[index] - self.negative[index]

    def differences(self) -> np.ndarray:
        """All feature differences at once; shape ``(n, F)``."""
        return self.positive - self.negative

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _fill_user_rows(
        quadruples: "QuadrupleSet",
        split: SplitDataset,
        feature_model: BehavioralFeatureModel,
        user: int,
        rows: np.ndarray,
        positive: np.ndarray,
        negative: np.ndarray,
    ) -> None:
        """Fill one user's cache rows via a single ordered session walk.

        ``rows`` are the user's quadruple indices; anchors are visited
        in ascending ``t`` (a stable sort keeps sampling order within an
        anchor) so the forward-only session advances monotonically.
        """
        # Imported here: repro.engine.features itself imports from the
        # repro.features package, so a module-level import would cycle.
        from repro.engine.features import SessionFeatureMatrix
        from repro.engine.session import ScoringSession

        sequence = split.full_sequence(user)
        times = quadruples.times[rows]
        order = np.argsort(times, kind="stable")
        ordered_rows = rows[order]
        ordered_times = times[order].tolist()
        pos_items = quadruples.positives[ordered_rows].tolist()
        neg_items = quadruples.negatives[ordered_rows].tolist()
        row_list = ordered_rows.tolist()

        session = ScoringSession(
            sequence,
            feature_model.window_config.window_size,
            start=ordered_times[0],
        )
        matrix = SessionFeatureMatrix(feature_model, session)

        n = len(row_list)
        cursor = 0
        while cursor < n:
            t = ordered_times[cursor]
            end = cursor
            while end < n and ordered_times[end] == t:
                end += 1
            session.advance_to(t)
            # One matrix over the anchor's distinct items; a positive
            # recurs across its S negatives, so dedup before extraction.
            slot_of: Dict[int, int] = {}
            items: List[int] = []
            for k in range(cursor, end):
                for item in (pos_items[k], neg_items[k]):
                    if item not in slot_of:
                        slot_of[item] = len(items)
                        items.append(item)
            values = matrix.matrix(np.asarray(items, dtype=np.int64))
            # Scatter whole anchors at once: one fancy assignment per
            # role instead of two row copies per quadruple.
            anchor_rows = row_list[cursor:end]
            positive[anchor_rows] = values[
                [slot_of[pos_items[k]] for k in range(cursor, end)]
            ]
            negative[anchor_rows] = values[
                [slot_of[neg_items[k]] for k in range(cursor, end)]
            ]
            cursor = end

    @classmethod
    def build(
        cls,
        quadruples: "QuadrupleSet",
        split: SplitDataset,
        feature_model: BehavioralFeatureModel,
        workers: int = 1,
    ) -> "QuadrupleFeatureCache":
        """Extract features for every quadruple, one session walk per user.

        Parameters
        ----------
        workers:
            Shard users across this many forked worker processes. Each
            worker fills complete rows addressed by global quadruple
            index, so the assembled arrays are bit-identical at any
            worker count. Falls back to sequential when ``workers <= 1``
            or the platform lacks ``fork``.
        """
        if workers < 1:
            raise SamplingError(f"workers must be positive, got {workers}")
        n = len(quadruples)
        positive = np.empty((n, feature_model.n_features), dtype=np.float64)
        negative = np.empty((n, feature_model.n_features), dtype=np.float64)
        users = sorted(quadruples.per_user)

        n_workers = min(workers, max(len(users), 1))
        use_parallel = (
            n_workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_parallel:
            _build_parallel(
                quadruples, split, feature_model, users, positive, negative,
                n_workers,
            )
        else:
            for user in users:
                cls._fill_user_rows(
                    quadruples, split, feature_model, user,
                    quadruples.per_user[user], positive, negative,
                )
        return cls(positive, negative)

    @classmethod
    def build_reference(
        cls,
        quadruples: "QuadrupleSet",
        split: SplitDataset,
        feature_model: BehavioralFeatureModel,
    ) -> "QuadrupleFeatureCache":
        """The seed's per-anchor extraction, kept as equivalence baseline.

        Quadruples sharing a ``(user, t)`` anchor share one window view;
        per-item vectors at an anchor are additionally memoized because a
        positive item recurs across its ``S`` negatives. Bit-identical to
        :meth:`build` (asserted by ``tests/test_features_cache.py``).
        """
        window_size = feature_model.window_config.window_size
        n = len(quadruples)
        positive = np.empty((n, feature_model.n_features), dtype=np.float64)
        negative = np.empty((n, feature_model.n_features), dtype=np.float64)

        by_anchor: Dict[Tuple[int, int], List[int]] = {}
        for index in range(n):
            key = (int(quadruples.users[index]), int(quadruples.times[index]))
            by_anchor.setdefault(key, []).append(index)

        for (user, t), indices in by_anchor.items():
            sequence = split.full_sequence(user)
            window = window_before(sequence, t, window_size)
            memo: Dict[int, np.ndarray] = {}
            for index in indices:
                positive[index] = _anchor_features(
                    memo, feature_model, sequence, t, window,
                    int(quadruples.positives[index]),
                )
                negative[index] = _anchor_features(
                    memo, feature_model, sequence, t, window,
                    int(quadruples.negatives[index]),
                )
        return cls(positive, negative)


# ----------------------------------------------------------------------
# Parallel sharding
# ----------------------------------------------------------------------
# Workers are forked, so the quadruples/split/feature model are inherited
# copy-on-write through this module-level slot instead of being pickled
# per task (the same pattern as repro.evaluation.protocol).
_PARALLEL_STATE: Optional[tuple] = None


def _worker_rows(user: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    assert _PARALLEL_STATE is not None
    quadruples, split, feature_model = _PARALLEL_STATE
    rows = quadruples.per_user[user]
    positive = np.empty((rows.size, feature_model.n_features), dtype=np.float64)
    negative = np.empty_like(positive)
    # Fill a compact per-user block; the parent scatters it back to the
    # rows' global indices, so assembly order cannot affect the result.
    local = np.arange(rows.size, dtype=np.int64)
    shadow = _UserSlice(quadruples, rows)
    QuadrupleFeatureCache._fill_user_rows(
        shadow, split, feature_model, user, local, positive, negative
    )
    return rows, positive, negative


class _UserSlice:
    """Row-remapped view of one user's quadruples for worker-local fills."""

    __slots__ = ("times", "positives", "negatives")

    def __init__(self, quadruples: "QuadrupleSet", rows: np.ndarray) -> None:
        self.times = quadruples.times[rows]
        self.positives = quadruples.positives[rows]
        self.negatives = quadruples.negatives[rows]


def _build_parallel(
    quadruples: "QuadrupleSet",
    split: SplitDataset,
    feature_model: BehavioralFeatureModel,
    users: List[int],
    positive: np.ndarray,
    negative: np.ndarray,
    n_workers: int,
) -> None:
    global _PARALLEL_STATE
    context = multiprocessing.get_context("fork")
    chunksize = max(1, len(users) // (n_workers * 4))
    _PARALLEL_STATE = (quadruples, split, feature_model)
    try:
        with context.Pool(n_workers) as pool:
            for rows, pos_block, neg_block in pool.map(
                _worker_rows, users, chunksize=chunksize
            ):
                positive[rows] = pos_block
                negative[rows] = neg_block
    finally:
        _PARALLEL_STATE = None
