"""Feature-extractor interface and registry.

A :class:`FeatureExtractor` produces one scalar per ``(user, item, t)``
query. Static extractors (item quality, reconsumption ratio) learn their
lookup tables from the *training* dataset in :meth:`fit`; dynamic ones
(recency, familiarity) compute from the query's window at call time.

The registry lets callers name features in configuration
(``TSPPRConfig.feature_names``) and lets downstream users plug in
domain-specific features without touching library code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import FeatureError
from repro.windows.window import WindowView


class FeatureExtractor(ABC):
    """One scalar behavioural feature, normalized into ``[0, 1]``."""

    #: Canonical feature name; subclasses must override.
    name: str = ""

    @abstractmethod
    def fit(self, train_dataset: Dataset, window: WindowConfig) -> "FeatureExtractor":
        """Learn any lookup tables from the training data; return self."""

    @abstractmethod
    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        """The feature value for ``(user=sequence.user, item, t)``.

        ``window`` is the window *before* position ``t``; callers pass it
        in so a batch of items at one ``t`` shares a single view.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], FeatureExtractor]] = {}


def register_feature(
    name: str,
    factory: Callable[[], FeatureExtractor],
    overwrite: bool = False,
) -> None:
    """Register ``factory`` under ``name`` for config-driven creation.

    Raises
    ------
    FeatureError
        If ``name`` is taken and ``overwrite`` is false.
    """
    if not name:
        raise FeatureError("feature name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise FeatureError(f"feature {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_feature(name: str) -> None:
    """Remove ``name`` from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def create_feature(name: str) -> FeatureExtractor:
    """Instantiate the registered extractor called ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise FeatureError(
            f"unknown feature {name!r}; available: {sorted(_REGISTRY)}"
        )
    return factory()


def available_features() -> List[str]:
    """Sorted names of all registered features."""
    return sorted(_REGISTRY)
