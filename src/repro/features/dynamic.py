"""Dynamic behavioural features: recency and dynamic familiarity.

Both are pure functions of the user's history before the query position;
:meth:`fit` only records configuration.
"""

from __future__ import annotations

import math

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import FeatureError
from repro.features.base import FeatureExtractor, register_feature
from repro.windows.window import WindowView


def hyperbolic_recency(gap: int) -> float:
    """``c_vt = 1 / (t - l_ut(v))`` (Eq 19) for a positive gap."""
    if gap <= 0:
        raise FeatureError(f"recency gap must be positive, got {gap}")
    return 1.0 / gap


def exponential_recency(gap: int) -> float:
    """``c_vt = e^{-(t - l_ut(v))}`` (Eq 20) for a positive gap."""
    if gap <= 0:
        raise FeatureError(f"recency gap must be positive, got {gap}")
    return math.exp(-gap)


class RecencyFeature(FeatureExtractor):
    """``c_vt``: time-decaying interest in a previously consumed item.

    Parameters
    ----------
    kind:
        ``"hyperbolic"`` (Eq 19; the paper's choice, following the
        finding in its Ref. [14] that hyperbolic decay fits interest
        forgetting best) or ``"exponential"`` (Eq 20).

    An item never consumed before ``t`` has recency 0 (no decaying
    interest exists yet).
    """

    name = "recency"

    def __init__(self, kind: str = "hyperbolic") -> None:
        if kind not in ("hyperbolic", "exponential"):
            raise FeatureError(
                f"recency kind must be 'hyperbolic' or 'exponential', got {kind!r}"
            )
        self.kind = kind
        self._decay = hyperbolic_recency if kind == "hyperbolic" else exponential_recency

    def fit(self, train_dataset: Dataset, window: WindowConfig) -> "RecencyFeature":
        return self

    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        last = sequence.last_position_before(item, t)
        if last < 0:
            return 0.0
        return self._decay(t - last)


class DynamicFamiliarityFeature(FeatureExtractor):
    """``m_vt``: fraction of the current window occupied by the item (Eq 21)."""

    name = "dynamic_familiarity"

    def fit(
        self, train_dataset: Dataset, window: WindowConfig
    ) -> "DynamicFamiliarityFeature":
        return self

    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        return window.familiarity(item)


register_feature(RecencyFeature.name, RecencyFeature)
register_feature(DynamicFamiliarityFeature.name, DynamicFamiliarityFeature)
