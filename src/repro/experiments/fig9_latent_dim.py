"""Fig 9 — sensitivity of TS-PPR to the latent dimension K.

The paper observes accuracy increasing with K on Gowalla, saturating
around K = 40, and a near-flat curve on Lastfm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    fit_and_evaluate,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender

K_GRID: Tuple[int, ...] = (5, 10, 20, 40, 80)


@register_experiment("fig9", "Sensitivity of latent feature space dimension K")
def run(scale: ExperimentScale) -> ExperimentResult:
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        title = dataset_title(dataset_key)
        points_ma, points_mi = [], []
        for k in K_GRID:
            config = default_config(dataset_key, scale, n_factors=k)
            accuracy = fit_and_evaluate(TSPPRRecommender(config), split)
            points_ma.append((k, accuracy.maap[10]))
            points_mi.append((k, accuracy.miap[10]))
        series[f"{title} / MaAP@10 vs K"] = tuple(points_ma)
        series[f"{title} / MiAP@10 vs K"] = tuple(points_mi)
        smallest, largest = points_ma[0][1], points_ma[-1][1]
        notes.append(
            f"{title}: MaAP@10 from {smallest:.4f} (K={K_GRID[0]}) to "
            f"{largest:.4f} (K={K_GRID[-1]})"
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Sensitivity of latent feature space dimension K",
        series=series,
        notes=tuple(notes),
    )
