"""Fig 5 & Fig 6 — MaAP@N and MiAP@N of every method on both datasets.

One shared training/evaluation run (cached in
:func:`repro.experiments.common.accuracy_run`) feeds both figures and
Table 3. Methods: Random, Pop, Recency, FPMC, Survival, DYRC, TS-PPR,
with ``Ω = 10`` and ``S = 10`` as in the paper.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.experiments.common import (
    BASELINE_ORDER,
    DATASET_KEYS,
    ExperimentScale,
    accuracy_run,
    dataset_title,
)
from repro.experiments.registry import ExperimentResult, register_experiment


def _accuracy_rows(scale: ExperimentScale, metric: str) -> List[Mapping[str, object]]:
    rows: List[Mapping[str, object]] = []
    for dataset_key in DATASET_KEYS:
        results = accuracy_run(dataset_key, scale)
        for method in BASELINE_ORDER:
            accuracy = results[method]
            values = accuracy.maap if metric == "MaAP" else accuracy.miap
            rows.append(
                {
                    "Data set": dataset_title(dataset_key),
                    "Method": method,
                    **{
                        f"{metric}@{top_n}": round(values[top_n], 4)
                        for top_n in accuracy.top_ns
                    },
                }
            )
    return rows


def _winner_notes(scale: ExperimentScale, metric: str) -> List[str]:
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        results = accuracy_run(dataset_key, scale)
        for top_n in (1, 5, 10):
            scores = {
                method: (
                    results[method].maap[top_n]
                    if metric == "MaAP"
                    else results[method].miap[top_n]
                )
                for method in BASELINE_ORDER
            }
            winner = max(scores, key=scores.get)  # type: ignore[arg-type]
            notes.append(
                f"{dataset_title(dataset_key)} {metric}@{top_n}: best = {winner} "
                f"({scores[winner]:.4f})"
            )
    return notes


@register_experiment("fig5", "Macro average precision of all methods (Ω=10, S=10)")
def run_fig5(scale: ExperimentScale) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig5",
        title="Macro average precision of all methods (Ω=10, S=10)",
        rows=tuple(_accuracy_rows(scale, "MaAP")),
        notes=tuple(_winner_notes(scale, "MaAP")),
    )


@register_experiment("fig6", "Micro average precision of all methods (Ω=10, S=10)")
def run_fig6(scale: ExperimentScale) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig6",
        title="Micro average precision of all methods (Ω=10, S=10)",
        rows=tuple(_accuracy_rows(scale, "MiAP")),
        notes=tuple(_winner_notes(scale, "MiAP")),
    )
