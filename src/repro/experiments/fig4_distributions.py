"""Fig 4 — repeat-consumption counts by feature rank of the reconsumed item.

For every valid repeat consumption (``|W| = 100``, ``Ω = 10``), rank the
reconsumed item among its window's Ω-eligible candidates on each of the
four behavioural features (rank 1 = highest feature value) and histogram
the ranks. Steeply decreasing histograms mean the feature is
discriminative of what gets reconsumed; the paper finds steeper curves
on Gowalla than on Lastfm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.config import FEATURE_NAMES, WindowConfig
from repro.data.split import SplitDataset
from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.repeat import iter_repeat_positions, recent_items

#: Feature display codes used in the paper's Fig 4 / Fig 7.
FEATURE_CODES = {
    "item_quality": "IP",
    "item_reconsumption_ratio": "IR",
    "recency": "RE",
    "dynamic_familiarity": "DF",
}


def rank_histograms(
    split: SplitDataset,
    window: WindowConfig,
    max_rank: int = 20,
) -> Dict[str, np.ndarray]:
    """Per-feature histograms of the reconsumed item's candidate rank.

    ``result[feature][r - 1]`` counts targets whose true item ranked
    ``r``-th on that feature among the candidates (ranks beyond
    ``max_rank`` are folded into the last bin).
    """
    feature_model = BehavioralFeatureModel().fit(split.train_dataset(), window)
    histograms = {
        name: np.zeros(max_rank, dtype=np.int64) for name in FEATURE_NAMES
    }
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        for t, view in iter_repeat_positions(
            sequence, window.window_size, window.min_gap
        ):
            truth = int(sequence[t])
            excluded = recent_items(sequence, t, window.min_gap)
            candidates = sorted(view.item_set - excluded)
            if len(candidates) < 2:
                continue
            matrix = feature_model.matrix(sequence, candidates, t, view)
            truth_row = candidates.index(truth)
            for column, name in enumerate(FEATURE_NAMES):
                values = matrix[:, column]
                # Rank 1 = highest feature value; average-free competition
                # ranking (count of strictly larger values + 1).
                rank = int((values > values[truth_row]).sum()) + 1
                histograms[name][min(rank, max_rank) - 1] += 1
    return histograms


@register_experiment(
    "fig4", "Distribution of repeat consumption by feature rank in the window"
)
def run(scale: ExperimentScale) -> ExperimentResult:
    window = WindowConfig()
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        histograms = rank_histograms(split, window)
        for name, counts in histograms.items():
            code = FEATURE_CODES[name]
            series[f"{dataset_title(dataset_key)} / {code}"] = tuple(
                (rank + 1, float(count)) for rank, count in enumerate(counts)
            )
        # Shape check: top-quartile ranks should hold the majority of mass
        # for IP, IR and DF (the paper's "decreasing curves").
        for name in ("item_quality", "item_reconsumption_ratio", "dynamic_familiarity"):
            counts = histograms[name]
            top = counts[: max(1, len(counts) // 4)].sum()
            share = top / max(counts.sum(), 1)
            notes.append(
                f"{dataset_title(dataset_key)} {FEATURE_CODES[name]}: "
                f"top-quartile rank share {share:.2f}"
            )
    return ExperimentResult(
        experiment_id="fig4",
        title="Distribution of repeat consumption by feature rank in the window",
        series=series,
        notes=tuple(notes),
    )
