"""fig_drift — frozen vs ISGD-online TS-PPR under taste drift.

Not a paper artifact: the motivating experiment for :mod:`repro.online`.
A Gowalla-like stream is generated with periodic taste drift
(``drift_interval`` / ``drift_fraction``), so user catalogs keep
rotating after the training boundary. Two copies of the *same* fitted
TS-PPR then walk the interleaved global test stream under the serving
protocol: one frozen, one receiving per-event ISGD updates through
:class:`~repro.online.trainer.OnlineTrainer`. Both answer every RRC
query *before* the event is applied (test-then-learn), so the
comparison is honest prequential evaluation.

The report is sliding-window MaAP@10 by stream position: the frozen
model decays as drift compounds while the online model tracks it, and
the overall online MaAP must come out at least equal — the acceptance
gate ``benchmarks/test_bench_online.py`` records in
``BENCH_online.json``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.data.split import SplitDataset, temporal_split
from repro.engine.query import Query
from repro.experiments.common import ExperimentScale, default_config
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.base import Recommender
from repro.models.tsppr import TSPPRRecommender
from repro.online.trainer import OnlineTrainer
from repro.rng import derive_seed
from repro.serving.state import SessionStore
from repro.synth.base import generate_dataset
from repro.synth.gowalla import GOWALLA_PRESET

#: Recommendation list size (the paper's N).
TOP_N = 10

#: Sliding-window buckets over the global target stream.
N_BUCKETS = 5

#: Events between taste-drift episodes, before length scaling.
DRIFT_INTERVAL = 70

#: Fraction of a user's catalog replaced per episode.
DRIFT_FRACTION = 0.6

#: Online step size; hotter than the offline schedule on purpose —
#: per-event updates must chase a moving target, not polish a fixed one.
ONLINE_LR = 0.05

#: Flush window for the online arm. Staleness is the variable under
#: study, so keep update lag to a few events rather than inheriting the
#: serving default, which is tuned for tail latency, not freshness.
ONLINE_BATCH = 8


def drifting_split(scale: ExperimentScale) -> SplitDataset:
    """A Gowalla-like 70/30 split whose tastes rotate mid-stream."""
    config = replace(
        GOWALLA_PRESET.scaled(scale.user_factor, scale.length_factor),
        name="gowalla-drift",
        drift_interval=max(
            10, int(round(DRIFT_INTERVAL * scale.length_factor))
        ),
        drift_fraction=DRIFT_FRACTION,
    )
    dataset = generate_dataset(config, random_state=derive_seed(scale.seed, 31))
    return temporal_split(dataset)


def interleaved_test_stream(split: SplitDataset) -> List[Tuple[int, int]]:
    """The global test stream: users round-robin, position by position.

    Synthetic sequences carry no wall-clock timestamps, so position-wise
    round-robin is the canonical interleaving — every user advances at
    the same rate, which is exactly the regime where one shared model
    must serve all drifting users at once.
    """
    suffixes = [
        split.full_sequence(user).items[split.train_boundary(user):].tolist()
        for user in range(split.n_users)
    ]
    stream: List[Tuple[int, int]] = []
    depth = 0
    emitted = True
    while emitted:
        emitted = False
        for user, suffix in enumerate(suffixes):
            if depth < len(suffix):
                stream.append((user, suffix[depth]))
                emitted = True
        depth += 1
    return stream


def prequential_walk(
    model: Recommender,
    split: SplitDataset,
    stream: List[Tuple[int, int]],
    trainer: Optional[OnlineTrainer] = None,
) -> List[bool]:
    """Test-then-learn over the stream; returns per-target hit flags.

    Every RRC target is answered from the pre-event session state
    (candidates sorted, same tie-breaking as the offline protocol); with
    a ``trainer`` the event then becomes an ISGD update before the next
    arrives. Without one, only session state advances — the frozen arm.
    """
    window = model.window_config

    def base_history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    store = SessionStore(
        window.window_size,
        window.min_gap,
        capacity=max(split.n_users, 1),
        history_provider=base_history,
    )
    hits: List[bool] = []
    for user, item in stream:
        session = store.get(user)
        if session.is_next_target(item):
            candidates = session.candidates()
            query = Query(
                t=session.t, candidates=tuple(candidates), truth=item
            )
            top = model.recommend_batch(session.sequence(), [query], TOP_N)[0]
            hits.append(item in top[:TOP_N])
        if trainer is not None:
            trainer.observe_next(user, item, session)
        session.append(item)
    if trainer is not None:
        trainer.flush()
    return hits


def bucketed_maap(hits: List[bool], n_buckets: int = N_BUCKETS):
    """MaAP@10 per stream-position bucket: hits/targets within each."""
    points = []
    for bucket in range(n_buckets):
        lo = bucket * len(hits) // n_buckets
        hi = (bucket + 1) * len(hits) // n_buckets
        chunk = hits[lo:hi]
        if chunk:
            points.append(
                ((bucket + 1) / n_buckets, sum(chunk) / len(chunk))
            )
    return points


@register_experiment(
    "fig_drift", "Taste drift: frozen vs ISGD-online TS-PPR (MaAP@10)"
)
def run(scale: ExperimentScale) -> ExperimentResult:
    split = drifting_split(scale)
    stream = interleaved_test_stream(split)
    config = default_config("gowalla", scale)

    frozen = TSPPRRecommender(config).fit(
        split, fit_workers=scale.fit_workers
    )
    frozen_hits = prequential_walk(frozen, split, stream)

    # The online arm starts from a bit-identical fit (same config, same
    # seed, deterministic trainer) and diverges only through updates.
    online_model = TSPPRRecommender(config).fit(
        split, fit_workers=scale.fit_workers
    )
    trainer = OnlineTrainer(
        online_model, learning_rate=ONLINE_LR, batch_window=ONLINE_BATCH
    )
    online_hits = prequential_walk(
        online_model, split, stream, trainer=trainer
    )

    if len(frozen_hits) != len(online_hits):
        raise AssertionError(
            "frozen and online walks answered different target sets: "
            f"{len(frozen_hits)} vs {len(online_hits)}"
        )
    frozen_overall = sum(frozen_hits) / max(len(frozen_hits), 1)
    online_overall = sum(online_hits) / max(len(online_hits), 1)

    series: Dict[str, Tuple[Tuple[object, float], ...]] = {
        "frozen TS-PPR / MaAP@10 vs stream fraction": tuple(
            bucketed_maap(frozen_hits)
        ),
        "online TS-PPR (isgd) / MaAP@10 vs stream fraction": tuple(
            bucketed_maap(online_hits)
        ),
    }
    rows = (
        {
            "method": "TS-PPR frozen",
            f"MaAP@{TOP_N}": round(frozen_overall, 4),
            "targets": len(frozen_hits),
        },
        {
            "method": "TS-PPR online (isgd)",
            f"MaAP@{TOP_N}": round(online_overall, 4),
            "targets": len(online_hits),
        },
    )
    notes = (
        f"drifting stream: {split.n_users} users, {len(stream)} test "
        f"event(s), {len(frozen_hits)} RRC target(s), "
        f"{trainer.cursor} event(s) observed online",
        f"overall MaAP@{TOP_N}: frozen {frozen_overall:.4f} vs online "
        f"{online_overall:.4f} "
        f"({'online >= frozen' if online_overall >= frozen_overall else 'REGRESSION: online < frozen'})",
    )
    return ExperimentResult(
        experiment_id="fig_drift",
        title="Taste drift: frozen vs ISGD-online TS-PPR (MaAP@10)",
        rows=rows,
        series=series,
        notes=notes,
    )
