"""Table 4 — default settings of parameters.

A configuration record rather than a measurement: the per-dataset
defaults baked into :func:`repro.config.gowalla_default_config` /
:func:`repro.config.lastfm_default_config`, printed in the paper's
layout so EXPERIMENTS.md can diff them against Table 4 directly.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.config import gowalla_default_config, lastfm_default_config
from repro.experiments.common import ExperimentScale
from repro.experiments.registry import ExperimentResult, register_experiment


@register_experiment("table4", "Default settings of parameters")
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    for name, config in (
        ("Gowalla", gowalla_default_config()),
        ("Lastfm", lastfm_default_config()),
    ):
        rows.append(
            {
                "Data set": name,
                "λ": config.lambda_mapping,
                "γ": config.gamma_latent,
                "K": config.n_factors,
                "S": config.n_negative_samples,
                "Ω": 10,
            }
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Default settings of parameters",
        rows=tuple(rows),
        notes=(
            "Ω lives in WindowConfig (default 10); the other four are "
            "TSPPRConfig fields.",
        ),
    )
