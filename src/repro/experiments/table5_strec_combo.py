"""Table 5 — combining STREC and TS-PPR as a holistic pipeline.

STREC (the linear model of Chen et al., AAAI'15) first predicts whether
the next consumption will be a repeat; on test positions it classifies
*correctly as repeats*, TS-PPR then recommends from the window. The
table reports STREC's switch accuracy and TS-PPR's conditional
MaAP@{1,5,10}; their product approximates the accuracy of solving both
problems jointly (the paper's 0.6912 × 0.6314 ≈ 0.44 example).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.config import EvaluationConfig
from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.evaluation.protocol import evaluate_recommender
from repro.models.strec import STRECClassifier
from repro.models.tsppr import TSPPRRecommender


@register_experiment("table5", "Evaluation combining STREC and TS-PPR")
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    notes: List[str] = []
    eval_config = EvaluationConfig()
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)

        strec = STRECClassifier().fit(split, eval_config.window)
        switch = strec.evaluate(split)

        # Precompute, per user, the test positions STREC flags as repeats
        # (the condition "correctly classified" for true repeat targets).
        predicted_repeat: Dict[int, Set[int]] = {}
        for user in range(split.n_users):
            sequence = split.full_sequence(user)
            flags: Set[int] = set()
            for t in range(split.train_boundary(user), len(sequence)):
                if strec.predict_position(sequence, t):
                    flags.add(t)
            predicted_repeat[user] = flags

        model = TSPPRRecommender(default_config(dataset_key, scale))
        model.fit(split, eval_config.window)
        conditional = evaluate_recommender(
            model,
            split,
            eval_config,
            target_filter=lambda user, t: t in predicted_repeat[user],
        )

        row: dict = {
            "Data set": dataset_title(dataset_key),
            "STREC": round(switch.accuracy, 4),
        }
        for top_n in (1, 5, 10):
            row[f"MaAP@{top_n}"] = round(conditional.maap[top_n], 4)
        rows.append(row)
        joint = switch.accuracy * conditional.maap[10]
        notes.append(
            f"{dataset_title(dataset_key)}: joint STREC × MaAP@10 ≈ {joint:.4f} "
            f"(base repeat rate {switch.repeat_base_rate:.3f} over "
            f"{switch.n_positions} test positions)"
        )
    return ExperimentResult(
        experiment_id="table5",
        title="Evaluation combining STREC and TS-PPR",
        rows=tuple(rows),
        notes=tuple(notes),
    )
