"""Fig 11 — sensitivity of TS-PPR to the minimum gap Ω.

Raising Ω shrinks the candidate set (|W| − Ω candidates remain) *and*
removes the most recent — easiest — targets. The paper observes accuracy
*decreasing* in Ω on Gowalla (strong recency effect: the recent repeats
TS-PPR handles best disappear from evaluation) and *increasing* on
Lastfm (the shrinking candidate set dominates).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import EvaluationConfig, WindowConfig
from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    fit_and_evaluate,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender

OMEGA_GRID: Tuple[int, ...] = (5, 10, 20, 40)
S_SETTINGS: Tuple[int, ...] = (10, 20)


@register_experiment("fig11", "Sensitivity of the minimum gap Ω")
def run(scale: ExperimentScale) -> ExperimentResult:
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        title = dataset_title(dataset_key)
        for s in S_SETTINGS:
            points_ma, points_mi = [], []
            for omega in OMEGA_GRID:
                window = WindowConfig(min_gap=omega)
                eval_config = EvaluationConfig(window=window)
                config = default_config(
                    dataset_key, scale, n_negative_samples=s
                )
                accuracy = fit_and_evaluate(
                    TSPPRRecommender(config), split, eval_config, window
                )
                points_ma.append((omega, accuracy.maap[10]))
                points_mi.append((omega, accuracy.miap[10]))
            series[f"{title} / MaAP@10 vs Ω (S={s})"] = tuple(points_ma)
            series[f"{title} / MiAP@10 vs Ω (S={s})"] = tuple(points_mi)
            direction = points_ma[-1][1] - points_ma[0][1]
            notes.append(
                f"{title} (S={s}): MaAP@10 change from Ω={OMEGA_GRID[0]} to "
                f"Ω={OMEGA_GRID[-1]} is {direction:+.4f}"
            )
    return ExperimentResult(
        experiment_id="fig11",
        title="Sensitivity of the minimum gap Ω",
        series=series,
        notes=tuple(notes),
    )
