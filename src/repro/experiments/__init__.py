"""Experiment harness: one runner per paper table/figure.

Every experiment module exposes ``run(scale) -> ExperimentResult``;
:mod:`repro.experiments.registry` maps paper artifact ids (``"fig5"``,
``"table3"``, ...) to those runners; the CLI and the benchmark suite are
thin wrappers around the registry.

Heavy intermediate products (datasets, splits, fitted models, shared
accuracy runs) are cached per ``(experiment scale, dataset)`` inside
:mod:`repro.experiments.common`, so e.g. fig5, fig6 and table3 share a
single training run.
"""

from repro.experiments.common import (
    FAST_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    build_split,
    clear_caches,
)
from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "FAST_SCALE",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "available_experiments",
    "build_split",
    "clear_caches",
    "get_experiment",
    "run_experiment",
]
