"""Fig 8 — sensitivity of TS-PPR to the regularization parameters λ and γ.

λ penalizes the per-user mappings ``A_u``; γ penalizes the latent
matrices ``U`` and ``V``. The paper observes underfitting at large
values (sharp drop on Gowalla) and near-flat curves on Lastfm, with the
optimal γ larger than the optimal λ.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    fit_and_evaluate,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender

#: Sweep grids (log-spaced around the Table 4 defaults).
LAMBDA_GRID: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1, 1.0)
GAMMA_GRID: Tuple[float, ...] = (1e-3, 1e-2, 5e-2, 1e-1, 1.0)


@register_experiment("fig8", "Influence of regularization parameters λ and γ")
def run(scale: ExperimentScale) -> ExperimentResult:
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        title = dataset_title(dataset_key)

        lambda_points_ma, lambda_points_mi = [], []
        for lam in LAMBDA_GRID:
            config = default_config(dataset_key, scale, lambda_mapping=lam)
            accuracy = fit_and_evaluate(TSPPRRecommender(config), split)
            lambda_points_ma.append((lam, accuracy.maap[10]))
            lambda_points_mi.append((lam, accuracy.miap[10]))
        series[f"{title} / MaAP@10 vs λ"] = tuple(lambda_points_ma)
        series[f"{title} / MiAP@10 vs λ"] = tuple(lambda_points_mi)

        gamma_points_ma, gamma_points_mi = [], []
        for gamma in GAMMA_GRID:
            config = default_config(dataset_key, scale, gamma_latent=gamma)
            accuracy = fit_and_evaluate(TSPPRRecommender(config), split)
            gamma_points_ma.append((gamma, accuracy.maap[10]))
            gamma_points_mi.append((gamma, accuracy.miap[10]))
        series[f"{title} / MaAP@10 vs γ"] = tuple(gamma_points_ma)
        series[f"{title} / MiAP@10 vs γ"] = tuple(gamma_points_mi)

        gamma_drop = max(v for _, v in gamma_points_ma) - gamma_points_ma[-1][1]
        lambda_spread = (
            max(v for _, v in lambda_points_ma)
            - min(v for _, v in lambda_points_ma)
        )
        notes.append(
            f"{title}: γ={GAMMA_GRID[-1]} underfits by {gamma_drop:.4f} "
            f"MaAP@10; λ-curve spread {lambda_spread:.4f}"
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Influence of regularization parameters λ and γ",
        series=series,
        notes=tuple(notes),
    )
