"""Fig 12 — convergence of the mean margin r̃ during TS-PPR training.

The plotted quantity is the small-batch mean preference margin
``r̃ = mean(r_uv_i t − r_uv_j t)`` at each convergence check; training
stops when ``Δr̃ ≤ 1e-3``. The paper observes a higher converged ``r̃``
on Gowalla than on Lastfm — positives are easier to separate there —
which mirrors the larger accuracy improvement.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender


@register_experiment("fig12", "Model convergence of r̃ (S=10, Ω=10)")
def run(scale: ExperimentScale) -> ExperimentResult:
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    final_margins: Dict[str, float] = {}
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        model = TSPPRRecommender(default_config(dataset_key, scale))
        fit_start = time.perf_counter()
        model.fit(split, fit_workers=scale.fit_workers)
        fit_elapsed = time.perf_counter() - fit_start
        assert model.sgd_result_ is not None
        history = model.sgd_result_.margin_history
        title = dataset_title(dataset_key)
        series[f"{title} / r̃ vs updates"] = tuple(
            (n_updates, margin) for n_updates, margin in history
        )
        final_margins[title] = model.sgd_result_.final_margin
        notes.append(
            f"{title}: converged={model.sgd_result_.converged} after "
            f"{model.sgd_result_.n_updates} updates, final r̃ = "
            f"{model.sgd_result_.final_margin:.4f}, train wall-clock "
            f"{fit_elapsed:.1f}s"
        )
    if len(final_margins) == 2:
        gowalla, lastfm = (
            final_margins["Gowalla-like"],
            final_margins["Lastfm-like"],
        )
        notes.append(
            f"converged r̃ Gowalla-like ({gowalla:.3f}) vs Lastfm-like "
            f"({lastfm:.3f}) — paper expects the former larger"
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Model convergence of r̃ (S=10, Ω=10)",
        series=series,
        notes=tuple(notes),
    )
