"""Fig 10 — sensitivity of TS-PPR to the negative-sample count S.

Evaluated under two minimum-gap settings (Ω = 10 and Ω = 20) like the
paper. The paper finds S nearly irrelevant on Lastfm and a slight
uptrend on Gowalla; S = 10 is kept as the cost/accuracy default.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import EvaluationConfig, WindowConfig
from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    fit_and_evaluate,
)
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender

S_GRID: Tuple[int, ...] = (1, 5, 10, 20)
OMEGA_SETTINGS: Tuple[int, ...] = (10, 20)


@register_experiment("fig10", "Sensitivity of negative sample number S")
def run(scale: ExperimentScale) -> ExperimentResult:
    series: Dict[str, Tuple[Tuple[object, float], ...]] = {}
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        title = dataset_title(dataset_key)
        for omega in OMEGA_SETTINGS:
            window = WindowConfig(min_gap=omega)
            eval_config = EvaluationConfig(window=window)
            points_ma, points_mi = [], []
            for s in S_GRID:
                config = default_config(
                    dataset_key, scale, n_negative_samples=s
                )
                accuracy = fit_and_evaluate(
                    TSPPRRecommender(config), split, eval_config, window
                )
                points_ma.append((s, accuracy.maap[10]))
                points_mi.append((s, accuracy.miap[10]))
            series[f"{title} / MaAP@10 vs S (Ω={omega})"] = tuple(points_ma)
            series[f"{title} / MiAP@10 vs S (Ω={omega})"] = tuple(points_mi)
            spread = max(v for _, v in points_ma) - min(v for _, v in points_ma)
            notes.append(
                f"{title} (Ω={omega}): MaAP@10 spread across S grid = {spread:.4f}"
            )
    return ExperimentResult(
        experiment_id="fig10",
        title="Sensitivity of negative sample number S",
        series=series,
        notes=tuple(notes),
    )
