"""Fig 13 — average online recommendation time per instance (ms).

All methods answer the same sampled evaluation instances; times are
averaged over 3 trials like the paper. Absolute values differ from the
paper's 2008-era server, but the cost *ordering* is the reproduced
claim: Random/Pop/DYRC cheapest (one-pass weighting), Recency slightly
higher (exp weighting), FPMC medium (latent inner products), TS-PPR
around a millisecond, Survival orders of magnitude above everything
(its online covariates scan the user's entire history).
"""

from __future__ import annotations

from typing import List, Mapping

from repro.evaluation.timing import (
    collect_timing_instances,
    time_recommender,
    time_recommender_batched,
)
from repro.experiments.common import (
    BASELINE_ORDER,
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    make_model,
)
from repro.experiments.registry import ExperimentResult, register_experiment


@register_experiment(
    "fig13", "Average online recommendation time of a single instance (ms)"
)
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        instances = collect_timing_instances(split, max_instances=200)
        timings = {}
        batched_timings = {}
        for method in BASELINE_ORDER:
            model = make_model(
                method, dataset_key, scale, default_config(dataset_key, scale)
            )
            model.fit(split)
            timing = time_recommender(model, split, instances=instances)
            batched = time_recommender_batched(model, split, instances=instances)
            timings[method] = timing.mean_ms
            batched_timings[method] = batched.mean_ms
            rows.append(
                {
                    "Data set": dataset_title(dataset_key),
                    "Method": method,
                    "Mean time (ms)": round(timing.mean_ms, 4),
                    "Batched (ms)": round(batched.mean_ms, 4),
                    "Instances": timing.n_instances,
                    "Trials": timing.n_trials,
                }
            )
        slowest = max(timings, key=timings.get)  # type: ignore[arg-type]
        notes.append(
            f"{dataset_title(dataset_key)}: slowest online method = {slowest} "
            f"({timings[slowest]:.3f} ms); Survival/TS-PPR ratio = "
            f"{timings['Survival'] / max(timings['TS-PPR'], 1e-9):.1f}x"
        )
        notes.append(
            f"{dataset_title(dataset_key)}: batch engine speedup "
            f"(per-query / batched, TS-PPR) = "
            f"{timings['TS-PPR'] / max(batched_timings['TS-PPR'], 1e-9):.1f}x; "
            f"Survival = {timings['Survival'] / max(batched_timings['Survival'], 1e-9):.1f}x"
        )
    return ExperimentResult(
        experiment_id="fig13",
        title="Average online recommendation time of a single instance (ms)",
        rows=tuple(rows),
        notes=tuple(notes),
    )
