"""Fig 7 — feature-importance ablation of TS-PPR.

Train TS-PPR five times per dataset: with all four behavioural features
and with each feature removed in turn (the paper's "-IP", "-IR", "-RE",
"-DF"). The paper finds the largest accuracy drop when removing IR (the
item reconsumption ratio), and "All" best overall.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from repro.config import FEATURE_NAMES
from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
    dataset_title,
    default_config,
    fit_and_evaluate,
)
from repro.experiments.fig4_distributions import FEATURE_CODES
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.models.tsppr import TSPPRRecommender

#: Ablation variants: label → feature tuple.
def ablation_variants() -> List[Tuple[str, Tuple[str, ...]]]:
    variants: List[Tuple[str, Tuple[str, ...]]] = [("All", FEATURE_NAMES)]
    for removed in FEATURE_NAMES:
        kept = tuple(name for name in FEATURE_NAMES if name != removed)
        variants.append((f"-{FEATURE_CODES[removed]}", kept))
    return variants


@register_experiment("fig7", "Feature importance in the TS-PPR model")
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    notes: List[str] = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        scores = {}
        for label, features in ablation_variants():
            config = default_config(dataset_key, scale, feature_names=features)
            accuracy = fit_and_evaluate(TSPPRRecommender(config), split)
            scores[label] = accuracy
            rows.append(
                {
                    "Data set": dataset_title(dataset_key),
                    "Variant": label,
                    "MaAP@10": round(accuracy.maap[10], 4),
                    "MiAP@10": round(accuracy.miap[10], 4),
                }
            )
        drops = {
            label: scores["All"].maap[10] - accuracy.maap[10]
            for label, accuracy in scores.items()
            if label != "All"
        }
        worst = max(drops, key=drops.get)  # type: ignore[arg-type]
        notes.append(
            f"{dataset_title(dataset_key)}: largest MaAP@10 drop when removing "
            f"{worst.lstrip('-')} ({drops[worst]:+.4f})"
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Feature importance in the TS-PPR model",
        rows=tuple(rows),
        notes=tuple(notes),
    )
