"""Persisting experiment results as JSON.

`repro-experiments run ... --json-dir DIR` (and programmatic callers)
can archive every :class:`~repro.experiments.registry.ExperimentResult`
as a JSON document, so evidence runs are diffable and machine-readable
(EXPERIMENTS.md's numbers are extracted from such archives).

Crash safety: documents are written atomically (temp + fsync + rename)
and carry a sha256 checksum over their own payload, so a crash mid-save
can never leave a truncated archive and corruption is reported as a
clear :class:`~repro.exceptions.ExperimentError` at load time instead
of silently feeding wrong numbers downstream. Documents written before
the checksum existed still load (the checksum is validated when
present).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult
from repro.resilience.atomic import atomic_write_json, sha256_bytes

#: Schema version of the JSON document.
STORAGE_VERSION = 1


def _payload_checksum(payload: Dict) -> str:
    """sha256 over the canonical JSON form, excluding the checksum field."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    return sha256_bytes(json.dumps(body, sort_keys=True).encode("utf-8"))


def result_to_dict(result: ExperimentResult) -> Dict:
    """The JSON-serializable form of a result."""
    payload = {
        "storage_version": STORAGE_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": [dict(row) for row in result.rows],
        "series": {
            name: [[x, y] for x, y in points]
            for name, points in result.series.items()
        },
        "notes": list(result.notes),
    }
    payload["checksum"] = _payload_checksum(payload)
    return payload


def result_from_dict(payload: Dict) -> ExperimentResult:
    """Rebuild a result from its JSON form.

    Raises
    ------
    ExperimentError
        On schema-version mismatch, checksum mismatch, or missing
        fields.
    """
    if payload.get("storage_version") != STORAGE_VERSION:
        raise ExperimentError(
            f"unsupported result storage version "
            f"{payload.get('storage_version')!r}"
        )
    checksum = payload.get("checksum")
    if checksum is not None and checksum != _payload_checksum(payload):
        raise ExperimentError(
            "result document checksum mismatch — the archive is "
            "truncated or corrupted"
        )
    try:
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            rows=tuple(payload["rows"]),
            series={
                name: tuple((x, float(y)) for x, y in points)
                for name, points in payload["series"].items()
            },
            notes=tuple(payload["notes"]),
        )
    except KeyError as exc:
        raise ExperimentError(f"result document missing field {exc}") from exc


def save_result(result: ExperimentResult, directory: Union[str, Path]) -> Path:
    """Atomically write ``<directory>/<experiment_id>.json``; returns the path."""
    directory = Path(directory)
    path = directory / f"{result.experiment_id}.json"
    return atomic_write_json(path, result_to_dict(result))


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read one archived result document."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no result document at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(
            f"corrupt result document at {path}: {exc}"
        ) from exc
    return result_from_dict(payload)


def load_results_dir(directory: Union[str, Path]) -> List[ExperimentResult]:
    """Load every ``*.json`` result in a directory, sorted by id."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ExperimentError(f"{directory} is not a directory")
    results = [
        load_result(path) for path in sorted(directory.glob("*.json"))
    ]
    return sorted(results, key=lambda result: result.experiment_id)
