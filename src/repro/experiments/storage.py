"""Persisting experiment results as JSON.

`repro-experiments run ... --json-dir DIR` (and programmatic callers)
can archive every :class:`~repro.experiments.registry.ExperimentResult`
as a JSON document, so evidence runs are diffable and machine-readable
(EXPERIMENTS.md's numbers are extracted from such archives).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult

#: Schema version of the JSON document.
STORAGE_VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict:
    """The JSON-serializable form of a result."""
    return {
        "storage_version": STORAGE_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": [dict(row) for row in result.rows],
        "series": {
            name: [[x, y] for x, y in points]
            for name, points in result.series.items()
        },
        "notes": list(result.notes),
    }


def result_from_dict(payload: Dict) -> ExperimentResult:
    """Rebuild a result from its JSON form.

    Raises
    ------
    ExperimentError
        On schema-version mismatch or missing fields.
    """
    if payload.get("storage_version") != STORAGE_VERSION:
        raise ExperimentError(
            f"unsupported result storage version "
            f"{payload.get('storage_version')!r}"
        )
    try:
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            rows=tuple(payload["rows"]),
            series={
                name: tuple((x, float(y)) for x, y in points)
                for name, points in payload["series"].items()
            },
            notes=tuple(payload["notes"]),
        )
    except KeyError as exc:
        raise ExperimentError(f"result document missing field {exc}") from exc


def save_result(result: ExperimentResult, directory: Union[str, Path]) -> Path:
    """Write ``<directory>/<experiment_id>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read one archived result document."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no result document at {path}")
    return result_from_dict(json.loads(path.read_text()))


def load_results_dir(directory: Union[str, Path]) -> List[ExperimentResult]:
    """Load every ``*.json`` result in a directory, sorted by id."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ExperimentError(f"{directory} is not a directory")
    results = [
        load_result(path) for path in sorted(directory.glob("*.json"))
    ]
    return sorted(results, key=lambda result: result.experiment_id)
