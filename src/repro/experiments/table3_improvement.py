"""Table 3 — relative precision improvement of TS-PPR over the best baseline.

``improvement = (TS-PPR − best_baseline) / best_baseline`` per metric,
cut-off, and dataset; a ``\\`` entry (as in the paper's Lastfm Top-1
cells) marks cut-offs where TS-PPR is *not* the best method.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.evaluation.metrics import relative_improvement
from repro.experiments.common import (
    BASELINE_ORDER,
    DATASET_KEYS,
    ExperimentScale,
    accuracy_run,
    dataset_title,
)
from repro.experiments.registry import ExperimentResult, register_experiment

_BASELINES = tuple(m for m in BASELINE_ORDER if m != "TS-PPR")


def improvement_cell(
    results, metric: str, top_n: int
) -> str:
    """One Table 3 cell: percentage string, or ``\\`` when TS-PPR loses."""
    values = {
        method: (
            results[method].maap[top_n]
            if metric == "MaAP"
            else results[method].miap[top_n]
        )
        for method in BASELINE_ORDER
    }
    best_baseline = max(values[m] for m in _BASELINES)
    ours = values["TS-PPR"]
    if ours <= best_baseline:
        return "\\"
    return f"{100 * relative_improvement(ours, best_baseline):.0f}%"


@register_experiment(
    "table3", "Relative precision improvement of TS-PPR over the best baseline"
)
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    for dataset_key in DATASET_KEYS:
        results = accuracy_run(dataset_key, scale)
        row: dict = {"Data set": dataset_title(dataset_key)}
        for metric in ("MaAP", "MiAP"):
            for top_n in (1, 5, 10):
                row[f"{metric} Top-{top_n}"] = improvement_cell(
                    results, metric, top_n
                )
        rows.append(row)
    return ExperimentResult(
        experiment_id="table3",
        title="Relative precision improvement of TS-PPR over the best baseline",
        rows=tuple(rows),
    )
