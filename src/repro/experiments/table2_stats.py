"""Table 2 — statistics of the (synthetic stand-in) data sets.

The paper reports users / items / consumption counts after the
``0.7·|S_u| ≥ 100`` filter; we additionally report the window-repeat
fraction, which for the Lastfm-like set should sit near the ~77% the
paper quotes for real Last.fm.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.experiments.common import (
    DATASET_KEYS,
    ExperimentScale,
    build_split,
)
from repro.experiments.registry import ExperimentResult, register_experiment


@register_experiment("table2", "Statistics of the data sets (post-filter)")
def run(scale: ExperimentScale) -> ExperimentResult:
    rows: List[Mapping[str, object]] = []
    notes = []
    for dataset_key in DATASET_KEYS:
        split = build_split(dataset_key, scale)
        stats = split.dataset.stats()
        rows.append(stats.as_row())
        if dataset_key == "lastfm":
            notes.append(
                f"Lastfm-like repeat fraction {stats.repeat_fraction:.3f} "
                f"(paper cites ~0.77 for real Last.fm)"
            )
    return ExperimentResult(
        experiment_id="table2",
        title="Statistics of the data sets (post-filter)",
        rows=tuple(rows),
        notes=tuple(notes),
    )
