"""Shared infrastructure for the experiment grid.

Defines the run scales (smoke / fast / full), cached dataset + split
construction, per-dataset default TS-PPR configurations (Table 4), and
the baseline roster of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import (
    EvaluationConfig,
    TSPPRConfig,
    WindowConfig,
    gowalla_default_config,
    lastfm_default_config,
)
from repro.data.split import SplitDataset, temporal_split
from repro.evaluation.metrics import AccuracyResult
from repro.evaluation.protocol import evaluate_recommender
from repro.exceptions import ExperimentError
from repro.logging_utils import get_logger
from repro.models.base import Recommender
from repro.models.dyrc import DYRCRecommender
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.recency import RecencyRecommender
from repro.models.survival import SurvivalRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.rng import derive_seed
from repro.synth.gowalla import generate_gowalla
from repro.synth.lastfm import generate_lastfm

logger = get_logger("experiments")

#: Dataset keys used across the harness.
DATASET_KEYS: Tuple[str, ...] = ("gowalla", "lastfm")

#: Baseline names in the paper's Fig 5/6 ordering (TS-PPR last).
BASELINE_ORDER: Tuple[str, ...] = (
    "Random",
    "Pop",
    "Recency",
    "FPMC",
    "Survival",
    "DYRC",
    "TS-PPR",
)


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run is.

    Attributes
    ----------
    name:
        Profile label ("smoke" / "fast" / "full").
    user_factor, length_factor:
        Multipliers applied to the synthetic presets.
    max_epochs:
        SGD update budget for the learned models.
    seed:
        Base seed; per-(dataset, purpose) seeds are derived from it.
    workers:
        Evaluation worker processes; results are bit-identical at any
        value (see :func:`repro.evaluation.protocol.evaluate_recommender`).
    fit_workers:
        Training worker processes for the parallel feature-cache build
        (see :meth:`repro.features.cache.QuadrupleFeatureCache.build`);
        also bit-identical at any value.
    """

    name: str
    user_factor: float
    length_factor: float
    max_epochs: int
    seed: int = 7
    workers: int = 1
    fit_workers: int = 1

    def __post_init__(self) -> None:
        if self.user_factor <= 0 or self.length_factor <= 0:
            raise ExperimentError("scale factors must be positive")
        if self.max_epochs <= 0:
            raise ExperimentError("max_epochs must be positive")
        if self.workers <= 0:
            raise ExperimentError("workers must be positive")
        if self.fit_workers <= 0:
            raise ExperimentError("fit_workers must be positive")


#: Tiny profile for unit/integration tests.
SMOKE_SCALE = ExperimentScale("smoke", user_factor=0.12, length_factor=0.6, max_epochs=20_000)
#: Benchmark profile: minutes per experiment, preserves all shapes.
FAST_SCALE = ExperimentScale("fast", user_factor=0.3, length_factor=1.0, max_epochs=120_000)
#: Full laptop-scale profile used for EXPERIMENTS.md numbers.
FULL_SCALE = ExperimentScale("full", user_factor=1.0, length_factor=1.0, max_epochs=400_000)

_SCALES: Dict[str, ExperimentScale] = {
    scale.name: scale for scale in (SMOKE_SCALE, FAST_SCALE, FULL_SCALE)
}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a profile by name ("smoke" / "fast" / "full")."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


_SPLIT_CACHE: Dict[Tuple[str, str], SplitDataset] = {}
_ACCURACY_CACHE: Dict[Tuple[str, str, str], Dict[str, AccuracyResult]] = {}


def clear_caches() -> None:
    """Drop all cached splits and shared accuracy runs."""
    _SPLIT_CACHE.clear()
    _ACCURACY_CACHE.clear()


def build_split(dataset_key: str, scale: ExperimentScale) -> SplitDataset:
    """The cached 70/30 split of a synthetic dataset at a given scale."""
    if dataset_key not in DATASET_KEYS:
        raise ExperimentError(
            f"unknown dataset {dataset_key!r}; choose from {DATASET_KEYS}"
        )
    cache_key = (dataset_key, scale.name)
    cached = _SPLIT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    # A stable per-dataset salt (str hash() is randomized across runs).
    seed = derive_seed(scale.seed, DATASET_KEYS.index(dataset_key))
    generator = generate_gowalla if dataset_key == "gowalla" else generate_lastfm
    dataset = generator(
        random_state=seed,
        user_factor=scale.user_factor,
        length_factor=scale.length_factor,
    )
    split = temporal_split(dataset)
    logger.info(
        "built %s split at scale %s: %d users, %d train / %d test events",
        dataset_key, scale.name, split.n_users,
        split.n_train_consumptions(), split.n_test_consumptions(),
    )
    _SPLIT_CACHE[cache_key] = split
    return split


def default_config(
    dataset_key: str,
    scale: ExperimentScale,
    **overrides,
) -> TSPPRConfig:
    """Table 4 defaults for a dataset, bounded by the scale's budget."""
    base = (
        gowalla_default_config()
        if dataset_key == "gowalla"
        else lastfm_default_config()
    )
    changes = {"max_epochs": scale.max_epochs, "seed": derive_seed(scale.seed, 1)}
    changes.update(overrides)
    return base.with_overrides(**changes)


def make_model(
    name: str,
    dataset_key: str,
    scale: ExperimentScale,
    config: Optional[TSPPRConfig] = None,
) -> Recommender:
    """Instantiate one of the Section 5.2 methods by display name."""
    config = config or default_config(dataset_key, scale)
    seed = derive_seed(scale.seed, 2)
    factories: Dict[str, Callable[[], Recommender]] = {
        "Random": lambda: RandomRecommender(random_state=seed),
        "Pop": PopRecommender,
        "Recency": RecencyRecommender,
        "FPMC": lambda: FPMCRecommender(config),
        "Survival": SurvivalRecommender,
        "DYRC": DYRCRecommender,
        "TS-PPR": lambda: TSPPRRecommender(config),
    }
    factory = factories.get(name)
    if factory is None:
        raise ExperimentError(
            f"unknown model {name!r}; choose from {sorted(factories)}"
        )
    return factory()


def fit_and_evaluate(
    model: Recommender,
    split: SplitDataset,
    eval_config: Optional[EvaluationConfig] = None,
    window: Optional[WindowConfig] = None,
    workers: int = 1,
    fit_workers: int = 1,
) -> AccuracyResult:
    """Fit a model on the split and run the accuracy protocol."""
    eval_config = eval_config or EvaluationConfig()
    model.fit(split, window or eval_config.window, fit_workers=fit_workers)
    return evaluate_recommender(model, split, eval_config, workers=workers)


def accuracy_run(
    dataset_key: str,
    scale: ExperimentScale,
    methods: Tuple[str, ...] = BASELINE_ORDER,
) -> Dict[str, AccuracyResult]:
    """All-methods accuracy on one dataset, cached for reuse.

    Fig 5, Fig 6, Table 3 and the bench suite all consume this one run.
    ``scale.workers`` only changes wall-clock time, never the numbers,
    so the cache key can safely ignore it.
    """
    cache_key = (dataset_key, scale.name, "|".join(methods))
    cached = _ACCURACY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    split = build_split(dataset_key, scale)
    results: Dict[str, AccuracyResult] = {}
    for name in methods:
        model = make_model(name, dataset_key, scale)
        logger.info("fitting %s on %s (%s scale)", name, dataset_key, scale.name)
        results[name] = fit_and_evaluate(
            model, split, workers=scale.workers, fit_workers=scale.fit_workers
        )
    _ACCURACY_CACHE[cache_key] = results
    return results


def dataset_title(dataset_key: str) -> str:
    """Human-readable dataset label used in result rows."""
    return "Gowalla-like" if dataset_key == "gowalla" else "Lastfm-like"
