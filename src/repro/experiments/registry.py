"""Registry mapping paper artifacts (tables/figures) to runners.

Experiment modules register a ``run(scale) -> ExperimentResult`` runner
under the artifact's id (``"fig5"``, ``"table3"``, ...). The CLI and the
benchmark suite resolve runners through this registry, so the set of
reproducible artifacts is discoverable in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.evaluation.reports import format_table
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentScale


@dataclass(frozen=True)
class ExperimentResult:
    """What an experiment runner produces.

    Attributes
    ----------
    experiment_id:
        The paper artifact id ("fig5", "table3", ...).
    title:
        Human-readable description matching the paper caption.
    rows:
        Table-style results (list of dict rows).
    series:
        Figure-style results: name → list of (x, y) points.
    notes:
        Free-form remarks (e.g. which shape checks passed).
    """

    experiment_id: str
    title: str
    rows: Tuple[Mapping[str, object], ...] = ()
    series: Mapping[str, Tuple[Tuple[object, float], ...]] = field(
        default_factory=dict
    )
    notes: Tuple[str, ...] = ()

    def render(self) -> str:
        """Plain-text rendering: title, table, series, notes."""
        blocks: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            blocks.append(format_table(list(self.rows)))
        for name, points in self.series.items():
            lines = [f"-- {name} --"]
            for x, y in points:
                lines.append(f"  {x}: {y:.4f}")
            blocks.append("\n".join(lines))
        if self.notes:
            blocks.append("\n".join(f"note: {note}" for note in self.notes))
        return "\n\n".join(blocks)


Runner = Callable[[ExperimentScale], ExperimentResult]

_RUNNERS: Dict[str, Tuple[str, Runner]] = {}


def register_experiment(experiment_id: str, title: str) -> Callable[[Runner], Runner]:
    """Decorator registering ``run`` under a paper artifact id."""

    def decorate(runner: Runner) -> Runner:
        if experiment_id in _RUNNERS:
            raise ExperimentError(f"experiment {experiment_id!r} already registered")
        _RUNNERS[experiment_id] = (title, runner)
        return runner

    return decorate


def _ensure_loaded() -> None:
    """Import every experiment module so registrations run."""
    # Imports are local to avoid circular imports at package load time.
    from repro.experiments import (  # noqa: F401
        fig4_distributions,
        fig5_6_accuracy,
        fig7_feature_importance,
        fig8_regularization,
        fig9_latent_dim,
        fig10_negative_samples,
        fig11_min_gap,
        fig12_convergence,
        fig13_timing,
        fig_drift,
        table2_stats,
        table3_improvement,
        table4_defaults,
        table5_strec_combo,
    )


def available_experiments() -> List[str]:
    """Sorted ids of every registered experiment."""
    _ensure_loaded()
    return sorted(_RUNNERS)


def get_experiment(experiment_id: str) -> Tuple[str, Runner]:
    """The (title, runner) pair for an artifact id."""
    _ensure_loaded()
    try:
        return _RUNNERS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{available_experiments()}"
        ) from None


def run_experiment(
    experiment_id: str, scale: ExperimentScale
) -> ExperimentResult:
    """Run one experiment at the given scale."""
    _, runner = get_experiment(experiment_id)
    return runner(scale)
