"""Shared SGD update kernels for the pairwise-ranking models.

These are the parameter-update bodies of TS-PPR, PPR, and FPMC training
(Algorithm 1 and its ablations), extracted from the model closures so
that *offline* training (:func:`~repro.optim.sgd.run_sgd` block mode)
and *online* incremental learning (:mod:`repro.online`) apply the exact
same arithmetic to the exact same array layouts.

Bit-identity contracts (asserted by ``tests/test_training_equivalence.py``
and ``tests/test_online_trainer.py``):

* :func:`tsppr_block_update` and :func:`ppr_block_update` group a block
  into conflict-free batches via
  :func:`~repro.optim.blocks.dependency_batches` — updates whose
  parameter rows are pairwise disjoint cannot observe each other's
  writes, so applying a batch with stacked matmuls is bit-identical to
  applying its updates one at a time, while conflicting pairs keep
  their order. A direct consequence: *how a stream of updates is cut
  into blocks cannot change a single bit of the final parameters*,
  which is what makes the online trainer's flush cadence (and the
  ``sgd_block`` knob) a pure throughput choice.
* :func:`tsppr_shared_update` (shared-mapping ablation: every update
  conflicts through ``A``) and :func:`fpmc_sequential_update` (basket
  rows overlap unpredictably, outside what ``dependency_batches``
  models) apply updates strictly in order with buffered ufuncs,
  bit-identical to their scalar reference loops.

All kernels mutate the factor arrays in place; the TS-PPR shared-mapping
kernel returns the replacement mapping matrix (its reference semantics
rebind the array per update rather than writing through it).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.optim.blocks import dependency_batches
from repro.optim.lasso import sigmoid_scalar


def _stable_coeffs(margins: np.ndarray, alpha: float) -> np.ndarray:
    """``alpha * sigmoid(-margin)`` for a batch, inlined and stable.

    ``|−z| == |z|`` and ``-z >= 0`` iff ``z <= 0`` (also for ±0.0), so
    this is the stable two-branch sigmoid evaluated without the extra
    negation or function-call overhead.
    """
    exp_term = np.exp(np.negative(np.abs(margins)))
    denom = exp_term + 1.0
    coeffs = np.where(margins <= 0.0, 1.0 / denom, exp_term / denom)
    coeffs *= alpha
    return coeffs


def tsppr_block_update(
    U: np.ndarray,
    V: np.ndarray,
    mappings: np.ndarray,
    users_blk: np.ndarray,
    pos_blk: np.ndarray,
    neg_blk: np.ndarray,
    fdiff_blk: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    lam: float,
    use_static: bool,
) -> None:
    """One TS-PPR block with per-user mappings (Algorithm 1 updates).

    Updates are grouped into conflict-free batches; each batch is
    applied in one shot with stacked ``(m,K,F)@(m,F,1)`` matmuls and
    ``(m,1,K)@(m,K,1)`` inner products, which are bit-identical to
    their per-row counterparts on this build; every other step is
    elementwise, so batching cannot change a single bit.
    """
    decay_latent = 1 - alpha * gamma
    decay_mapping = 1 - alpha * lam
    for batch in dependency_batches(users_blk, pos_blk, neg_blk):
        run_users = users_blk[batch]
        diff = fdiff_blk[batch]
        u_rows = U[run_users]
        A_rows = mappings[run_users]
        mapped = np.matmul(A_rows, diff[:, :, None])[:, :, 0]
        if use_static:
            # One stacked gather/scatter covers both item roles; a
            # batch's items are pairwise distinct, so the scatter below
            # writes each row exactly once.
            m = batch.size
            run_items = np.concatenate((pos_blk[batch], neg_blk[batch]))
            v_rows = V[run_items]
            s = np.subtract(v_rows[:m], v_rows[m:])  # item_diff
            s += mapped
        else:
            s = mapped
        margins = np.matmul(u_rows[:, None, :], s[:, :, None])[:, 0, 0]
        coeffs = _stable_coeffs(margins, alpha)
        coeffs_col = coeffs[:, None]

        new_u = np.multiply(u_rows, decay_latent)
        new_u += np.multiply(s, coeffs_col)
        if use_static:
            cu = np.multiply(u_rows, coeffs_col)  # pre-update u
            new_v = np.multiply(v_rows, decay_latent)
            new_v[:m] += cu
            new_v[m:] -= cu
            V[run_items] = new_v
        outer = np.multiply(u_rows[:, :, None], diff[:, None, :])
        outer *= coeffs[:, None, None]
        new_a = np.multiply(A_rows, decay_mapping)
        new_a += outer
        U[run_users] = new_u
        mappings[run_users] = new_a


def tsppr_shared_update(
    U: np.ndarray,
    V: np.ndarray,
    mappings: np.ndarray,
    users_blk: Iterable[int],
    pos_blk: Iterable[int],
    neg_blk: Iterable[int],
    fdiff_blk: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    lam: float,
    use_static: bool,
) -> np.ndarray:
    """TS-PPR updates with one shared mapping ``A``, strictly in order.

    Every update conflicts through ``A``, so this is a buffered
    per-update loop. Returns the final mapping matrix (a fresh array,
    per the reference semantics of rebinding ``A`` each update).
    """
    K = int(U.shape[1])
    F = int(fdiff_blk.shape[1])
    decay_latent = 1 - alpha * gamma
    decay_mapping = 1 - alpha * lam
    mapped_buf = np.empty(K)
    s_buf = np.empty(K)
    cs_buf = np.empty(K)
    cu_buf = np.empty(K)
    u_buf = np.empty(K)
    v_buf = np.empty(K)
    outer_buf = np.empty((K, F))
    mapping_buf = np.empty((K, F))
    users_list = list(users_blk)
    pos_list = list(pos_blk)
    neg_list = list(neg_blk)
    A = mappings
    for r in range(len(users_list)):
        user = users_list[r]
        v_i, v_j = pos_list[r], neg_list[r]
        diff = fdiff_blk[r]
        u_vec = U[user]
        np.matmul(A, diff, out=mapped_buf)
        if use_static:
            np.subtract(V[v_i], V[v_j], out=s_buf)  # item_diff
            s_buf += mapped_buf
            margin = float(u_vec @ s_buf)
        else:
            margin = float(u_vec @ mapped_buf)
        coeff = alpha * sigmoid_scalar(-margin)

        if use_static:
            np.multiply(s_buf, coeff, out=cs_buf)
        else:
            np.multiply(mapped_buf, coeff, out=cs_buf)
        np.multiply(u_vec, decay_latent, out=u_buf)
        u_buf += cs_buf  # new_u; not yet written back
        if use_static:
            np.multiply(u_vec, coeff, out=cu_buf)
            np.multiply(V[v_i], decay_latent, out=v_buf)
            v_buf += cu_buf
            V[v_i] = v_buf
            np.multiply(V[v_j], decay_latent, out=v_buf)
            v_buf -= cu_buf
            V[v_j] = v_buf
        np.multiply(u_vec[:, None], diff, out=outer_buf)
        outer_buf *= coeff
        np.multiply(A, decay_mapping, out=mapping_buf)
        mapping_buf += outer_buf
        U[user] = u_buf
        A = mapping_buf.copy()
    return A


def ppr_block_update(
    U: np.ndarray,
    V: np.ndarray,
    users_blk: np.ndarray,
    pos_blk: np.ndarray,
    neg_blk: np.ndarray,
    *,
    alpha: float,
    gamma: float,
) -> None:
    """One PPR (classic BPR) block of Eq 1–3 updates.

    The scalar path's ``U``-first write order is preserved by deriving
    the ``V`` updates from the *new* user rows.
    """
    decay = 1 - alpha * gamma
    for batch in dependency_batches(users_blk, pos_blk, neg_blk):
        run_users = users_blk[batch]
        # One stacked gather/scatter covers both item roles; a batch's
        # items are pairwise distinct, so the scatter below writes each
        # row exactly once.
        m = batch.size
        run_items = np.concatenate((pos_blk[batch], neg_blk[batch]))
        u_rows = U[run_users]
        v_rows = V[run_items]
        d = np.subtract(v_rows[:m], v_rows[m:])  # item_diff
        margins = np.matmul(u_rows[:, None, :], d[:, :, None])[:, 0, 0]
        coeffs = _stable_coeffs(margins, alpha)
        coeffs_col = coeffs[:, None]

        new_u = np.multiply(u_rows, decay)
        new_u += np.multiply(d, coeffs_col)
        cu = np.multiply(new_u, coeffs_col)  # post-update u
        new_v = np.multiply(v_rows, decay)
        new_v[:m] += cu
        new_v[m:] -= cu
        U[run_users] = new_u
        V[run_items] = new_v


def fpmc_sequential_update(
    UI: np.ndarray,
    IU: np.ndarray,
    IL: np.ndarray,
    LI: np.ndarray,
    updates: Iterable[Tuple[int, int, int, np.ndarray]],
    *,
    alpha: float,
    gamma: float,
    use_user_term: bool,
) -> None:
    """S-BPR updates over window baskets, strictly in order.

    ``updates`` yields ``(user, v_i, v_j, basket)`` tuples with
    ``v_j != v_i`` and a non-empty int64 basket. Basket rows overlap
    between consecutive updates in ways ``dependency_batches`` cannot
    express, so the loop stays sequential; the buffered ufuncs below
    are bit-identical to the scalar reference (a single eta evaluation
    per update, as in the training block kernel).
    """
    K = int(IL.shape[1])
    decay = 1 - alpha * gamma
    d_buf = np.empty(K)       # IL[v_i] - IL[v_j]
    ce_buf = np.empty(K)      # coeff * eta
    cb_buf = np.empty(K)      # (coeff / |basket|) * il_diff
    x_buf = np.empty(K)
    u_old = np.empty(K)
    iu_buf = np.empty(K)
    ciu_buf = np.empty(K)
    cu_buf = np.empty(K)
    for user, v_i, v_j, basket in updates:
        eta = LI[basket].mean(axis=0)
        np.subtract(IL[v_i], IL[v_j], out=d_buf)  # il_diff
        margin = float(eta @ d_buf)
        if use_user_term:
            np.subtract(IU[v_i], IU[v_j], out=iu_buf)
            margin += float(UI[user] @ iu_buf)
        coeff = alpha * sigmoid_scalar(-margin)

        if use_user_term:
            u_old[:] = UI[user]
            np.multiply(iu_buf, coeff, out=ciu_buf)
            np.multiply(u_old, decay, out=x_buf)
            x_buf += ciu_buf
            UI[user] = x_buf
            np.multiply(u_old, coeff, out=cu_buf)
            np.multiply(IU[v_i], decay, out=x_buf)
            x_buf += cu_buf
            IU[v_i] = x_buf
            np.multiply(IU[v_j], decay, out=x_buf)
            x_buf -= cu_buf
            IU[v_j] = x_buf
        np.multiply(eta, coeff, out=ce_buf)
        np.multiply(IL[v_i], decay, out=x_buf)
        x_buf += ce_buf
        IL[v_i] = x_buf
        np.multiply(IL[v_j], decay, out=x_buf)
        x_buf -= ce_buf
        IL[v_j] = x_buf
        basket_block = LI[basket]  # gathered copy
        basket_block *= decay
        np.multiply(d_buf, coeff / basket.size, out=cb_buf)
        basket_block += cb_buf
        LI[basket] = basket_block


__all__ = [
    "fpmc_sequential_update",
    "ppr_block_update",
    "tsppr_block_update",
    "tsppr_shared_update",
]
