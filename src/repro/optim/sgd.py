"""Generic SGD driver shared by the pairwise-ranking models.

The driver owns the *schedule*: draw a training index, apply the model's
update, and every ``check_interval`` updates evaluate the mean margin on
a fixed small batch, delegating the stop decision to a
:class:`~repro.optim.convergence.ConvergenceMonitor`. Models supply two
callables and stay in charge of their own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple


from repro.optim.convergence import ConvergenceMonitor


@dataclass(frozen=True)
class SGDResult:
    """Outcome of an SGD run.

    Attributes
    ----------
    n_updates:
        Total single-quadruple updates applied ("epochs" in the paper's
        Algorithm 1 wording).
    converged:
        Whether the ``Δr̃`` criterion fired before the update budget ran
        out.
    margin_history:
        ``(n_updates, r̃)`` checkpoints — the Fig 12 curve.
    """

    n_updates: int
    converged: bool
    margin_history: Tuple[Tuple[int, float], ...]

    @property
    def final_margin(self) -> float:
        """``r̃`` at the last convergence check."""
        if not self.margin_history:
            raise ValueError("SGD run recorded no convergence checks")
        return self.margin_history[-1][1]


def run_sgd(
    draw_index: Callable[[], int],
    apply_update: Callable[[int], None],
    batch_margin: Callable[[], float],
    max_updates: int,
    check_interval: int,
    tol: float = 1e-3,
    patience: int = 1,
) -> SGDResult:
    """Run SGD until the margin stabilizes or the budget is exhausted.

    Parameters
    ----------
    draw_index:
        Returns the next training-example index (the schedule).
    apply_update:
        Applies one stochastic update for the given index.
    batch_margin:
        Returns the current mean margin ``r̃`` on the fixed small batch.
    max_updates:
        Hard budget of updates.
    check_interval:
        Updates between convergence checks (the paper's ``m = |D|/10``).
    tol, patience:
        Forwarded to :class:`ConvergenceMonitor`.
    """
    if max_updates <= 0:
        raise ValueError(f"max_updates must be positive, got {max_updates}")
    if check_interval <= 0:
        raise ValueError(f"check_interval must be positive, got {check_interval}")

    monitor = ConvergenceMonitor(tol=tol, patience=patience)
    monitor.record(0, batch_margin())

    n_updates = 0
    converged = False
    while n_updates < max_updates and not converged:
        block = min(check_interval, max_updates - n_updates)
        for _ in range(block):
            apply_update(draw_index())
        n_updates += block
        converged = monitor.record(n_updates, batch_margin())

    return SGDResult(
        n_updates=n_updates,
        converged=converged,
        margin_history=tuple(monitor.history),
    )
