"""Generic SGD driver shared by the pairwise-ranking models.

The driver owns the *schedule*: draw a training index, apply the model's
update, and every ``check_interval`` updates evaluate the mean margin on
a fixed small batch, delegating the stop decision to a
:class:`~repro.optim.convergence.ConvergenceMonitor`. Models supply two
callables and stay in charge of their own parameters.

Two execution modes share that contract. The scalar mode interleaves
``draw_index()`` / ``apply_update(index)`` one update at a time. The
block mode (``draw_block`` + ``apply_block``) pre-draws a whole
check-interval's worth of schedule entries in one stream-exact call and
hands them to a vectorized kernel; the rng call sequence, the update
order, the margin history, and checkpoint cadence are all identical, so
the two modes produce bit-identical results.

Crash safety: when a :class:`~repro.resilience.checkpoint.CheckpointManager`
is supplied (together with ``get_state``/``set_state`` callables and the
schedule ``rng``), the driver snapshots the full training state at
convergence-check boundaries and transparently resumes a partial run —
the continued run applies exactly the updates the uninterrupted run
would have, so final parameters and the margin history are
bit-identical. A :class:`~repro.resilience.faults.FaultInjector` can be
threaded in by tests to kill the loop at an arbitrary update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CheckpointError
from repro.optim.convergence import ConvergenceMonitor
from repro.resilience.checkpoint import CheckpointManager, TrainingState
from repro.resilience.faults import FaultInjector


@dataclass(frozen=True)
class SGDResult:
    """Outcome of an SGD run.

    Attributes
    ----------
    n_updates:
        Total single-quadruple updates applied ("epochs" in the paper's
        Algorithm 1 wording).
    converged:
        Whether the ``Δr̃`` criterion fired before the update budget ran
        out.
    margin_history:
        ``(n_updates, r̃)`` checkpoints — the Fig 12 curve.
    """

    n_updates: int
    converged: bool
    margin_history: Tuple[Tuple[int, float], ...]

    @property
    def final_margin(self) -> float:
        """``r̃`` at the last convergence check.

        :func:`run_sgd` always records the initial check (0 updates)
        before entering the loop, so results it produces are never
        empty; the guard protects hand-built instances.
        """
        if not self.margin_history:
            raise ValueError("SGD run recorded no convergence checks")
        return self.margin_history[-1][1]


def run_sgd(
    draw_index: Optional[Callable[[], int]],
    apply_update: Optional[Callable[[int], None]],
    batch_margin: Callable[[], float],
    max_updates: int,
    check_interval: int,
    tol: float = 1e-3,
    patience: int = 1,
    *,
    draw_block: Optional[Callable[[int], np.ndarray]] = None,
    apply_block: Optional[Callable[[np.ndarray], None]] = None,
    checkpoint: Optional[CheckpointManager] = None,
    get_state: Optional[Callable[[], Dict[str, np.ndarray]]] = None,
    set_state: Optional[Callable[[Dict[str, np.ndarray]], None]] = None,
    rng: Optional[np.random.Generator] = None,
    fault_injector: Optional[FaultInjector] = None,
    block_size: Optional[int] = None,
) -> SGDResult:
    """Run SGD until the margin stabilizes or the budget is exhausted.

    Parameters
    ----------
    draw_index:
        Returns the next training-example index (the schedule).
    apply_update:
        Applies one stochastic update for the given index.
    draw_block / apply_block:
        Block execution mode: ``draw_block(k)`` pre-draws the next ``k``
        schedule entries *stream-exactly* (consuming the rng in the same
        call sequence ``k`` scalar draws would) and ``apply_block``
        applies them in order with a vectorized kernel that must be
        bit-identical to ``k`` ``apply_update`` calls. When both are
        given the loop runs whole check-interval blocks through them;
        ``draw_index``/``apply_update`` may then be ``None``. Blocks
        never cross a convergence-check boundary, so margin history and
        checkpoint cadence are identical in either mode.
    batch_margin:
        Returns the current mean margin ``r̃`` on the fixed small batch.
    max_updates:
        Hard budget of updates.
    check_interval:
        Updates between convergence checks (the paper's ``m = |D|/10``).
    tol, patience:
        Forwarded to :class:`ConvergenceMonitor`.
    checkpoint:
        Optional manager: snapshot the run at check boundaries and, if
        the manager's directory already holds a valid snapshot, resume
        from it instead of starting over. Requires ``get_state`` and
        ``set_state``.
    get_state / set_state:
        Capture / restore the model's parameter arrays by name. The
        restore must write *in place* wherever ``apply_update`` closes
        over array aliases.
    rng:
        The generator driving ``draw_index`` (and any in-update
        sampling); its bit-generator state is checkpointed and restored
        so a resumed schedule replays bit-identically.
    fault_injector:
        Test hook: consulted before every update so crash-safety tests
        can kill the run at an exact update count. In block mode the
        injector is consulted for each of the block's updates *before*
        the block kernel runs — the fault fires at the same update
        count, and because recovery always replays from the last
        check-boundary checkpoint, resume results are bit-identical to
        the scalar path either way.
    block_size:
        Block mode only: cap on updates per ``apply_block`` kernel call.
        A check interval larger than this is split into consecutive
        chunks (``None``/0 keeps one whole interval per call). Because
        ``draw_block`` is stream-exact, chunked draws consume the rng in
        the same sequence one big draw would, and chunks never cross a
        convergence-check boundary — results are bit-identical at any
        block size. This is the ``training.sgd_block`` autotuner knob:
        it trades per-call kernel overhead against the peak working set
        of one vectorized block.
    """
    if max_updates <= 0:
        raise ValueError(f"max_updates must be positive, got {max_updates}")
    if check_interval <= 0:
        raise ValueError(f"check_interval must be positive, got {check_interval}")
    if (draw_block is None) != (apply_block is None):
        raise ValueError(
            "block mode requires both draw_block and apply_block callables"
        )
    use_block = draw_block is not None and apply_block is not None
    if not use_block and (draw_index is None or apply_update is None):
        raise ValueError(
            "scalar mode requires both draw_index and apply_update callables"
        )
    if checkpoint is not None and (get_state is None or set_state is None):
        raise ValueError(
            "checkpointing requires both get_state and set_state callables"
        )
    if block_size is not None and block_size < 0:
        raise ValueError(f"block_size must be >= 0, got {block_size}")
    chunk_cap = block_size if block_size else None
    if chunk_cap is not None and not use_block:
        raise ValueError("block_size requires block mode (draw/apply_block)")

    monitor = ConvergenceMonitor(tol=tol, patience=patience)
    n_updates = 0
    converged = False

    def _snapshot() -> TrainingState:
        assert get_state is not None
        return TrainingState(
            n_updates=n_updates,
            converged=converged,
            history=monitor.history,
            streak=monitor.streak,
            params=get_state(),
            rng_state=(rng.bit_generator.state if rng is not None else None),
        )

    resumed = False
    if checkpoint is not None:
        state = checkpoint.load_latest()
        if state is not None:
            assert set_state is not None
            try:
                set_state(state.params)
            except (KeyError, ValueError, TypeError) as exc:
                raise CheckpointError(
                    f"checkpoint incompatible with current model: {exc}"
                ) from exc
            if rng is not None and state.rng_state is not None:
                rng.bit_generator.state = state.rng_state
            monitor.restore(state.history, state.streak)
            n_updates = state.n_updates
            converged = state.converged
            resumed = True

    if not resumed:
        # The initial check is always recorded (and checkpointed), so
        # every run — however tiny its budget — has a margin history.
        converged = monitor.record(0, batch_margin())
        if checkpoint is not None:
            checkpoint.maybe_save(_snapshot)

    while n_updates < max_updates and not converged:
        block = min(check_interval, max_updates - n_updates)
        if use_block:
            if fault_injector is not None:
                for _ in range(block):
                    fault_injector.on_update()
            # Chunking within the interval is stream-exact: consecutive
            # draw_block calls consume the rng exactly as one big call.
            remaining = block
            while remaining > 0:
                chunk = (
                    remaining if chunk_cap is None else min(chunk_cap, remaining)
                )
                apply_block(draw_block(chunk))
                remaining -= chunk
        else:
            for _ in range(block):
                if fault_injector is not None:
                    fault_injector.on_update()
                apply_update(draw_index())
        n_updates += block
        converged = monitor.record(n_updates, batch_margin())
        if checkpoint is not None:
            checkpoint.maybe_save(_snapshot)

    return SGDResult(
        n_updates=n_updates,
        converged=converged,
        margin_history=tuple(monitor.history),
    )
