"""Damped Newton minimization with backtracking line search.

Used by the Cox proportional-hazards fitter
(:mod:`repro.survival.cox`), whose negative partial log-likelihood is
smooth and convex with an inexpensive exact Hessian.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.exceptions import ConvergenceError

ValueGradHess = Callable[[np.ndarray], Tuple[float, np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class NewtonResult:
    """Outcome of :func:`newton_minimize`."""

    x: np.ndarray
    value: float
    n_iter: int
    converged: bool
    gradient_norm: float


def newton_minimize(
    objective: ValueGradHess,
    x0: np.ndarray,
    tol: float = 1e-8,
    max_iter: int = 100,
    ridge: float = 1e-9,
    max_backtracks: int = 40,
    raise_on_failure: bool = True,
) -> NewtonResult:
    """Minimize a smooth convex function with damped Newton steps.

    Parameters
    ----------
    objective:
        Maps ``x`` to ``(value, gradient, hessian)``.
    x0:
        Starting point (not modified).
    tol:
        Convergence threshold on the gradient inf-norm.
    ridge:
        Initial diagonal jitter added when the Hessian solve fails;
        increased geometrically until the solve succeeds.
    max_backtracks:
        Halvings of the step length while the objective does not
        decrease.
    raise_on_failure:
        Raise :class:`~repro.exceptions.ConvergenceError` if the
        iteration budget is exhausted; otherwise return the best point
        found with ``converged=False``.
    """
    x = np.array(x0, dtype=np.float64, copy=True)
    value, gradient, hessian = objective(x)

    for iteration in range(1, max_iter + 1):
        gradient_norm = float(np.max(np.abs(gradient))) if gradient.size else 0.0
        if gradient_norm <= tol:
            return NewtonResult(
                x=x, value=value, n_iter=iteration - 1,
                converged=True, gradient_norm=gradient_norm,
            )

        jitter = 0.0
        while True:
            try:
                step = np.linalg.solve(
                    hessian + jitter * np.eye(hessian.shape[0]), gradient
                )
                break
            except np.linalg.LinAlgError:
                jitter = ridge if jitter == 0.0 else jitter * 10.0
                if jitter > 1e6:
                    raise ConvergenceError(
                        "Newton step failed: Hessian remained singular "
                        "despite heavy ridge regularization"
                    )

        scale = 1.0
        min_decrease = 1e-12 * (1.0 + abs(value))
        for _ in range(max_backtracks):
            candidate = x - scale * step
            candidate_value, candidate_grad, candidate_hess = objective(candidate)
            if np.isfinite(candidate_value) and candidate_value <= value - min_decrease:
                x, value = candidate, candidate_value
                gradient, hessian = candidate_grad, candidate_hess
                break
            scale *= 0.5
        else:
            # No meaningful decrease in any direction: numerically done.
            return NewtonResult(
                x=x, value=value, n_iter=iteration,
                converged=gradient_norm <= max(tol, 1e-4),
                gradient_norm=gradient_norm,
            )

    gradient_norm = float(np.max(np.abs(gradient))) if gradient.size else 0.0
    if gradient_norm <= tol:
        return NewtonResult(
            x=x, value=value, n_iter=max_iter, converged=True,
            gradient_norm=gradient_norm,
        )
    if raise_on_failure:
        raise ConvergenceError(
            f"Newton did not converge in {max_iter} iterations "
            f"(gradient inf-norm {gradient_norm:.3e} > tol {tol:.3e})"
        )
    return NewtonResult(
        x=x, value=value, n_iter=max_iter, converged=False,
        gradient_norm=gradient_norm,
    )
