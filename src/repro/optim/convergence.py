"""Small-batch convergence monitoring through the mean margin ``r̃``.

Section 5.6.1: rather than tracking the bounded per-quadruple likelihood,
the paper tracks ``r̃`` — the mean preference margin
``r_uv_i t − r_uv_j t`` over a fixed small batch — and declares
convergence when its change between checks ``Δr̃`` drops to ``1e-3``.
The recorded history is exactly the curve plotted in Fig 12.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class ConvergenceMonitor:
    """Tracks ``r̃`` across checks and reports convergence on ``Δr̃``.

    Parameters
    ----------
    tol:
        Convergence threshold on ``|Δr̃|``.
    patience:
        How many *consecutive* checks must satisfy the threshold. The
        default 1 matches the paper; a larger value guards against a
        coincidentally flat pair of checks early in training.
    """

    def __init__(self, tol: float = 1e-3, patience: int = 1) -> None:
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.tol = tol
        self.patience = patience
        self._history: List[Tuple[int, float]] = []
        self._streak = 0

    @property
    def history(self) -> List[Tuple[int, float]]:
        """``(n_updates, r̃)`` pairs, one per check (Fig 12 series)."""
        return list(self._history)

    @property
    def streak(self) -> int:
        """Consecutive sub-``tol`` checks so far (checkpointed on resume)."""
        return self._streak

    @property
    def last_margin(self) -> float:
        """Most recent ``r̃`` (raises if no check happened yet)."""
        if not self._history:
            raise ValueError("no convergence check recorded yet")
        return self._history[-1][1]

    def record(self, n_updates: int, margin: float) -> bool:
        """Record a check; return ``True`` when converged.

        The first check never converges (there is no ``Δr̃`` yet).
        """
        converged = False
        if self._history:
            delta = abs(margin - self._history[-1][1])
            if delta <= self.tol:
                self._streak += 1
            else:
                self._streak = 0
            converged = self._streak >= self.patience
        self._history.append((int(n_updates), float(margin)))
        return converged

    def reset(self) -> None:
        """Forget all recorded checks."""
        self._history.clear()
        self._streak = 0

    def restore(
        self, history: Iterable[Tuple[int, float]], streak: int = 0
    ) -> None:
        """Overwrite the monitor's state from a checkpoint snapshot.

        Used by :func:`~repro.optim.sgd.run_sgd` when resuming, so the
        continued run's ``Δr̃`` decisions (and the Fig 12 curve) are
        bit-identical to an uninterrupted run.
        """
        if streak < 0:
            raise ValueError(f"streak must be >= 0, got {streak}")
        self._history = [(int(n), float(m)) for n, m in history]
        self._streak = int(streak)
