"""Optimization substrate.

* :mod:`repro.optim.sgd` — the stochastic gradient-descent driver used
  by TS-PPR, PPR, and FPMC, with the paper's small-batch ``Δr̃``
  convergence check (Section 5.6.1);
* :mod:`repro.optim.convergence` — the margin-history monitor behind
  Fig 12;
* :mod:`repro.optim.kernels` — the extracted TS-PPR/PPR/FPMC parameter
  update kernels shared by offline block SGD and the online trainer
  (:mod:`repro.online`);
* :mod:`repro.optim.lasso` — L1-regularized logistic regression by
  accelerated proximal gradient (STREC's linear model);
* :mod:`repro.optim.newton` — a damped Newton solver (Cox partial
  likelihood).
"""

from repro.optim.convergence import ConvergenceMonitor
from repro.optim.kernels import (
    fpmc_sequential_update,
    ppr_block_update,
    tsppr_block_update,
    tsppr_shared_update,
)
from repro.optim.lasso import LogisticLasso, sigmoid, sigmoid_scalar
from repro.optim.newton import NewtonResult, newton_minimize
from repro.optim.sgd import SGDResult, run_sgd

__all__ = [
    "ConvergenceMonitor",
    "LogisticLasso",
    "NewtonResult",
    "SGDResult",
    "fpmc_sequential_update",
    "newton_minimize",
    "ppr_block_update",
    "run_sgd",
    "sigmoid",
    "sigmoid_scalar",
    "tsppr_block_update",
    "tsppr_shared_update",
]
