"""L1-regularized logistic regression by accelerated proximal gradient.

This is the solver behind the STREC linear model (Chen et al., AAAI'15),
which predicts whether the next consumption will be a repeat from a
handful of window-level behavioural features under a Lasso penalty.

The objective is

``min_β, b  (1/n) Σ log(1 + exp(−y_i (x_iᵀβ + b)))  +  α ‖β‖₁``

with labels ``y ∈ {−1, +1}`` and an unpenalized intercept ``b``, solved
with FISTA using the global Lipschitz bound ``L = ‖X̃‖₂² / (4n)`` of the
logistic loss gradient (``X̃`` is ``X`` with the intercept column).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable elementwise logistic function.

    Evaluates ``exp(-|z|)`` only (never overflows) and selects the
    stable branch per element with ``np.where`` — bit-identical to the
    classic two-branch masked formulation, but without its boolean
    gathers/scatters, which dominate at the small array sizes the SGD
    block kernels call it with.
    """
    z = np.asarray(z, dtype=np.float64)
    e = np.exp(-np.abs(z))
    denom = e + 1.0
    return np.where(z >= 0, 1.0 / denom, e / denom)


def sigmoid_scalar(z: float) -> float:
    """:func:`sigmoid` for one float, without the array round-trip.

    Bit-identical to ``float(sigmoid(np.array(z)))``: the same stable
    two-branch formula evaluated with ``np.exp`` on a numpy scalar,
    which shares its libm path with the array ufunc. (``math.exp`` is
    *not* a drop-in here — it differs from ``np.exp`` by ulps on some
    builds, and the SGD kernels require exact agreement with the
    reference path.) Several times faster than the array form at the
    one-margin-at-a-time granularity of the SGD inner loops.
    """
    if z >= 0.0:
        return float(1.0 / (1.0 + np.exp(-z)))
    exp_z = np.exp(z)
    return float(exp_z / (1.0 + exp_z))


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """The proximal operator of ``threshold · ‖·‖₁``."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


class LogisticLasso:
    """Binary classifier with logistic loss and L1 penalty.

    Parameters
    ----------
    alpha:
        L1 penalty weight. 0 gives plain (unregularized) logistic
        regression.
    max_iter:
        FISTA iteration budget.
    tol:
        Stop when the parameter change (inf-norm) drops below this.
    fit_intercept:
        Learn an unpenalized intercept term.

    Attributes
    ----------
    coef_:
        Fitted weight vector, shape ``(n_features,)``.
    intercept_:
        Fitted intercept (0 when ``fit_intercept=False``).
    n_iter_:
        Iterations actually used.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        max_iter: int = 2000,
        tol: float = 1e-7,
        fit_intercept: bool = True,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticLasso":
        """Fit on features ``X`` (n, F) and binary labels ``y``.

        Labels may be ``{0, 1}`` or ``{−1, +1}``; they are canonicalized
        to ``{−1, +1}`` internally.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        labels = np.unique(y)
        if set(labels.tolist()) <= {0.0, 1.0}:
            signs = np.where(y > 0.5, 1.0, -1.0)
        elif set(labels.tolist()) <= {-1.0, 1.0}:
            signs = y.copy()
        else:
            raise ValueError(f"labels must be binary, got values {labels}")

        n, n_features = X.shape
        design = (
            np.hstack([X, np.ones((n, 1))]) if self.fit_intercept else X
        )
        # Lipschitz constant of the averaged logistic-loss gradient.
        spectral_norm = np.linalg.norm(design, ord=2) if n else 1.0
        lipschitz = max(spectral_norm**2 / (4.0 * max(n, 1)), 1e-12)
        step = 1.0 / lipschitz

        dim = design.shape[1]
        params = np.zeros(dim)
        momentum = params.copy()
        t_accel = 1.0

        def grad(theta: np.ndarray) -> np.ndarray:
            margins = signs * (design @ theta)
            weights = -signs * sigmoid(-margins)  # d/dθ of mean log-loss
            return design.T @ weights / n

        threshold = self.alpha * step
        for iteration in range(1, self.max_iter + 1):
            candidate = momentum - step * grad(momentum)
            new_params = soft_threshold(candidate, threshold)
            if self.fit_intercept:
                # The intercept is never penalized.
                new_params[-1] = candidate[-1]
            t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_accel**2)) / 2.0
            momentum = new_params + ((t_accel - 1.0) / t_next) * (new_params - params)
            change = float(np.max(np.abs(new_params - params))) if dim else 0.0
            params = new_params
            t_accel = t_next
            if change < self.tol:
                break
        self.n_iter_ = iteration

        if self.fit_intercept:
            self.coef_ = params[:-1].copy()
            self.intercept_ = float(params[-1])
        else:
            self.coef_ = params.copy()
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw scores ``Xβ + b``."""
        if self.coef_ is None:
            raise NotFittedError("LogisticLasso used before fit")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``P(y = 1 | x)`` for each row."""
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def sparsity(self) -> float:
        """Fraction of exactly-zero coefficients (Lasso's selling point)."""
        if self.coef_ is None:
            raise NotFittedError("LogisticLasso used before fit")
        if self.coef_.size == 0:
            return 0.0
        return float(np.mean(self.coef_ == 0.0))
