"""Conflict-free run partitioning for block SGD kernels.

The block execution mode of :func:`repro.optim.sgd.run_sgd` hands model
kernels a block of pre-drawn update indices. Consecutive updates whose
parameter rows are pairwise disjoint — no shared user row and no shared
item row — cannot observe each other's writes, so a kernel may apply
them as one batched *run* and stay bit-identical to the scalar
one-update-at-a-time path. This module computes those runs.

The greedy partition ("extend the run until the next update touches an
already-touched row") needs, for each update, only the index of the most
recent *earlier* update that shares a row with it: update ``i`` conflicts
with the open run ``[start, i)`` exactly when that index is ``>= start``.
Those "conflict bounds" are computed for a whole block at once with two
stable argsorts (one over users, one over the interleaved positive /
negative item ids), which replaces per-update Python set bookkeeping
with a single integer comparison per update in the partition loop.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np


def _previous_occurrence(values: np.ndarray) -> np.ndarray:
    """Index of the most recent earlier equal value, per position (-1 if none)."""
    n = int(values.size)
    prev = np.full(n, -1, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    same = sorted_values[1:] == sorted_values[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _previous_item_updates(
    positives: np.ndarray, negatives: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Most recent earlier update touching each update's positive / negative item.

    Item occurrences are interleaved as a slot stream — slot ``2i`` is
    update ``i``'s positive, slot ``2i+1`` its negative — so slot order
    equals update order and ``slot >> 1`` recovers the update index
    (also for the -1 sentinel, since ``-1 >> 1 == -1``). An item may
    conflict across roles (today's negative is tomorrow's positive),
    which the shared stream handles for free.
    """
    n = int(positives.size)
    slots = np.empty(2 * n, dtype=np.int64)
    slots[0::2] = positives
    slots[1::2] = negatives
    prev_slot = _previous_occurrence(slots)
    prev_update = prev_slot >> 1
    return prev_update[0::2], prev_update[1::2]


def conflict_bounds(
    users: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> np.ndarray:
    """Most recent earlier update sharing a row, per update (-1 if none).

    ``bounds[i]`` is the largest ``j < i`` such that update ``j`` touches
    the same user row as update ``i`` or a common item row (positive or
    negative, in either role), or ``-1`` when no earlier update in the
    block conflicts. Users and items live in different parameter
    matrices, so a user id never conflicts with an item id.
    """
    n = int(users.size)
    if positives.size != n or negatives.size != n:
        raise ValueError(
            f"users/positives/negatives must align, got sizes "
            f"{users.size}/{positives.size}/{negatives.size}"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64)

    bounds = _previous_occurrence(users)
    prev_pos, prev_neg = _previous_item_updates(positives, negatives)
    np.maximum(bounds, prev_pos, out=bounds)
    np.maximum(bounds, prev_neg, out=bounds)
    return bounds


def iter_runs(
    users: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> Iterator[Tuple[int, int]]:
    """Greedy maximal conflict-free runs as ``(start, end)`` slices.

    Identical to extending a run while tracking touched user/item sets
    and breaking at the first collision: update ``end`` conflicts with
    the open run ``[start, end)`` iff its conflict bound is ``>= start``.
    """
    bounds = conflict_bounds(users, positives, negatives).tolist()
    n = len(bounds)
    start = 0
    while start < n:
        end = start + 1
        while end < n and bounds[end] < start:
            end += 1
        yield start, end
        start = end


def dependency_batches(
    users: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> List[np.ndarray]:
    """Conflict-free update batches preserving every data dependency.

    Swapping two *non-conflicting* updates is bit-identical: they read
    and write disjoint parameter rows, so neither observes the other.
    Only the relative order of updates sharing a user or an item row
    must be preserved. Each update therefore gets a dependency level —
    one more than the highest level among the most recent earlier
    updates touching its user, positive or negative item (levels along
    a same-row chain increase strictly, so the most recent occurrence
    per chain dominates all older ones) — and the updates of one level
    are pairwise conflict-free *across the whole block*, not just
    within a contiguous stretch. Applying levels in ascending order,
    each as one batched kernel invocation, replays the scalar schedule
    exactly; stable sorting keeps a level's updates in original draw
    order so the grouping is deterministic.

    Batches returned here are typically several times larger than the
    contiguous runs of :func:`iter_runs`, amortizing per-batch kernel
    overhead further.
    """
    n = int(users.size)
    if positives.size != n or negatives.size != n:
        raise ValueError(
            f"users/positives/negatives must align, got sizes "
            f"{users.size}/{positives.size}/{negatives.size}"
        )
    if n == 0:
        return []
    prev_user = _previous_occurrence(users)
    prev_pos, prev_neg = _previous_item_updates(positives, negatives)
    # Shift indices by one so the -1 "no predecessor" sentinel lands on
    # slot 0, which permanently holds level 0.
    pu = (prev_user + 1).tolist()
    pp = (prev_pos + 1).tolist()
    pn = (prev_neg + 1).tolist()
    level = [0] * (n + 1)
    for i in range(n):
        depth = level[pu[i]]
        other = level[pp[i]]
        if other > depth:
            depth = other
        other = level[pn[i]]
        if other > depth:
            depth = other
        level[i + 1] = depth + 1
    levels = np.asarray(level[1:], dtype=np.int64)
    order = np.argsort(levels, kind="stable")
    counts = np.bincount(levels - 1)
    boundaries = np.concatenate(([0], np.cumsum(counts)))
    return [
        order[boundaries[i] : boundaries[i + 1]]
        for i in range(counts.size)
    ]
