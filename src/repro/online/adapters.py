"""Per-model ISGD update policies behind one adapter interface.

An adapter answers three questions for its model:

* **capture** — given one ingested event ``(user, item)`` and the
  user's *pre-event* session state, does this event yield a pairwise
  ranking update, and with what ingredients (negative draw, feature
  difference, basket)? Capture happens at observe time, against state
  that is itself bit-identically replayable from the WAL, and consumes
  the trainer's RNG in a deterministic per-event order — the two facts
  that make live-vs-replay bit-identity possible.
* **flush** — apply a buffer of captured updates through the exact
  offline kernels (:mod:`repro.optim.kernels`). TS-PPR (per-user
  mappings) and PPR use the conflict-free batched kernels, whose level
  scheduling preserves the order of every conflicting pair — so the
  flush cadence cannot change a single parameter bit; the shared-mapping
  TS-PPR ablation and FPMC apply strictly in order for the same reason.
* **params / set_params** — the named factor arrays an online
  checkpoint persists and a replay rebuild restores.

Update policies (what counts as a training pair):

* **TS-PPR / PPR** — the event is a positive exactly when it is an RRC
  repeat target (``session.is_next_target``) with at least one other
  Ω-filtered candidate; the negative is drawn uniformly from the
  remaining candidates, mirroring the offline quadruple sampler's
  window-alternative policy. TS-PPR additionally evaluates the
  behavioural feature difference ``f(v_i) − f(v_j)`` at the pre-event
  position through the fitted feature model (bit-identical to the
  offline feature path).
* **FPMC** — every event with a non-empty window basket is a positive
  (S-BPR has no repeat filter); the negative is drawn uniformly over
  the item universe, skipping the update when the draw collides with
  the positive — after consuming the draw, exactly as offline training
  does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.features import fast_fillers
from repro.exceptions import OnlineError
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.optim.kernels import (
    fpmc_sequential_update,
    ppr_block_update,
    tsppr_block_update,
    tsppr_shared_update,
)
from repro.windows.window import window_before

#: One captured update: (user, positive, negative, payload). The payload
#: is the TS-PPR feature difference, the FPMC basket, or ``None`` (PPR).
Update = Tuple[int, int, int, Optional[np.ndarray]]


def _draw_candidate_negative(
    session, item: int, rng: np.random.Generator
) -> Optional[int]:
    """Uniform negative from the pre-event candidates, excluding ``item``.

    ``session.candidates()`` is sorted, so the draw is a deterministic
    function of session state and RNG position. Returns ``None`` (no
    RNG consumed) when no alternative exists.
    """
    pool = [c for c in session.candidates() if c != item]
    if not pool:
        return None
    return pool[int(rng.integers(len(pool)))]


class OnlineAdapter:
    """Base: holds the model and the online learning rate."""

    def __init__(self, model, learning_rate: float) -> None:
        if not model.is_fitted:
            raise OnlineError(
                "online updates require a fitted model (fit first, then "
                "stream)"
            )
        self.model = model
        self.learning_rate = float(learning_rate)

    def capture(
        self, user: int, item: int, session, rng: np.random.Generator
    ) -> Optional[Update]:
        raise NotImplementedError

    def flush(self, updates: List[Update]) -> None:
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Live factor arrays, name-keyed (checkpoint layout)."""
        raise NotImplementedError

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        """Restore factors from a checkpoint (in place where aliased)."""
        raise NotImplementedError


class TSPPROnlineAdapter(OnlineAdapter):
    """ISGD over TS-PPR's ``U``/``V``/``A`` (Algorithm 1 updates)."""

    def __init__(self, model: TSPPRRecommender, learning_rate: float) -> None:
        super().__init__(model, learning_rate)
        self._window_size = model.window_config.window_size
        # Exact vectorized column fillers (None when a custom extractor
        # forces the generic path). Capture sits on the serving ingest
        # hot path, so the two feature rows must cost microseconds, not
        # a generic matrix build — this is what keeps the updates-on
        # serving p99 inside the BENCH_online.json ceiling.
        self._fillers = fast_fillers(model.feature_model)

    def _feature_rows(self, session, item: int, negative: int) -> np.ndarray:
        """Feature rows for (positive, negative) at the pre-event state.

        Both paths produce bit-identical float64 values (the engine's
        fast-filler contract), so which one runs never affects the
        replay-identity invariant.
        """
        if self._fillers is None:
            sequence = session.sequence()
            t = session.t
            window = window_before(sequence, t, self._window_size)
            return self.model.feature_model.matrix(
                sequence, [item, negative], t, window
            )
        keys = [item, negative]
        items = np.array(keys, dtype=np.int64)
        rows = np.empty((2, len(self._fillers)), dtype=np.float64)
        for column, fill in enumerate(self._fillers):
            fill(session, items, keys, rows[:, column])
        return rows

    def capture(
        self, user: int, item: int, session, rng: np.random.Generator
    ) -> Optional[Update]:
        if not session.is_next_target(item):
            return None
        negative = _draw_candidate_negative(session, item, rng)
        if negative is None:
            return None
        rows = self._feature_rows(session, int(item), int(negative))
        return (int(user), int(item), int(negative), rows[0] - rows[1])

    def flush(self, updates: List[Update]) -> None:
        model = self.model
        config = model.config
        fdiff = np.stack([payload for _, _, _, payload in updates])
        if config.share_mapping:
            model.mappings_ = tsppr_shared_update(
                model.user_factors_,
                model.item_factors_,
                model.mappings_,
                [u for u, _, _, _ in updates],
                [p for _, p, _, _ in updates],
                [n for _, _, n, _ in updates],
                fdiff,
                alpha=self.learning_rate,
                gamma=config.gamma_latent,
                lam=config.lambda_mapping,
                use_static=config.use_static_term,
            )
            return
        tsppr_block_update(
            model.user_factors_,
            model.item_factors_,
            model.mappings_,
            np.array([u for u, _, _, _ in updates], dtype=np.int64),
            np.array([p for _, p, _, _ in updates], dtype=np.int64),
            np.array([n for _, _, n, _ in updates], dtype=np.int64),
            fdiff,
            alpha=self.learning_rate,
            gamma=config.gamma_latent,
            lam=config.lambda_mapping,
            use_static=config.use_static_term,
        )

    def params(self) -> Dict[str, np.ndarray]:
        return {
            "user_factors": self.model.user_factors_,
            "item_factors": self.model.item_factors_,
            "mappings": np.asarray(self.model.mappings_),
        }

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        self.model.user_factors_[...] = params["user_factors"]
        self.model.item_factors_[...] = params["item_factors"]
        if self.model.config.share_mapping:
            self.model.mappings_ = params["mappings"].copy()
        else:
            self.model.mappings_[...] = params["mappings"]


class PPROnlineAdapter(OnlineAdapter):
    """ISGD over PPR's ``U``/``V`` (classic BPR, Eq 1–3)."""

    def capture(
        self, user: int, item: int, session, rng: np.random.Generator
    ) -> Optional[Update]:
        if not session.is_next_target(item):
            return None
        negative = _draw_candidate_negative(session, item, rng)
        if negative is None:
            return None
        return (int(user), int(item), int(negative), None)

    def flush(self, updates: List[Update]) -> None:
        model = self.model
        ppr_block_update(
            model.user_factors_,
            model.item_factors_,
            np.array([u for u, _, _, _ in updates], dtype=np.int64),
            np.array([p for _, p, _, _ in updates], dtype=np.int64),
            np.array([n for _, _, n, _ in updates], dtype=np.int64),
            alpha=self.learning_rate,
            gamma=model.config.gamma_latent,
        )

    def params(self) -> Dict[str, np.ndarray]:
        return {
            "user_factors": self.model.user_factors_,
            "item_factors": self.model.item_factors_,
        }

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        self.model.user_factors_[...] = params["user_factors"]
        self.model.item_factors_[...] = params["item_factors"]


class FPMCOnlineAdapter(OnlineAdapter):
    """ISGD over FPMC's four factor matrices (S-BPR updates)."""

    def capture(
        self, user: int, item: int, session, rng: np.random.Generator
    ) -> Optional[Update]:
        basket_items = sorted(session.window_counts_map())
        if not basket_items:
            return None
        n_items = self.model.item_basket_factors_.shape[0]
        negative = int(rng.integers(n_items))
        if negative == item:
            return None  # the draw is already consumed
        basket = np.asarray(basket_items, dtype=np.int64)
        return (int(user), int(item), negative, basket)

    def flush(self, updates: List[Update]) -> None:
        model = self.model
        fpmc_sequential_update(
            model.user_factors_,
            model.item_user_factors_,
            model.item_basket_factors_,
            model.basket_item_factors_,
            updates,
            alpha=self.learning_rate,
            gamma=model.config.gamma_latent,
            use_user_term=model.use_user_term,
        )

    def params(self) -> Dict[str, np.ndarray]:
        return {
            "user_factors": self.model.user_factors_,
            "item_user_factors": self.model.item_user_factors_,
            "item_basket_factors": self.model.item_basket_factors_,
            "basket_item_factors": self.model.basket_item_factors_,
        }

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        self.model.user_factors_[...] = params["user_factors"]
        self.model.item_user_factors_[...] = params["item_user_factors"]
        self.model.item_basket_factors_[...] = params["item_basket_factors"]
        self.model.basket_item_factors_[...] = params["basket_item_factors"]


def adapter_for(model, learning_rate: float) -> OnlineAdapter:
    """The update policy matching ``model``, or :class:`OnlineError`.

    Dispatch order matters: FPMC and PPR are independent classes, but
    the novel-item TS-PPR variant subclasses :class:`TSPPRRecommender`
    and shares its factor layout, so the TS-PPR adapter covers it.
    """
    if isinstance(model, FPMCRecommender):
        return FPMCOnlineAdapter(model, learning_rate)
    if isinstance(model, PPRRecommender):
        return PPROnlineAdapter(model, learning_rate)
    if isinstance(model, TSPPRRecommender):
        return TSPPROnlineAdapter(model, learning_rate)
    raise OnlineError(
        f"model {type(model).__name__} has no online update policy; "
        f"supported: TS-PPR, PPR, FPMC"
    )


__all__ = [
    "FPMCOnlineAdapter",
    "OnlineAdapter",
    "PPROnlineAdapter",
    "TSPPROnlineAdapter",
    "Update",
    "adapter_for",
]
