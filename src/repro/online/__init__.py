"""Incremental online learning: ISGD updates fed by the serving WAL.

Offline training fits TS-PPR/PPR/FPMC factors once on a frozen training
walk; the serving stack then ingests live events that update session
*state* but never the *model*, so fitted factors go stale as behaviour
drifts. This subsystem closes that loop with per-event incremental SGD
in the style of Vinagre et al.'s ISGD: every ingested consumption event
becomes (when the model's sampling policy admits one) a pairwise
ranking update applied through the exact batched kernels offline
training uses (:mod:`repro.optim.kernels`).

The core invariant mirrors the one serving sessions already guarantee:
a model rebuilt by replaying the crc-checked
:class:`~repro.serving.events.EventLog` from an (atomic, checksummed)
online checkpoint is **bit-identical** — fingerprint-checked — to the
model the live trainer updated event by event. Everything that could
break that is pinned down: updates are captured against the pre-event
session state (itself bit-identically replayable), negative draws come
from the trainer's own checkpointed RNG, and the flush batch window is
provably order-preserving for conflicting updates, so batching cadence
cannot change a single parameter bit.

Entry points:

* :class:`~repro.online.trainer.OnlineTrainer` — buffers observed
  events, flushes batched kernel updates, checkpoints, replays;
* :func:`~repro.online.adapters.adapter_for` — per-model update
  policies (what counts as a positive, how negatives are drawn, which
  kernel applies the math);
* ``ServiceConfig(online="isgd")`` /
  ``repro-serve serve --online isgd`` — live wiring through
  :func:`~repro.serving.service.service_for_split`;
* ``repro-experiments run fig_drift`` — frozen vs. online sliding-window
  MaAP on a drifting synthetic stream.
"""

from repro.online.adapters import (
    FPMCOnlineAdapter,
    OnlineAdapter,
    PPROnlineAdapter,
    TSPPROnlineAdapter,
    adapter_for,
)
from repro.online.trainer import OnlineTrainer, fingerprint_params

__all__ = [
    "FPMCOnlineAdapter",
    "OnlineAdapter",
    "OnlineTrainer",
    "PPROnlineAdapter",
    "TSPPROnlineAdapter",
    "adapter_for",
    "fingerprint_params",
]
