"""The online trainer: WAL-fed ISGD with bit-identical replay rebuilds.

:class:`OnlineTrainer` sits on the serving ingest path (or walks a
recovered :class:`~repro.serving.events.EventLog` offline) and turns
committed consumption events into incremental factor updates through a
per-model :class:`~repro.online.adapters.OnlineAdapter`. Three rules
give it the WAL-replay identity invariant:

1. **Capture at observe time.** Every update's ingredients (negative
   draw, feature difference, basket) are computed against the user's
   *pre-event* session state the moment the event is observed — state
   that the serving layer already rebuilds bit-identically from base
   histories + WAL replay.
2. **Own the randomness.** Negative draws come from the trainer's
   private RNG, consumed in strict event order; its bit-generator state
   rides in every checkpoint, so a rebuild resumes the exact stream.
3. **Flush through order-preserving kernels.** Buffered updates are
   applied by the offline block kernels, whose conflict-free level
   scheduling keeps every conflicting pair in order — the
   ``online_batch`` window is pure throughput, never semantics.

Flushes are inline but rare: an ingest pays only the microsecond-scale
capture until the buffer reaches ``batch_window`` (default 256), so
batched kernel work lands on well under 1% of ingests and stays out of
the serving p99 (``BENCH_online.json`` guards the ratio). Whoever
trips a flush — the window, an explicit ``flush()``, a checkpoint —
drains the whole buffer in observe order, so flush placement never
changes application order, and therefore never changes a parameter
bit.

Consequently ``live updates == checkpoint + replay of the remaining
WAL``, bit for bit, which :func:`fingerprint_params` digests verify
(``tests/test_online_trainer.py``, and under injected mid-stream
crashes in ``tests/test_online_recovery.py``).

Checkpoints reuse :mod:`repro.resilience`'s atomic, sha256-checksummed
:class:`~repro.resilience.checkpoint.CheckpointManager`; ``n_updates``
stores the event cursor (events observed, not updates applied).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import OnlineError
from repro.logging_utils import get_logger
from repro.online.adapters import Update, adapter_for
from repro.resilience.checkpoint import CheckpointManager, TrainingState
from repro.serving.metrics import ServingMetrics
from repro.tuning.defaults import default_of

logger = get_logger("online.trainer")


def fingerprint_params(params: Dict[str, np.ndarray]) -> str:
    """Canonical sha256 digest of named parameter arrays.

    Covers name, dtype, shape, and raw bytes in sorted-name order —
    two models agree on this digest iff their parameters are
    bit-identical. The online analogue of the session layer's
    ``fingerprint_state``.
    """
    digest = hashlib.sha256()
    for name in sorted(params):
        array = np.ascontiguousarray(params[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


class OnlineTrainer:
    """Applies per-event ISGD updates with a bounded flush buffer.

    Parameters
    ----------
    model:
        A fitted TS-PPR/PPR/FPMC recommender (the live serving model —
        updates mutate its factor arrays in place).
    learning_rate / batch_window:
        The ``serving.online_lr`` / ``serving.online_batch`` knobs:
        per-event step size, and how many captured updates buffer
        before one batched kernel flush.
    seed:
        Seed of the trainer's private negative-sampling RNG. Live
        trainer and replay rebuild must agree on it (both default it).
    metrics:
        Optional :class:`ServingMetrics` to publish counters/gauges
        into; the service shares its own so online metrics merge
        through ``/metrics`` (and the cluster merge) for free.
    checkpoint_manager:
        Optional :class:`CheckpointManager` for atomic checksummed
        online checkpoints.

    Thread safety: all trainer state (buffer, cursor, RNG, the factor
    arrays it mutates) lives under one non-reentrant lock. The service
    calls :meth:`observe` while holding its store lock and the trainer
    never takes the store lock, so the only cross-object order is
    ``store -> trainer`` and neither path can deadlock.
    """

    def __init__(
        self,
        model,
        learning_rate: Optional[float] = None,
        batch_window: Optional[int] = None,
        seed: int = 0,
        metrics: Optional[ServingMetrics] = None,
        checkpoint_manager: Optional[CheckpointManager] = None,
    ) -> None:
        if learning_rate is None:
            learning_rate = float(default_of("serving", "online_lr"))
        if batch_window is None:
            batch_window = int(default_of("serving", "online_batch"))
        if learning_rate <= 0:
            raise OnlineError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if batch_window < 1:
            raise OnlineError(
                f"batch_window must be >= 1, got {batch_window}"
            )
        self.adapter = adapter_for(model, learning_rate)
        self.batch_window = int(batch_window)
        self.rng = np.random.default_rng(seed)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.checkpoint_manager = checkpoint_manager
        self._buffer: List[Update] = []
        self._cursor = 0  # next WAL seq expected
        self._oldest_pending_ts: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def model(self):
        return self.adapter.model

    @property
    def cursor(self) -> int:
        """Next WAL sequence number this trainer expects."""
        with self._lock:
            return self._cursor

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def observe(
        self,
        seq: int,
        user: int,
        item: int,
        session,
        ts: Optional[float] = None,
    ) -> bool:
        """Consume one committed event against its pre-event session.

        Must be called *before* the event is applied to ``session``
        (capture needs the pre-event state) and in strict WAL order —
        a sequence gap means live trainer and log have diverged and
        raises rather than silently desynchronizing. Returns whether
        the event produced an update.
        """
        with self._lock:
            return self._observe_locked(seq, user, item, session, ts)

    def observe_next(
        self,
        user: int,
        item: int,
        session,
        ts: Optional[float] = None,
    ) -> bool:
        """:meth:`observe` for log-less services: self-assigns the seq."""
        with self._lock:
            return self._observe_locked(
                self._cursor, user, item, session, ts
            )

    def _observe_locked(
        self,
        seq: int,
        user: int,
        item: int,
        session,
        ts: Optional[float],
    ) -> bool:
        if seq != self._cursor:
            raise OnlineError(
                f"online trainer expected WAL seq {self._cursor}, "
                f"got {seq}: event stream and model have diverged"
            )
        self._cursor += 1
        self.metrics.inc("online_events")
        update = self.adapter.capture(user, item, session, self.rng)
        if update is None:
            return False
        self._buffer.append(update)
        if ts is not None and self._oldest_pending_ts is None:
            self._oldest_pending_ts = ts
        self.metrics.inc("online_updates")
        self.metrics.observe_gauge(
            "online_buffered_updates", len(self._buffer)
        )
        if len(self._buffer) >= self.batch_window:
            self._flush_locked()
        return True

    def flush(self) -> int:
        """Apply any buffered updates now; returns how many."""
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        batch = self._buffer
        if not batch:
            return 0
        self._buffer = []
        oldest = self._oldest_pending_ts
        self._oldest_pending_ts = None
        start = time.perf_counter()
        self.adapter.flush(batch)
        elapsed = time.perf_counter() - start
        self.metrics.observe("online_flush_latency", elapsed)
        if oldest is not None:
            lag_ms = max(0.0, time.time() - oldest) * 1e3
            self.metrics.observe_gauge("online_update_lag_ms", int(lag_ms))
        if elapsed > 0:
            self.metrics.observe_gauge(
                "online_updates_per_second", int(len(batch) / elapsed)
            )
        self.metrics.observe_gauge("online_buffered_updates", 0)
        return len(batch)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Flush, then atomically persist factors + RNG + event cursor.

        Holds the lock across the flush and the state read: the
        persisted cursor must count exactly the events whose updates
        the persisted factors contain, so concurrent observes are
        paused for the duration.
        """
        if self.checkpoint_manager is None:
            raise OnlineError("online trainer has no checkpoint manager")
        with self._lock:
            self._flush_locked()
            params = {
                name: np.array(array, copy=True)
                for name, array in self.adapter.params().items()
            }
            state = TrainingState(
                n_updates=self._cursor,
                converged=False,
                history=[],
                streak=0,
                params=params,
                rng_state=self.rng.bit_generator.state,
            )
            path = self.checkpoint_manager.save(state)
        logger.info(
            "online checkpoint at WAL seq %d -> %s", state.n_updates, path
        )
        return path

    def load_latest(self) -> int:
        """Restore the newest valid checkpoint; returns the event cursor.

        Without one (or without a manager) the trainer keeps the
        freshly fitted factors and a cursor of 0 — replay then starts
        from the beginning of the log.
        """
        if self.checkpoint_manager is None:
            return 0
        with self._lock:
            if self._buffer or self._cursor:
                raise OnlineError(
                    "load_latest must run before any event is observed"
                )
            state = self.checkpoint_manager.load_latest()
            if state is None:
                return 0
            self.adapter.set_params(state.params)
            if state.rng_state is not None:
                self.rng.bit_generator.state = state.rng_state
            self._cursor = int(state.n_updates)
        logger.info("online trainer resumed at WAL seq %d", self._cursor)
        return self._cursor

    # ------------------------------------------------------------------
    # Replay / verification
    # ------------------------------------------------------------------
    def replay(self, events: Iterable, store) -> int:
        """Walk committed events through ``store``, updating the model.

        Events below the trainer's cursor (already reflected in the
        restored factors) only advance session state; later ones feed
        :meth:`observe` before being applied — exactly the live ingest
        order. ``store`` must be lossless over the replay (capacity at
        least the user population, or an ``event_source`` wired to the
        same log) so pre-event capture state never degrades. Returns
        the number of events walked.
        """
        n_events = 0
        for event in events:
            with store.lock:
                if event.seq < self._cursor:
                    store.append(event.user, event.item)
                else:
                    session = store.get(event.user)
                    self.observe(
                        event.seq, event.user, event.item, session,
                        ts=event.ts,
                    )
                    session.append(event.item)
            n_events += 1
        self.flush()
        return n_events

    def model_fingerprint(self) -> str:
        """Digest of the current factors (pending updates flushed first)."""
        with self._lock:
            self._flush_locked()
            return fingerprint_params(self.adapter.params())


__all__ = ["OnlineTrainer", "fingerprint_params"]
