"""Consistent hashing of users onto shards.

The cluster partitions users across worker processes with a classic
consistent-hash ring: every shard owns ``vnodes`` points on a 64-bit
circle (sha256 of ``"<shard>#<vnode>"``), and a user belongs to the
shard owning the first point at or after the user's own hash. Two
properties matter operationally:

* **Determinism.** Ownership is a pure function of (shard names,
  vnodes, user id) — router, supervisor, smart clients, and tests all
  compute the same owner with no coordination.
* **Minimal movement.** Removing a shard (crash, drain) reassigns only
  *that shard's* users, spread over the survivors; every other user
  stays put. :meth:`HashRing.without` builds the shrunken ring and
  :func:`moved_users` reports exactly who must migrate — which is the
  drain/rebalance work list.

Rings are immutable; membership changes build new rings, so a router
can swap its ring atomically under one reference assignment.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import ServingError


def _point(key: str) -> int:
    """64-bit position of ``key`` on the hash circle."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Immutable consistent-hash ring mapping user ids to shard names."""

    def __init__(self, shards: Sequence[str], vnodes: int = 64) -> None:
        names = list(shards)
        if not names:
            raise ServingError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate shard names in {names}")
        if vnodes < 1:
            raise ServingError(f"vnodes must be >= 1, got {vnodes}")
        self.shards: Tuple[str, ...] = tuple(sorted(names))
        self.vnodes = int(vnodes)
        points: List[Tuple[int, str]] = []
        for shard in self.shards:
            for vnode in range(self.vnodes):
                points.append((_point(f"{shard}#{vnode}"), shard))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def owner(self, user: int) -> str:
        """The shard owning ``user`` — first ring point at/after its hash."""
        position = _point(f"user:{int(user)}")
        index = bisect.bisect_left(self._keys, position)
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def without(self, shard: str) -> "HashRing":
        """The ring with ``shard`` removed (drain/failure topology)."""
        if shard not in self.shards:
            raise ServingError(f"shard {shard!r} is not on the ring")
        survivors = [name for name in self.shards if name != shard]
        return HashRing(survivors, vnodes=self.vnodes)

    def with_shard(self, shard: str) -> "HashRing":
        """The ring with ``shard`` added (scale-out topology)."""
        if shard in self.shards:
            raise ServingError(f"shard {shard!r} is already on the ring")
        return HashRing([*self.shards, shard], vnodes=self.vnodes)

    def assignment(self, users: Iterable[int]) -> Dict[str, List[int]]:
        """Group ``users`` by owning shard (every shard gets a key)."""
        groups: Dict[str, List[int]] = {shard: [] for shard in self.shards}
        for user in users:
            groups[self.owner(user)].append(int(user))
        return groups

    def __contains__(self, shard: object) -> bool:
        return shard in self.shards

    def __len__(self) -> int:
        return len(self.shards)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashRing)
            and self.shards == other.shards
            and self.vnodes == other.vnodes
        )

    def __repr__(self) -> str:
        return f"HashRing(shards={list(self.shards)}, vnodes={self.vnodes})"


def moved_users(
    before: HashRing, after: HashRing, users: Iterable[int]
) -> List[int]:
    """Users whose owner differs between two rings — the migration set.

    For a pure removal this is exactly the removed shard's users
    (consistent hashing moves nobody else); asserted by the ring tests.
    """
    return [
        int(user)
        for user in users
        if before.owner(user) != after.owner(user)
    ]
