"""One shard of the serving cluster: a worker process entry point.

A worker is a full single-node serving stack — private
:class:`~repro.serving.state.SessionStore`, private write-ahead
:class:`~repro.serving.events.EventLog`, micro-batched
:class:`~repro.serving.service.RecommendService`, stdlib HTTP listener —
owning the users the ring assigns to it. Workers are deliberately
ring-agnostic: any worker *can* serve any user (its base histories cover
the whole split), which is what makes rebalancing a pure event
migration; the router is the only component enforcing ownership.

Lifecycle protocol with the supervisor:

* the worker binds an ephemeral port and publishes
  ``{"pid", "port", "url"}`` to its endpoint file via an atomic write —
  the supervisor polls that file to learn where the shard came up;
* ``SIGTERM`` is a *graceful* stop: the HTTP listener drains, the
  service closes, and the event log is sealed (drain path);
* ``SIGKILL`` is a *crash*: nothing is sealed and the log may carry a
  torn tail — recovery on the next spawn is WAL replay, exactly like
  the single-node crash tests.

``run_worker`` is spawned through a fork multiprocessing context, so
the already-fitted model and split are inherited by memory, not
re-fitted per shard — restarting a crashed shard costs replay time, not
training time.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.data.split import SplitDataset
from repro.logging_utils import get_logger
from repro.models.base import Recommender
from repro.resilience.atomic import atomic_write_json
from repro.serving.events import EventLog
from repro.serving.server import RecommendServer
from repro.serving.service import ServiceConfig, service_for_split

logger = get_logger("cluster.worker")


@dataclass(frozen=True)
class WorkerSpec:
    """Identity and on-disk locations of one shard worker.

    Attributes
    ----------
    name:
        Shard name, also its ring identity (e.g. ``shard-2``).
    log_path:
        The shard's private write-ahead event log.
    endpoint_path:
        Where the worker publishes its bound address (atomic JSON).
    host:
        Bind address for the worker's HTTP listener.
    capacity:
        Max resident live sessions before LRU eviction.
    fsync_policy:
        The shard WAL's durability policy (see
        :meth:`~repro.serving.events.EventLog.open`).
    store:
        History backing of the shard's sessions — one of
        ``repro.store.STORE_KINDS`` (the default ``"arena"`` packs the
        base histories into a columnar arena segment private to the
        shard) or ``"callable"`` for the legacy per-user fetch.
    store_dir:
        ``"arena-mmap"`` only: where the packed columns live. The
        supervisor points every shard at one shared saved arena, so N
        shards on one box map the same read-only pages instead of
        holding N copies.
    """

    name: str
    log_path: Path
    endpoint_path: Path
    host: str = "127.0.0.1"
    capacity: int = 1024
    fsync_policy: str = "always"
    store: str = "arena"
    store_dir: Optional[Path] = None


def read_endpoint(path: Path) -> Optional[Dict[str, object]]:
    """The worker's published ``{"pid", "port", "url"}``, or ``None``.

    Tolerates the file not existing yet (worker still booting); the
    write itself is atomic, so a present file is always complete.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        endpoint = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(endpoint, dict) or "url" not in endpoint:
        return None
    return endpoint


def run_worker(
    spec: WorkerSpec,
    split: SplitDataset,
    model: Recommender,
    config: ServiceConfig,
) -> None:
    """Child-process main: build the shard stack and serve until signalled."""
    # SIGTERM → the graceful-shutdown path serve_forever already has for
    # KeyboardInterrupt: stop the listener, close the service, seal the
    # log. (Raising from the handler is safe: the serve loop is a pure
    # poll loop on the main thread.)
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    event_log = EventLog.open(spec.log_path, fsync_policy=spec.fsync_policy)
    service = service_for_split(
        model,
        split,
        event_log=event_log,
        config=config,
        capacity=spec.capacity,
        store=spec.store,
        store_dir=spec.store_dir,
    )
    server = RecommendServer(service, host=spec.host, port=0)
    atomic_write_json(
        spec.endpoint_path,
        {"pid": os.getpid(), "port": server.address[1], "url": server.url},
    )
    if len(event_log):
        logger.info(
            "%s: recovered %d event(s) across %d user(s) from %s",
            spec.name, len(event_log), len(event_log.users()), spec.log_path,
        )
    logger.info("%s: serving on %s", spec.name, server.url)
    server.serve_forever()
