"""Worker lifecycle management: heartbeats, WAL-replay restarts, draining.

:class:`ShardSupervisor` owns N worker processes and a
:class:`~repro.cluster.ring.HashRing` assigning users to them. Each
worker moves through a small state machine::

    PENDING ──ready──▶ RUNNING ◀──recovered─── DEGRADED
                         │  ▲                     │
                  drain  │  │ verified      missed heartbeats /
                         ▼  │                dead process
                     DRAINING  FAILED ◀───────────┘
                         │        │ respawn + WAL replay
                         ▼        ▼
                      STOPPED   (PENDING → fingerprint check → RUNNING)

* **Heartbeats.** A monitor thread polls every worker's ``/healthz``
  with a short timeout. A miss marks the shard ``DEGRADED``; enough
  consecutive misses — or a dead process — marks it ``FAILED`` and
  triggers a restart. The router can accelerate detection by calling
  :meth:`report_failure` when a forward fails.
* **Restart = WAL replay, proven bit-identical.** Before readmitting a
  restarted shard to the ring, the supervisor opens the shard's event
  log *readonly*, rebuilds every logged user's expected session state
  (base history + replay — the same rule single-node recovery uses),
  and compares ``state_fingerprint`` digests against the restarted
  worker's ``/state`` answers. Only a bit-identical shard returns to
  ``RUNNING``; a mismatch parks it ``FAILED`` loudly.
* **Drain.** :meth:`drain` stops a shard gracefully (SIGTERM → log
  seal), replays its committed WAL into the surviving owners (per-user
  order preserved; appends carry idempotency seqs), verifies the
  migrated fingerprints, and shrinks the ring — consistent hashing
  guarantees only the drained shard's users move.

While a shard is ``PENDING``/``DEGRADED``/``FAILED``/``DRAINING``,
:meth:`endpoint_for` returns no URL for its users — the router degrades
those requests (Recency fallback for reads, bounded retry for writes)
instead of erroring.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cluster.ring import HashRing
from repro.cluster.worker import WorkerSpec, read_endpoint, run_worker
from repro.data.split import SplitDataset
from repro.exceptions import ServingError
from repro.logging_utils import get_logger
from repro.models.base import Recommender
from repro.serving.client import ServingClient
from repro.serving.events import EventLog
from repro.serving.service import ServiceConfig
from repro.serving.state import SessionStore

logger = get_logger("cluster.supervisor")

#: Worker lifecycle states.
PENDING = "PENDING"
RUNNING = "RUNNING"
DEGRADED = "DEGRADED"
FAILED = "FAILED"
DRAINING = "DRAINING"
STOPPED = "STOPPED"

#: States in which the heartbeat monitor probes a worker.
_MONITORED = (RUNNING, DEGRADED)


class WorkerHandle:
    """Mutable supervisor-side view of one worker process."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.url: Optional[str] = None
        self.state = STOPPED
        self.misses = 0
        self.restarts = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def __repr__(self) -> str:
        return (
            f"WorkerHandle(name={self.name!r}, state={self.state}, "
            f"pid={self.pid}, restarts={self.restarts})"
        )


class ShardSupervisor:
    """Spawn, monitor, restart, and drain the cluster's shard workers.

    Parameters
    ----------
    split / model / config:
        The serving artifacts every worker mounts (inherited through a
        fork context — the model is fitted once, not per shard).
    n_shards:
        Number of worker processes.
    run_dir:
        Directory holding each shard's WAL and endpoint file.
    capacity:
        Per-shard session-store LRU capacity.
    vnodes:
        Ring points per shard (ownership granularity).
    heartbeat_interval_s / heartbeat_timeout_s / max_missed_heartbeats:
        Monitor cadence, per-probe timeout, and how many consecutive
        misses escalate DEGRADED → FAILED (a dead process escalates
        immediately).
    fsync_policy:
        Durability policy of every shard WAL.
    start_timeout_s:
        How long to wait for a spawned worker to publish its endpoint
        and answer ``/healthz``.
    store:
        History backing of every shard's sessions (see
        :func:`repro.serving.service.service_for_split`). With
        ``"arena-mmap"`` the supervisor packs the training histories
        once under ``run_dir/arena`` before spawning, and all shards map
        that one read-only copy.
    """

    def __init__(
        self,
        split: SplitDataset,
        model: Recommender,
        config: ServiceConfig,
        n_shards: int,
        run_dir: Union[str, Path],
        capacity: int = 1024,
        host: str = "127.0.0.1",
        vnodes: int = 64,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 1.0,
        max_missed_heartbeats: int = 3,
        fsync_policy: str = "always",
        start_timeout_s: float = 60.0,
        store: str = "arena",
    ) -> None:
        if n_shards < 1:
            raise ServingError(f"n_shards must be >= 1, got {n_shards}")
        if max_missed_heartbeats < 1:
            raise ServingError(
                f"max_missed_heartbeats must be >= 1, "
                f"got {max_missed_heartbeats}"
            )
        self.split = split
        self.model = model
        self.config = config
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_missed_heartbeats = max_missed_heartbeats
        self.start_timeout_s = start_timeout_s
        self.store = store
        store_dir: Optional[Path] = None
        if store == "arena-mmap":
            # Pack once before any fork; every shard then opens the same
            # saved columns read-only instead of re-packing per process.
            store_dir = self.run_dir / "arena"
            split.history_store(
                kind="arena-mmap", base="train", directory=str(store_dir)
            )
        names = [f"shard-{index}" for index in range(n_shards)]
        self.ring = HashRing(names, vnodes=vnodes)
        self._handles: Dict[str, WorkerHandle] = {
            name: WorkerHandle(
                WorkerSpec(
                    name=name,
                    log_path=self.run_dir / f"{name}.log",
                    endpoint_path=self.run_dir / f"{name}.endpoint.json",
                    host=host,
                    capacity=capacity,
                    fsync_policy=fsync_policy,
                    store=store,
                    store_dir=store_dir,
                )
            )
            for name in names
        }
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._closed = False
        self._monitor: Optional[threading.Thread] = None
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = multiprocessing.get_context()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_names(self) -> List[str]:
        return list(self._handles)

    def states(self) -> Dict[str, str]:
        """Current lifecycle state of every shard."""
        with self._lock:
            return {name: h.state for name, h in self._handles.items()}

    def restart_counts(self) -> Dict[str, int]:
        with self._lock:
            return {name: h.restarts for name, h in self._handles.items()}

    def pid_of(self, name: str) -> int:
        """The live worker pid of ``name`` (chaos tests kill through this)."""
        handle = self._handle(name)
        with self._lock:
            if handle.process is None or handle.pid is None:
                raise ServingError(f"shard {name!r} has no live process")
            return handle.pid

    def url_of(self, name: str) -> str:
        handle = self._handle(name)
        with self._lock:
            if handle.url is None:
                raise ServingError(f"shard {name!r} has no endpoint yet")
            return handle.url

    def endpoint_for(self, user: int) -> Tuple[str, Optional[str]]:
        """The owning shard's ``(name, url)``; url is ``None`` unless RUNNING."""
        owner = self.ring.owner(user)
        with self._lock:
            handle = self._handles[owner]
            url = handle.url if handle.state == RUNNING else None
        return owner, url

    def history_provider(self) -> Callable:
        """Base-history fetch over the supervisor's split (shared shape)."""
        split = self.split

        def history(user: int):
            if 0 <= user < split.n_users:
                return split.train_sequence(user)
            return None

        return history

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        """Spawn every worker, wait until healthy, start the monitor."""
        for handle in self._handles.values():
            self._spawn(handle)
        for handle in self._handles.values():
            self._await_ready(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        logger.info(
            "cluster up: %d shard(s) %s", len(self._handles),
            {n: h.url for n, h in self._handles.items()},
        )
        return self

    def close(self) -> None:
        """Stop the monitor, then terminate every worker gracefully."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        for handle in self._handles.values():
            self._stop_worker(handle, graceful=True)
            with self._lock:
                handle.state = STOPPED

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Spawning / readiness
    # ------------------------------------------------------------------
    def _handle(self, name: str) -> WorkerHandle:
        if name not in self._handles:
            raise ServingError(f"unknown shard {name!r}")
        return self._handles[name]

    def _spawn(self, handle: WorkerHandle) -> None:
        spec = handle.spec
        if spec.endpoint_path.exists():
            spec.endpoint_path.unlink()
        process = self._mp.Process(
            target=run_worker,
            args=(spec, self.split, self.model, self.config),
            name=f"repro-{spec.name}",
            daemon=True,
        )
        process.start()
        with self._lock:
            handle.process = process
            handle.url = None
            handle.state = PENDING
            handle.misses = 0

    def _await_ready(self, handle: WorkerHandle) -> None:
        """Block until the worker publishes its endpoint and answers."""
        deadline = time.monotonic() + self.start_timeout_s
        while time.monotonic() < deadline:
            if handle.process is not None and not handle.process.is_alive():
                raise ServingError(
                    f"shard {handle.name} exited during startup "
                    f"(exitcode {handle.process.exitcode})"
                )
            endpoint = read_endpoint(handle.spec.endpoint_path)
            if endpoint is not None:
                url = str(endpoint["url"])
                client = ServingClient(
                    url, timeout=self.heartbeat_timeout_s, retries=0
                )
                if client.health():
                    with self._lock:
                        handle.url = url
                        handle.state = RUNNING
                        handle.misses = 0
                    return
            time.sleep(0.02)
        raise ServingError(
            f"shard {handle.name} did not become healthy within "
            f"{self.start_timeout_s:.1f}s"
        )

    def _stop_worker(self, handle: WorkerHandle, graceful: bool) -> None:
        """SIGTERM (graceful: seals the WAL) or SIGKILL, then reap."""
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            try:
                os.kill(process.pid, signal.SIGTERM if graceful else signal.SIGKILL)  # type: ignore[arg-type]
            except (ProcessLookupError, OSError):
                pass
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                try:
                    os.kill(process.pid, signal.SIGKILL)  # type: ignore[arg-type]
                except (ProcessLookupError, OSError):
                    pass
                process.join(timeout=5.0)
        else:
            process.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def report_failure(self, name: str) -> None:
        """Router hook: a forward to ``name`` failed — check it *now*."""
        handle = self._handle(name)
        with self._lock:
            if handle.state == RUNNING:
                handle.state = DEGRADED
            handle.misses += 1
        self._wake.set()

    def _monitor_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self.heartbeat_interval_s)
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
                candidates = [
                    h for h in self._handles.values()
                    if h.state in _MONITORED
                ]
            for handle in candidates:
                try:
                    self._check(handle)
                except Exception:  # noqa: BLE001 - monitor must survive
                    logger.exception(
                        "monitor check of %s failed", handle.name
                    )

    def _check(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None and not process.is_alive():
            logger.warning(
                "%s: process died (exitcode %s) — restarting via WAL replay",
                handle.name, process.exitcode,
            )
            self._restart(handle)
            return
        client = ServingClient(
            handle.url or "", timeout=self.heartbeat_timeout_s, retries=0
        )
        if handle.url is not None and client.health():
            with self._lock:
                if handle.state == DEGRADED:
                    logger.info("%s: heartbeat recovered", handle.name)
                if handle.state in _MONITORED:
                    handle.state = RUNNING
                    handle.misses = 0
            return
        with self._lock:
            handle.misses += 1
            misses = handle.misses
            if handle.state == RUNNING:
                handle.state = DEGRADED
        logger.warning(
            "%s: missed heartbeat %d/%d",
            handle.name, misses, self.max_missed_heartbeats,
        )
        if misses >= self.max_missed_heartbeats:
            self._restart(handle)

    # ------------------------------------------------------------------
    # Restart via WAL replay
    # ------------------------------------------------------------------
    def expected_fingerprints(
        self, name: str, users: Optional[List[int]] = None
    ) -> Dict[int, str]:
        """What a bit-identical rehydration of ``name`` must fingerprint.

        Pure readonly inspection: replay the shard's committed WAL over
        the base histories — the single-node recovery rule — without
        touching the artifact. Deliberately built on the legacy callable
        provider regardless of ``self.store``: comparing these digests
        against an arena-backed worker's proves the two history
        representations are bit-identical, not just self-consistent.
        """
        spec = self._handle(name).spec
        if not spec.log_path.exists():
            return {}
        log = EventLog.open(spec.log_path, readonly=True)
        store = SessionStore(
            self.config.window.window_size,
            self.config.window.min_gap,
            capacity=max(len(log.users()), 1),
            history_provider=self.history_provider(),
            event_source=log.events_for,
        )
        targets = log.users() if users is None else users
        return {user: store.get(user).state_fingerprint() for user in targets}

    def _restart(self, handle: WorkerHandle) -> None:
        """FAILED → respawn → prove WAL replay bit-identical → readmit."""
        with self._lock:
            handle.state = FAILED
        self._stop_worker(handle, graceful=False)
        expected = self.expected_fingerprints(handle.name)
        self._spawn(handle)
        with self._lock:
            handle.state = PENDING  # not routable until verified
        try:
            self._await_ready_unrouted(handle)
        except ServingError:
            with self._lock:
                handle.state = FAILED
            logger.error("%s: restart failed to come up", handle.name)
            return
        client = ServingClient(
            handle.url or "",
            timeout=max(self.heartbeat_timeout_s, 5.0),
            retries=2,
        )
        for user, fingerprint in expected.items():
            rebuilt = client.state(user)["fingerprint"]
            if rebuilt != fingerprint:
                with self._lock:
                    handle.state = FAILED
                logger.error(
                    "%s: rehydrated state for user %d diverged "
                    "(expected %s, got %s) — shard stays FAILED",
                    handle.name, user, fingerprint, rebuilt,
                )
                return
        with self._lock:
            handle.state = RUNNING
            handle.misses = 0
            handle.restarts += 1
        logger.info(
            "%s: restarted and readmitted (%d user fingerprint(s) verified, "
            "restart #%d)", handle.name, len(expected), handle.restarts,
        )

    def _await_ready_unrouted(self, handle: WorkerHandle) -> None:
        """Like :meth:`_await_ready` but leaves the state PENDING."""
        deadline = time.monotonic() + self.start_timeout_s
        while time.monotonic() < deadline:
            if handle.process is not None and not handle.process.is_alive():
                raise ServingError(
                    f"shard {handle.name} exited during restart"
                )
            endpoint = read_endpoint(handle.spec.endpoint_path)
            if endpoint is not None:
                url = str(endpoint["url"])
                client = ServingClient(
                    url, timeout=self.heartbeat_timeout_s, retries=0
                )
                if client.health():
                    with self._lock:
                        handle.url = url
                    return
            time.sleep(0.02)
        raise ServingError(f"shard {handle.name} restart timed out")

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def kill_shard(self, name: str) -> int:
        """SIGKILL the live worker (hard crash); returns the killed pid.

        The monitor notices the dead process on its next tick and
        drives the WAL-replay restart; callers who want immediate
        reaction can follow up with :meth:`report_failure`.
        """
        pid = self.pid_of(name)
        os.kill(pid, signal.SIGKILL)
        self._wake.set()
        return pid

    # ------------------------------------------------------------------
    # Draining / rebalancing
    # ------------------------------------------------------------------
    def drain(self, name: str) -> Dict[str, object]:
        """Retire ``name``: migrate its users onto the survivors.

        Steps: mark DRAINING (the router degrades its users meanwhile),
        stop the worker gracefully (seals its WAL), shrink the ring,
        replay the shard's committed events into the new owners in
        global order (per-user order is thereby preserved, and each
        append carries an idempotency seq), then verify every migrated
        user's fingerprint on its new owner. Returns a migration report.
        """
        handle = self._handle(name)
        with self._lock:
            if len(self.ring) < 2:
                raise ServingError(
                    "cannot drain the last shard on the ring"
                )
            if handle.state not in (RUNNING, DEGRADED):
                raise ServingError(
                    f"shard {name!r} is {handle.state}, not drainable"
                )
            handle.state = DRAINING
        self._stop_worker(handle, graceful=True)
        expected = self.expected_fingerprints(name)
        new_ring = self.ring.without(name)
        moved: Dict[str, List[int]] = {}
        if handle.spec.log_path.exists():
            log = EventLog.open(handle.spec.log_path, readonly=True)
            clients: Dict[str, ServingClient] = {}
            for event in log.events():
                owner = new_ring.owner(event.user)
                client = clients.get(owner)
                if client is None:
                    client = clients[owner] = ServingClient(
                        self.url_of(owner), timeout=30.0, retries=3
                    )
                client.ingest(event.user, event.item)
                moved.setdefault(owner, []).append(event.user)
        # Swap the ring only after the migration is fully applied: until
        # here the drained users resolve to the DRAINING shard (no url),
        # so the router held their writes instead of racing the replay.
        with self._lock:
            self.ring = new_ring
            handle.state = STOPPED
        mismatches = []
        for owner, users in moved.items():
            client = ServingClient(self.url_of(owner), timeout=30.0, retries=3)
            for user in sorted(set(users)):
                if client.state(user)["fingerprint"] != expected[user]:
                    mismatches.append((owner, user))
        if mismatches:
            raise ServingError(
                f"drain of {name!r} migrated users with diverged state: "
                f"{mismatches}"
            )
        report = {
            "drained": name,
            "migrated_events": sum(len(u) for u in moved.values()),
            "migrated_users": sorted(
                {user for users in moved.values() for user in users}
            ),
            "new_owners": {o: sorted(set(u)) for o, u in moved.items()},
        }
        logger.info("drained %s: %s", name, report)
        return report
