"""Fault-tolerant sharded serving: ring, workers, supervisor, router.

Scales the single-node serving stack (:mod:`repro.serving`) across N
worker processes while keeping its correctness contract — bit-identical
session state, WAL-backed durability — *per shard*:

* :mod:`repro.cluster.ring` — consistent hashing of users onto shards
  (:class:`HashRing`), deterministic and minimal-movement.
* :mod:`repro.cluster.worker` — the per-shard process entry point
  (:func:`run_worker`): a private session store + event log + HTTP
  listener, publishing its endpoint atomically.
* :mod:`repro.cluster.supervisor` — :class:`ShardSupervisor`:
  heartbeat monitoring, crash detection, WAL-replay restarts proven
  bit-identical via state fingerprints before ring readmission, and
  drain/rebalance by event migration.
* :mod:`repro.cluster.router` — :class:`ClusterRouter`: the single
  front-end address; forwards with timeouts + idempotent retries,
  merges ``/metrics`` exactly, and degrades ``/recommend`` to the
  Recency baseline while a shard restarts instead of erroring.
"""

from repro.cluster.ring import HashRing, moved_users
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import (
    DEGRADED,
    DRAINING,
    FAILED,
    PENDING,
    RUNNING,
    STOPPED,
    ShardSupervisor,
    WorkerHandle,
)
from repro.cluster.worker import WorkerSpec, read_endpoint, run_worker

__all__ = [
    "DEGRADED",
    "DRAINING",
    "FAILED",
    "PENDING",
    "RUNNING",
    "STOPPED",
    "ClusterRouter",
    "HashRing",
    "ShardSupervisor",
    "WorkerHandle",
    "WorkerSpec",
    "moved_users",
    "read_endpoint",
    "run_worker",
]
