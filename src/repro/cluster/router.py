"""The cluster front-end: one address, N shards, graceful degradation.

:class:`ClusterRouter` mounts the *same* HTTP surface as a single
:class:`~repro.serving.server.RecommendServer` — ``/events``,
``/recommend``, ``/metrics``, ``/healthz``, ``/state`` — so a
:class:`~repro.serving.client.ServingClient` cannot tell a cluster from
one node. Per route:

* ``/events`` and ``/recommend`` forward to the shard owning the user
  (consistent hashing via the supervisor's ring), with per-request
  timeouts and bounded-backoff retries. A failed forward is reported to
  the supervisor (:meth:`ShardSupervisor.report_failure`), accelerating
  failure detection beyond the heartbeat cadence.
* While the owning shard is down (restarting from its WAL, draining, or
  hung), the router **degrades instead of erroring**:

  - ``/recommend`` answers immediately from the Recency baseline over
    the user's *base* history (live events unavailable until the shard
    returns) — the same score arithmetic and tie-breaking as
    :class:`~repro.models.recency.RecencyRecommender`, flagged
    ``degraded: true`` and counted in ``degraded_answers``;
  - ``/events`` *waits*: appends carrying an idempotency ``seq`` are
    retried against the recovering shard until
    ``event_retry_deadline_s`` — WAL replay typically completes well
    inside it — so no committed-then-lost writes and no duplicates.
    Appends without a ``seq`` are never blind-retried (they are not
    idempotent) and fail fast with 503.

* ``/metrics`` merges every reachable shard's snapshot with
  :func:`~repro.serving.metrics.merge_snapshots` — *exact*, because
  counters and integer-nanosecond histograms are associative — and adds
  the router's own counters plus per-shard supervisor states.
* ``/ring`` (router-only route) exposes the shard list and ring
  topology so smart clients can bypass the router and talk to shards
  directly.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.exceptions import ReproError, ServingError, ServingUnavailableError
from repro.logging_utils import get_logger
from repro.models.base import rank_top_k
from repro.models.recency import RecencyRecommender
from repro.serving.client import ServingClient
from repro.serving.state import SessionStore
from repro.serving.metrics import merge_snapshots
from repro.cluster.supervisor import ShardSupervisor

logger = get_logger("cluster.router")

#: Reject request bodies beyond this size (mirrors the shard servers).
MAX_BODY_BYTES = 1 << 20


class _RouterHandler(BaseHTTPRequestHandler):
    """Translate HTTP requests into shard forwards / local fallbacks."""

    #: Set by ClusterRouter before the server starts.
    router: "ClusterRouter"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            logger.debug("client disconnected before reply on %s", self.path)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ServingError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ServingError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict, name: str) -> int:
        if name not in payload:
            raise ServingError(f"missing required field {name!r}")
        try:
            return int(payload[name])
        except (TypeError, ValueError) as exc:
            raise ServingError(f"field {name!r} must be an integer") from exc

    def _answer(self, thunk) -> None:
        try:
            status, payload = thunk()
            self._send_json(status, payload)
        except ServingUnavailableError as exc:
            self._send_json(503, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            logger.warning("%s %s failed: %s", self.command, self.path, exc)
            self._send_json(500, {"error": str(exc)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/healthz":
            self._answer(lambda: (200, self.router.health_payload()))
        elif parsed.path == "/metrics":
            self._answer(lambda: (200, self.router.merged_metrics()))
        elif parsed.path == "/ring":
            self._answer(lambda: (200, self.router.ring_payload()))
        elif parsed.path == "/state":
            query = urllib.parse.parse_qs(parsed.query)

            def state() -> Tuple[int, dict]:
                if "user" not in query:
                    raise ServingError("missing required query param 'user'")
                try:
                    user = int(query["user"][0])
                except ValueError as exc:
                    raise ServingError(
                        "query param 'user' must be an integer"
                    ) from exc
                return 200, self.router.forward_state(user)

            self._answer(state)
        else:
            self._send_json(404, {"error": f"unknown route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/events":
            self._answer(lambda: (200, self.router.forward_event(self._read_json())))
        elif self.path == "/recommend":
            self._answer(
                lambda: (200, self.router.forward_recommend(self._read_json()))
            )
        else:
            self._send_json(404, {"error": f"unknown route {self.path}"})


class ClusterRouter:
    """HTTP front-end multiplexing one serving surface over the shards.

    Parameters
    ----------
    supervisor:
        The (started) :class:`ShardSupervisor` owning ring and workers.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.
    forward_timeout_s / forward_retries:
        Per-forward timeout and transient-failure retries.
    event_retry_deadline_s:
        How long an idempotent ``/events`` forward keeps retrying while
        the owning shard restarts before giving up with 503. Sized to
        comfortably cover a WAL-replay restart.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        forward_timeout_s: float = 30.0,
        forward_retries: int = 2,
        event_retry_deadline_s: float = 30.0,
    ) -> None:
        self.supervisor = supervisor
        self.forward_timeout_s = forward_timeout_s
        self.forward_retries = forward_retries
        self.event_retry_deadline_s = event_retry_deadline_s
        # Shard clients forward verbatim: the *end client* owns the
        # idempotency seqs, the router must not inject its own.
        self._clients: Dict[str, ServingClient] = {}
        self._clients_lock = threading.Lock()
        # Base-history-only sessions powering the degraded Recency
        # fallback; no event_source on purpose — while a shard is down
        # its live events are unreadable, and serving *base* Recency is
        # the documented degradation, not a correctness bug.
        self._fallback_store = SessionStore(
            supervisor.config.window.window_size,
            supervisor.config.window.min_gap,
            capacity=256,
            history_provider=supervisor.history_provider(),
        )
        self._default_k = supervisor.config.default_k
        self.counters: Dict[str, int] = {
            "router_events": 0,
            "router_recommends": 0,
            "degraded_answers": 0,
            "forward_failures": 0,
            "event_retry_waits": 0,
        }
        self._counter_lock = threading.Lock()
        handler = type("BoundRouterHandler", (_RouterHandler,), {"router": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClusterRouter":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-cluster-router",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "router on %s fronting %d shard(s)",
            self.url, len(self.supervisor.ring),
        )
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI path)."""
        logger.info("router on %s", self.url)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            logger.info("interrupted; shutting down")
        finally:
            self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _count(self, name: str, delta: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] += delta

    def _client_for(self, name: str, url: str) -> ServingClient:
        with self._clients_lock:
            client = self._clients.get(name)
            if client is None or client.base_url != url.rstrip("/"):
                client = ServingClient(
                    url,
                    timeout=self.forward_timeout_s,
                    retries=self.forward_retries,
                    track_seq=False,
                )
                self._clients[name] = client
        return client

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def forward_event(self, payload: dict) -> dict:
        """Route an append to the owning shard; wait out a restart.

        With an idempotency ``seq`` the forward is safe to retry, so
        unavailability (shard FAILED / restarting / hung) is absorbed by
        polling until ``event_retry_deadline_s``. Without a seq a retry
        could double-apply, so the first unavailability surfaces as 503.
        """
        user = _RouterHandler._field(payload, "user")
        item = _RouterHandler._field(payload, "item")
        seq = (
            _RouterHandler._field(payload, "seq")
            if "seq" in payload
            else None
        )
        self._count("router_events")
        deadline = time.monotonic() + self.event_retry_deadline_s
        waited = False
        while True:
            owner, url = self.supervisor.endpoint_for(user)
            if url is not None:
                client = self._client_for(owner, url)
                try:
                    position = client.ingest(
                        user, item, seq=seq,
                        timeout=self.forward_timeout_s,
                    )
                    return {
                        "user": user,
                        "item": item,
                        "position": position,
                        "shard": owner,
                    }
                except ServingUnavailableError:
                    self._count("forward_failures")
                    self.supervisor.report_failure(owner)
            if seq is None:
                raise ServingUnavailableError(
                    f"shard {owner} for user {user} is unavailable and the "
                    f"append carries no idempotency seq (cannot retry safely)"
                )
            if time.monotonic() >= deadline:
                raise ServingUnavailableError(
                    f"shard {owner} for user {user} did not recover within "
                    f"{self.event_retry_deadline_s:.1f}s"
                )
            if not waited:
                waited = True
                self._count("event_retry_waits")
            time.sleep(0.05)

    def forward_recommend(self, payload: dict) -> dict:
        """Route a query to the owning shard, or degrade to base Recency."""
        user = _RouterHandler._field(payload, "user")
        k = _RouterHandler._field(payload, "k") if "k" in payload else None
        deadline_ms = payload.get("deadline_ms")
        self._count("router_recommends")
        owner, url = self.supervisor.endpoint_for(user)
        if url is not None:
            client = self._client_for(owner, url)
            try:
                reply = client.recommend(
                    user, k=k, deadline_ms=deadline_ms,
                    timeout=self.forward_timeout_s,
                )
                reply["shard"] = owner
                return reply
            except ServingUnavailableError:
                self._count("forward_failures")
                self.supervisor.report_failure(owner)
        return self._degraded_recommend(user, k, owner)

    def _degraded_recommend(
        self, user: int, k: Optional[int], owner: str
    ) -> dict:
        """Recency over the base history — correct, just not live."""
        start = time.perf_counter()
        k = self._default_k if k is None else int(k)
        if k <= 0:
            raise ServingError(f"k must be positive, got {k}")
        if user < 0:
            raise ServingError(f"user must be non-negative, got {user}")
        with self._fallback_store.lock:
            session = self._fallback_store.get(user)
            t = session.t
            candidates = tuple(session.candidates())
            lasts = (
                session.last_positions(candidates) if candidates else None
            )
        if candidates:
            scores = RecencyRecommender.scores_from_last_positions(lasts, t)
            items = rank_top_k(
                candidates, scores, k, owner="cluster degraded fallback"
            )
        else:
            items = []
        self._count("degraded_answers")
        logger.debug(
            "user %d: shard %s down, served degraded base-Recency top-%d",
            user, owner, k,
        )
        return {
            "request_id": f"degraded-{owner}-{user}",
            "user": user,
            "t": t,
            "items": items,
            "degraded": True,
            "shard": owner,
            "latency_ms": round(1e3 * (time.perf_counter() - start), 3),
        }

    def forward_state(self, user: int) -> dict:
        """Route a state read; wait out a restart (reads are idempotent)."""
        deadline = time.monotonic() + self.event_retry_deadline_s
        while True:
            owner, url = self.supervisor.endpoint_for(user)
            if url is not None:
                client = self._client_for(owner, url)
                try:
                    reply = client.state(user, timeout=self.forward_timeout_s)
                    reply["shard"] = owner
                    return reply
                except ServingUnavailableError:
                    self._count("forward_failures")
                    self.supervisor.report_failure(owner)
            if time.monotonic() >= deadline:
                raise ServingUnavailableError(
                    f"shard {owner} for user {user} did not recover within "
                    f"{self.event_retry_deadline_s:.1f}s"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        """Router liveness plus the supervisor's shard states."""
        states = self.supervisor.states()
        return {
            "status": "ok",
            "shards": states,
            "running": sum(1 for s in states.values() if s == "RUNNING"),
        }

    def ring_payload(self) -> dict:
        """Topology for smart clients that want to talk to shards directly."""
        ring = self.supervisor.ring
        states = self.supervisor.states()
        endpoints = {}
        for name in ring.shards:
            try:
                endpoints[name] = self.supervisor.url_of(name)
            except ServingError:
                endpoints[name] = None
        return {
            "shards": list(ring.shards),
            "vnodes": ring.vnodes,
            "states": states,
            "endpoints": endpoints,
        }

    def merged_metrics(self) -> dict:
        """Exact cluster-wide snapshot: shard merges + router counters.

        Unreachable shards are skipped (and listed), not errors — the
        merge is over whoever answered, which is still exact for them
        because histogram/counter merging is associative.
        """
        snapshots = []
        unreachable = []
        for name in self.supervisor.ring.shards:
            try:
                url = self.supervisor.url_of(name)
                snapshots.append(
                    self._client_for(name, url).metrics(
                        timeout=self.forward_timeout_s
                    )
                )
            except (ServingError, ServingUnavailableError):
                unreachable.append(name)
        merged = merge_snapshots(snapshots) if snapshots else {}
        with self._counter_lock:
            router_counters = dict(self.counters)
        merged["router"] = {
            "counters": router_counters,
            "shard_states": self.supervisor.states(),
            "shards_reporting": len(snapshots),
            "shards_unreachable": unreachable,
        }
        return merged
