"""The batch-scoring engine.

The seed evaluation walk answered one ``(user, t)`` query at a time,
rebuilding the window, the Ω-filter, and every behavioural feature from
scratch per query. This package holds the machinery that removes that
per-query cost while staying *bit-identical* to the per-query reference
path:

* :class:`~repro.engine.query.Query` — the unit of the batch-scoring
  API: one ``(t, candidates, truth)`` scoring request.
* :class:`~repro.engine.session.ScoringSession` — a forward walk over
  one user's sequence maintaining the window multiset, the Ω-recency
  multiset, and per-item last-occurrence state with O(1) updates per
  step.
* :class:`~repro.engine.features.SessionFeatureMatrix` — vectorized
  construction of the behavioural feature matrix ``f_uvt`` from session
  state, reproducing each extractor's scalar arithmetic exactly.
* :class:`~repro.engine.packed.PackedCandidateBatch` — contiguous
  cu_seqlens-style candidate storage for the serving layer's
  continuously batched (in-flight) scoring loop.

Models consume these through
:meth:`repro.models.base.Recommender.score_batch`; the evaluation
protocol (:mod:`repro.evaluation.protocol`) builds the queries and can
shard users across a process pool (``workers=N``).
"""

from repro.engine.query import Query, iter_queries_in_order
from repro.engine.session import (
    ScoringSession,
    fingerprint_history,
    fingerprint_state,
)
from repro.engine.features import SessionFeatureMatrix, fast_fillers
from repro.engine.packed import PackedCandidateBatch

__all__ = [
    "PackedCandidateBatch",
    "Query",
    "ScoringSession",
    "SessionFeatureMatrix",
    "fast_fillers",
    "fingerprint_history",
    "fingerprint_state",
    "iter_queries_in_order",
]
