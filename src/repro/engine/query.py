"""The unit of the batch-scoring API.

A :class:`Query` names one scoring request: rank ``candidates`` at
position ``t`` of some user's sequence. The evaluation protocol attaches
the ground-truth item so hit counting needs no second pass; serving-side
callers leave ``truth`` as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class Query:
    """One scoring request at position ``t``.

    Attributes
    ----------
    t:
        The 0-based sequence position being recommended for; scoring may
        only consult history strictly before ``t``.
    candidates:
        Candidate item indices, in the order scores are returned. The
        evaluation protocol always passes them sorted ascending, which
        fixes tie-breaking.
    truth:
        Optional ground-truth item (the actual consumption at ``t``),
        carried for hit counting.
    """

    t: int
    candidates: Tuple[int, ...]
    truth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.t < 0:
            raise EvaluationError(f"query position must be >= 0, got {self.t}")
        if not isinstance(self.candidates, tuple):
            object.__setattr__(self, "candidates", tuple(self.candidates))

    def __len__(self) -> int:
        return len(self.candidates)


def as_queries(
    targets: Sequence[Tuple[int, Sequence[int]]],
) -> List[Query]:
    """Wrap legacy ``(t, candidates)`` pairs as :class:`Query` objects."""
    return [Query(t=t, candidates=tuple(candidates)) for t, candidates in targets]


def iter_queries_in_order(
    queries: Sequence[Query],
) -> Iterator[Tuple[int, Query]]:
    """Yield ``(original_index, query)`` in non-decreasing ``t`` order.

    Batch kernels walk a forward-only :class:`ScoringSession`, so they
    must visit queries in time order; this helper lets them accept
    arbitrarily ordered input while returning scores in input order.
    The sort is stable, so equal-``t`` queries keep their input order.
    """
    order = sorted(range(len(queries)), key=lambda index: queries[index].t)
    for index in order:
        yield index, queries[index]
