"""Vectorized behavioural-feature construction from session state.

:meth:`BehavioralFeatureModel.matrix` fills the feature matrix with a
Python double loop — one ``extractor.value`` call per (item, feature),
each doing its own binary search or table lookup. That loop is the
single hottest part of TS-PPR's online scoring.
:class:`SessionFeatureMatrix` replaces it with one numpy gather or
arithmetic kernel per *feature column*, reading window state straight
from a :class:`~repro.engine.session.ScoringSession`.

Bit-identity contract: every fast path reproduces the extractor's
scalar arithmetic exactly —

* table features (item quality, reconsumption ratio) become gathers,
  which are exact;
* hyperbolic recency ``1/gap`` and familiarity ``count/length`` are
  single IEEE-754 divisions in both paths, hence identical;
* exponential recency keeps the scalar ``math.exp`` loop, because
  numpy's vectorized ``np.exp`` differs from libm by ulps (verified on
  this BLAS/numpy build) and would silently change rankings;
* extractors without a fast path fall back to the per-item scalar loop
  over a materialized :class:`WindowView`, so custom registered
  features keep working unchanged.

``tests/test_engine.py`` asserts the matrix equality feature by
feature against :meth:`BehavioralFeatureModel.matrix`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.engine.session import ScoringSession
from repro.exceptions import FeatureError
from repro.features.base import FeatureExtractor
from repro.features.dynamic import DynamicFamiliarityFeature, RecencyFeature
from repro.features.static import ItemQualityFeature, ReconsumptionRatioFeature
from repro.features.vectorizer import BehavioralFeatureModel

#: Fills one feature column for the given candidate items. ``items``
#: is the int64 array form, ``keys`` the same items as a Python list —
#: gather fillers index with the array, dict-lookup fillers iterate the
#: list; both are derived once per matrix call.
ColumnFiller = Callable[[ScoringSession, np.ndarray, List[int], np.ndarray], None]


def _table_filler(table: np.ndarray) -> ColumnFiller:
    """Gather from a fitted per-item lookup table (quality / ratio)."""
    # Scalar gathers over a Python list beat numpy fancy indexing at
    # typical candidate-set sizes (tens of items); the values are the
    # identical float64 doubles either way.
    values = table.tolist()
    size = table.size

    def fill(
        session: ScoringSession,
        items: np.ndarray,
        keys: List[int],
        out: np.ndarray,
    ) -> None:
        if keys and (min(keys) < 0 or max(keys) >= size):
            raise FeatureError(
                f"item outside fitted vocabulary of size {size}"
            )
        out[:] = [values[key] for key in keys]

    return fill


def _hyperbolic_recency_filler(
    session: ScoringSession,
    items: np.ndarray,
    keys: List[int],
    out: np.ndarray,
) -> None:
    """``c_vt = 1 / (t - l_ut(v))``, 0 for never-consumed items.

    Scalar IEEE-754 division, exactly as the extractor computes it;
    a Python loop at candidate-set sizes beats the numpy mask dance.
    """
    t = session.t
    out[:] = [
        1.0 / (t - last) if last >= 0 else 0.0
        for last in session.last_positions_list(keys)
    ]


def _exponential_recency_filler(
    session: ScoringSession,
    items: np.ndarray,
    keys: List[int],
    out: np.ndarray,
) -> None:
    """``c_vt = e^{-gap}`` via scalar libm exp (see module docstring)."""
    import math

    t = session.t
    exp = math.exp
    out[:] = [
        exp(-(t - last)) if last >= 0 else 0.0
        for last in session.last_positions_list(keys)
    ]


def _familiarity_filler(
    session: ScoringSession,
    items: np.ndarray,
    keys: List[int],
    out: np.ndarray,
) -> None:
    """``m_vt = count_in_window / window_length`` (Eq 21)."""
    length = session.window_length()
    if length == 0:
        out[:] = 0.0
        return
    counts = session.window_counts_map()
    out[:] = [counts.get(key, 0) / length for key in keys]


def _fallback_filler(extractor: FeatureExtractor) -> ColumnFiller:
    """Scalar loop over a materialized window for custom extractors."""

    def fill(
        session: ScoringSession,
        items: np.ndarray,
        keys: List[int],
        out: np.ndarray,
    ) -> None:
        window = session.window_view()
        sequence = session.sequence
        t = session.t
        for row, item in enumerate(keys):
            out[row] = extractor.value(sequence, item, t, window)

    return fill


def _fast_filler_for(extractor: FeatureExtractor) -> Optional[ColumnFiller]:
    if isinstance(extractor, (ItemQualityFeature, ReconsumptionRatioFeature)):
        return _table_filler(extractor.table)
    if isinstance(extractor, RecencyFeature):
        if extractor.kind == "hyperbolic":
            return _hyperbolic_recency_filler
        return _exponential_recency_filler
    if isinstance(extractor, DynamicFamiliarityFeature):
        return _familiarity_filler
    return None


def _filler_for(extractor: FeatureExtractor) -> ColumnFiller:
    fast = _fast_filler_for(extractor)
    if fast is not None:
        return fast
    return _fallback_filler(extractor)


def fast_fillers(
    feature_model: BehavioralFeatureModel,
) -> Optional[List[ColumnFiller]]:
    """Column fillers when *every* extractor has a vectorized fast path.

    Returns ``None`` as soon as one extractor would need the scalar
    fallback (custom registered features) — the fallback reads
    ``window_view()``/``.sequence``, which only :class:`ScoringSession`
    provides, so callers holding other session flavours (the serving
    stores) must keep the generic matrix path for those models. The
    online ISGD capture uses this to price a two-row feature diff in
    microseconds instead of a generic matrix build.
    """
    fillers: List[ColumnFiller] = []
    for name in feature_model.feature_names:
        fast = _fast_filler_for(feature_model.extractor(name))
        if fast is None:
            return None
        fillers.append(fast)
    return fillers


class SessionFeatureMatrix:
    """Builds ``f_uvt`` matrices for the candidates of session positions.

    Parameters
    ----------
    feature_model:
        A *fitted* :class:`BehavioralFeatureModel`; its extractor order
        defines the column order, exactly as in
        :meth:`BehavioralFeatureModel.matrix`.
    session:
        The walk supplying window state. The caller advances it; this
        object only reads.
    """

    __slots__ = ("session", "n_features", "_fillers")

    def __init__(
        self,
        feature_model: BehavioralFeatureModel,
        session: ScoringSession,
    ) -> None:
        feature_model.window_config  # raises NotFittedError when unfitted
        self.session = session
        extractors: List[FeatureExtractor] = [
            feature_model.extractor(name)
            for name in feature_model.feature_names
        ]
        self.n_features = len(extractors)
        self._fillers = [_filler_for(extractor) for extractor in extractors]

    def matrix(self, items: np.ndarray) -> np.ndarray:
        """Feature rows for ``items`` at the session's current position.

        Bit-identical to ``feature_model.matrix(sequence, items, t)``.
        """
        keys = items.tolist()
        rows = np.empty((items.size, self.n_features), dtype=np.float64)
        for column, fill in enumerate(self._fillers):
            fill(self.session, items, keys, rows[:, column])
        return rows
