"""Incremental window state for a forward walk over one sequence.

The seed path rebuilt ``W_{u,t-1}`` from scratch at every query — an
O(|W|) slice plus a Python counting loop per position, done once by the
protocol *and again* inside every window-consuming model. A
:class:`ScoringSession` pays that cost once at construction and then
maintains the same state with O(1) dictionary updates per step:

* the **window multiset** — per-item counts over the last ``window_size``
  consumptions (the paper's ``W_{u,t-1}``);
* the **Ω multiset** — per-item counts over the last ``min_gap``
  consumptions (the trivially-remembered exclusions of Section 5.1);
* **last occurrence** — ``l_ut(v)`` for every item seen since the
  session start, falling back to the sequence's binary-search index for
  items last seen before the start.

All accessors are defined to agree exactly with the reference helpers in
:mod:`repro.windows` (``window_before``, ``recent_items``,
``candidate_items``, ``iter_repeat_positions``); the engine tests assert
that equivalence position by position.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError
from repro.windows.window import WindowView


def fingerprint_state(
    user: int,
    t: int,
    window_size: int,
    min_gap: int,
    window_counts: Dict[int, int],
    recent_counts: Dict[int, int],
    last_pos: Dict[int, int],
) -> str:
    """Canonical sha256 digest of one user's window/Ω/recency state.

    The digest covers everything scoring can observe — position, window
    and Ω multisets, and per-item last occurrences — in sorted-key
    canonical form, so two sessions fingerprint equal iff they would
    answer every state accessor identically. Shared by the offline
    :class:`ScoringSession` and the serving layer's live sessions, which
    lets the equivalence and crash-recovery suites compare the two with
    a single string comparison.
    """
    digest = hashlib.sha256()
    digest.update(
        f"v1|{user}|{t}|{window_size}|{min_gap}".encode("ascii")
    )
    for label, mapping in (
        ("w", window_counts),
        ("r", recent_counts),
        ("l", last_pos),
    ):
        digest.update(f"|{label}".encode("ascii"))
        for key in sorted(mapping):
            digest.update(f"|{key}:{mapping[key]}".encode("ascii"))
    return digest.hexdigest()


def fingerprint_history(
    user: int,
    items: np.ndarray,
    window_size: int,
    min_gap: int,
) -> str:
    """:func:`fingerprint_state` of the state *after* a full history.

    Derives the three state mappings directly from the item array —
    window counts over the last ``window_size`` entries, Ω counts over
    the last ``min_gap``, and the global last position of every distinct
    item (one reversed ``np.unique`` pass) — and digests them. Equals
    ``ScoringSession(sequence, window_size, min_gap,
    start=len(sequence)).state_fingerprint()`` by construction; the
    history stores use it as their canonical per-user digest so every
    store/session representation fingerprints identically.
    """
    array = np.asarray(items, dtype=np.int64)
    t = int(array.size)
    window_counts: Dict[int, int] = {}
    for item in array[max(0, t - window_size):].tolist():
        window_counts[item] = window_counts.get(item, 0) + 1
    recent_counts: Dict[int, int] = {}
    if min_gap > 0:
        for item in array[max(0, t - min_gap):].tolist():
            recent_counts[item] = recent_counts.get(item, 0) + 1
    last_pos: Dict[int, int] = {}
    if t:
        distinct, reversed_index = np.unique(array[::-1], return_index=True)
        last_pos = {
            item: t - 1 - index
            for item, index in zip(
                distinct.tolist(), reversed_index.tolist()
            )
        }
    return fingerprint_state(
        user, t, window_size, min_gap, window_counts, recent_counts, last_pos
    )


class ScoringSession:
    """Forward-only window/Ω/recency state for one user's sequence.

    Parameters
    ----------
    sequence:
        The user's full consumption sequence.
    window_size:
        ``|W|`` — trailing consumptions forming the candidate window.
    min_gap:
        ``Ω`` — recent-consumption exclusion span. ``0`` disables the
        Ω-filter (used by models that need the window only, e.g. FPMC's
        basket).
    start:
        Initial position: the session state describes the window *before*
        ``start``. Window state construction is O(``window_size``)
        regardless of ``start`` (plus one O(|S_u|) array-to-list
        conversion of the items) — history older than the window is
        reached lazily through the sequence's occurrence index.
    """

    __slots__ = (
        "sequence",
        "window_size",
        "min_gap",
        "_items",
        "_items_list",
        "_t",
        "_window_counts",
        "_recent_counts",
        "_last_pos",
    )

    def __init__(
        self,
        sequence: ConsumptionSequence,
        window_size: int,
        min_gap: int = 0,
        start: int = 0,
    ) -> None:
        if window_size <= 0:
            raise DataError(f"window_size must be positive, got {window_size}")
        if min_gap < 0:
            raise DataError(f"min_gap must be non-negative, got {min_gap}")
        if not 0 <= start <= len(sequence):
            raise DataError(
                f"start {start} outside [0, {len(sequence)}] for user "
                f"{sequence.user}"
            )
        self.sequence = sequence
        self.window_size = window_size
        self.min_gap = min_gap
        self._items = sequence.items
        # Python ints for the walk: indexing a list is several times
        # faster than materializing numpy scalars position by position.
        self._items_list: List[int] = self._items.tolist()
        self._t = start

        window_counts: Dict[int, int] = {}
        for item in self._items_list[max(0, start - window_size) : start]:
            window_counts[item] = window_counts.get(item, 0) + 1
        recent_counts: Dict[int, int] = {}
        if min_gap > 0:
            for item in self._items_list[max(0, start - min_gap) : start]:
                recent_counts[item] = recent_counts.get(item, 0) + 1
        self._window_counts = window_counts
        self._recent_counts = recent_counts
        # Seeded with every occurrence before ``start`` in one forward
        # pass: enumerate overwrites, so the dict ends at each item's
        # last prefix position — the same value the sequence's
        # binary-search index would return. Items never seen at all
        # still miss and fall back to that index (returning -1).
        last_pos: Dict[int, int] = {}
        for position, item in enumerate(self._items_list[:start]):
            last_pos[item] = position
        self._last_pos = last_pos

    @classmethod
    def from_store(
        cls,
        store,
        user: int,
        window_size: int,
        min_gap: int = 0,
        start: int = 0,
    ) -> "ScoringSession":
        """A session over a user's history as held by a ``HistoryStore``.

        The walkable-history counterpart of
        :meth:`repro.store.base.HistoryStore.session` (which gives the
        *live*, appendable session): offline consumers — the evaluation
        protocol, feature builders — walk a fixed snapshot forward, so
        they take the store's (zero-copy) view and drive it exactly like
        any other sequence.
        """
        view = store.slice(user)
        if view is None:
            view = ConsumptionSequence(user, [])
        return cls(view, window_size, min_gap=min_gap, start=start)

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------
    @property
    def t(self) -> int:
        """Current position: state describes the window before ``t``."""
        return self._t

    def advance(self) -> None:
        """Consume the item at the current position and move to ``t+1``."""
        t = self._t
        items = self._items_list
        if t >= len(items):
            raise DataError(
                f"cannot advance past the end of user {self.sequence.user}'s "
                f"sequence (length {len(items)})"
            )
        item = items[t]
        self._last_pos[item] = t
        window_counts = self._window_counts
        window_counts[item] = window_counts.get(item, 0) + 1
        tail = t - self.window_size
        if tail >= 0:
            leaving = items[tail]
            remaining = window_counts[leaving] - 1
            if remaining:
                window_counts[leaving] = remaining
            else:
                del window_counts[leaving]
        if self.min_gap > 0:
            recent_counts = self._recent_counts
            recent_counts[item] = recent_counts.get(item, 0) + 1
            tail = t - self.min_gap
            if tail >= 0:
                leaving = items[tail]
                remaining = recent_counts[leaving] - 1
                if remaining:
                    recent_counts[leaving] = remaining
                else:
                    del recent_counts[leaving]
        self._t = t + 1

    def advance_to(self, t: int) -> None:
        """Advance until the state describes the window before ``t``."""
        if t < self._t:
            raise DataError(
                f"ScoringSession is forward-only: at {self._t}, asked for {t}"
            )
        while self._t < t:
            self.advance()

    # ------------------------------------------------------------------
    # Window state at the current position
    # ------------------------------------------------------------------
    def window_length(self) -> int:
        """Number of consumptions in the window before ``t``."""
        return min(self._t, self.window_size)

    def window_count(self, item: int) -> int:
        """Occurrences of ``item`` in the window before ``t``."""
        return self._window_counts.get(int(item), 0)

    def window_counts(self, items: np.ndarray) -> np.ndarray:
        """Window occurrence counts for many items; shape ``(n,)``."""
        counts = self._window_counts
        keys = items.tolist() if isinstance(items, np.ndarray) else items
        return np.array([counts.get(key, 0) for key in keys], dtype=np.int64)

    def window_counts_map(self) -> Dict[int, int]:
        """The live item → window-count dict. Treat as read-only."""
        return self._window_counts

    def distinct_window_items(self) -> List[int]:
        """Distinct window items, sorted ascending for determinism."""
        return sorted(self._window_counts)

    def candidates(self) -> List[int]:
        """The Ω-filtered RRC candidate set before ``t`` (sorted).

        Equals ``candidate_items(sequence, t, window_size, min_gap)``.
        """
        recent = self._recent_counts
        if recent:
            return sorted(
                [item for item in self._window_counts if item not in recent]
            )
        return sorted(self._window_counts)

    def last_position(self, item: int) -> int:
        """``l_ut(v)`` — last occurrence of ``item`` strictly before ``t``."""
        position = self._last_pos.get(int(item))
        if position is not None:
            return position
        return self.sequence.last_position_before(int(item), self._t)

    def last_positions_list(self, keys: List[int]) -> List[int]:
        """Last occurrences before ``t`` as a Python list (-1 if never)."""
        last_pos = self._last_pos
        lookup = self.sequence.last_position_before
        t = self._t
        return [
            last_pos[key] if key in last_pos else lookup(key, t)
            for key in keys
        ]

    def last_positions(self, items: np.ndarray) -> np.ndarray:
        """Last occurrences before ``t`` for many items (-1 if never)."""
        keys = items.tolist() if isinstance(items, np.ndarray) else items
        return np.array(self.last_positions_list(keys), dtype=np.int64)

    def is_target(self) -> bool:
        """Whether the consumption at the current ``t`` is an RRC target.

        True iff ``x_t`` repeats from the window (gap ≤ ``window_size``)
        and was not consumed within the last ``min_gap`` steps — exactly
        the filter of ``iter_repeat_positions``.
        """
        t = self._t
        if t >= len(self._items_list):
            return False
        last = self.last_position(self._items_list[t])
        if last < 0:
            return False
        gap = t - last
        return self.min_gap < gap <= self.window_size

    def state_fingerprint(self) -> str:
        """Canonical digest of the state before ``t`` (see
        :func:`fingerprint_state`).

        The constructor seeds ``_last_pos`` with every prefix occurrence
        and :meth:`advance` keeps it current, so the digest covers the
        full observable recency state, not just items touched since
        ``start``.
        """
        return fingerprint_state(
            self.sequence.user,
            self._t,
            self.window_size,
            self.min_gap,
            self._window_counts,
            self._recent_counts,
            self._last_pos,
        )

    def window_view(self) -> WindowView:
        """Materialize the current window as a :class:`WindowView`.

        O(``window_size``) — the escape hatch for custom feature
        extractors with no vectorized fast path.
        """
        t = self._t
        start = max(0, t - self.window_size)
        return WindowView(
            self.sequence.user, start, t, self._items[start:t]
        )

    def __repr__(self) -> str:
        return (
            f"ScoringSession(user={self.sequence.user}, t={self._t}, "
            f"window_size={self.window_size}, min_gap={self.min_gap})"
        )
