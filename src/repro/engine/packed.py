"""Packed candidate storage for continuously batched scoring.

The in-flight serving loop keeps many requests "in the batch" at once
and admits/retires them at every kernel boundary. Re-materializing each
request's candidate tuple per boundary would churn Python objects in
the hottest loop of the server; :class:`PackedCandidateBatch` instead
keeps every in-flight request's candidates as **rows of one contiguous
int64 buffer** with per-request offsets — the ``cu_seqlens`` layout of
variable-length batch kernels (each request ``i`` owns rows
``cu_seqlens[i]:cu_seqlens[i+1]``).

Admission appends rows at the write cursor (amortized O(1) per row,
doubling growth). Retirement is lazy: rows are only marked dead, and the
buffer is compacted — live rows copied front-to-back, preserving
admission order — once dead rows outnumber live ones, so admit/retire
cycles cost O(1) amortized per row rather than O(total) each.

The structure is deliberately model-agnostic: the serving loop slices a
request's row range out of the buffer to build the
:class:`~repro.engine.query.Query` objects it feeds
``recommend_batch`` (whose kernels walk a
:class:`~repro.engine.session.ScoringSession` and fill feature rows via
:class:`~repro.engine.features.SessionFeatureMatrix`), and reads
``live_rows`` for admission control and occupancy metrics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import EngineError

#: Initial row capacity of the packed buffer.
_INITIAL_CAPACITY = 256


class PackedCandidateBatch:
    """Candidate rows of the in-flight request set, packed contiguously.

    Keys are caller-chosen hashables (the service uses request ids). A
    key is *live* from :meth:`admit` until :meth:`retire`; its rows stay
    addressable for exactly that span.
    """

    __slots__ = ("_buffer", "_spans", "_end", "_live_rows")

    def __init__(self) -> None:
        self._buffer = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        #: key -> (start, length) into the buffer, in admission order
        #: (dict preserves insertion order; compaction rebuilds it).
        self._spans: Dict[object, Tuple[int, int]] = {}
        self._end = 0
        self._live_rows = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (admitted, not yet retired) requests."""
        return len(self._spans)

    def __contains__(self, key: object) -> bool:
        return key in self._spans

    @property
    def live_rows(self) -> int:
        """Total candidate rows currently owned by live requests."""
        return self._live_rows

    @property
    def dead_rows(self) -> int:
        """Rows of retired requests not yet reclaimed by compaction."""
        return self._end - self._live_rows

    def cu_seqlens(self) -> np.ndarray:
        """Cumulative row offsets of the live requests, admission order.

        ``cu_seqlens()[i]:cu_seqlens()[i+1]`` is request ``i``'s row
        range in :meth:`packed_candidates` — the standard variable-length
        batch layout. Length is ``len(self) + 1``; starts at 0.
        """
        lengths = [length for _, length in self._spans.values()]
        out = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=out[1:])
        return out

    def packed_candidates(self) -> np.ndarray:
        """Live candidate rows as one contiguous array, admission order."""
        if self.dead_rows:
            self._compact()
        return self._buffer[: self._end].copy()

    # ------------------------------------------------------------------
    # Admission / retirement
    # ------------------------------------------------------------------
    def admit(self, key: object, candidates: Sequence[int]) -> int:
        """Append ``candidates`` as ``key``'s rows; returns the row count."""
        if key in self._spans:
            raise EngineError(f"request {key!r} is already in the batch")
        rows = np.asarray(candidates, dtype=np.int64)
        length = int(rows.size)
        if self._end + length > self._buffer.size:
            self._grow(length)
        self._buffer[self._end : self._end + length] = rows
        self._spans[key] = (self._end, length)
        self._end += length
        self._live_rows += length
        return length

    def retire(self, key: object) -> int:
        """Release ``key``'s rows; returns the row count freed."""
        span = self._spans.pop(key, None)
        if span is None:
            raise EngineError(f"request {key!r} is not in the batch")
        length = span[1]
        self._live_rows -= length
        if self.dead_rows > self._live_rows:
            self._compact()
        return length

    def candidates_of(self, key: object) -> np.ndarray:
        """``key``'s candidate rows (a view — copy to retain past retire)."""
        try:
            start, length = self._spans[key]
        except KeyError:
            raise EngineError(f"request {key!r} is not in the batch") from None
        return self._buffer[start : start + length]

    def candidate_list_of(self, key: object) -> List[int]:
        """``key``'s candidates as plain Python ints.

        This is what the serving loop feeds
        :class:`~repro.engine.query.Query`: the kernels' dict lookups
        and ranking arithmetic see exactly the ints captured at submit
        time, so packing is invisible to scoring.
        """
        return self.candidates_of(key).tolist()

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    def _grow(self, incoming: int) -> None:
        """Compact away dead rows, then double until ``incoming`` fits."""
        if self.dead_rows:
            self._compact()
        capacity = max(self._buffer.size, _INITIAL_CAPACITY)
        while self._end + incoming > capacity:
            capacity *= 2
        if capacity != self._buffer.size:
            buffer = np.empty(capacity, dtype=np.int64)
            buffer[: self._end] = self._buffer[: self._end]
            self._buffer = buffer

    def _compact(self) -> None:
        """Copy live rows front-to-back, preserving admission order."""
        cursor = 0
        spans: Dict[object, Tuple[int, int]] = {}
        buffer = self._buffer
        for key, (start, length) in self._spans.items():
            if start != cursor:
                buffer[cursor : cursor + length] = buffer[
                    start : start + length
                ]
            spans[key] = (cursor, length)
            cursor += length
        self._spans = spans
        self._end = cursor

    def __repr__(self) -> str:
        return (
            f"PackedCandidateBatch(requests={len(self)}, "
            f"live_rows={self._live_rows}, dead_rows={self.dead_rows})"
        )
