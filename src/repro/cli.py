"""Command-line entry point for the experiment harness.

Usage::

    repro-experiments list
    repro-experiments run fig5 --scale fast
    repro-experiments run all --scale full --output results.txt

``run all`` executes every registered table/figure in id order and
concatenates the rendered outputs — the full EXPERIMENTS.md evidence run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.common import scale_by_name
from repro.experiments.registry import (
    available_experiments,
    run_experiment,
)
from repro.logging_utils import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Recommendation for "
            "Repeat Consumption from User Implicit Feedback' (ICDE 2017)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig5, table3) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        default="fast",
        choices=("smoke", "fast", "full"),
        help="run profile (default: fast)",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rendered output to this file",
    )
    run_parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="also archive each result as <id>.json under this directory",
    )
    run_parser.add_argument(
        "--verbose", action="store_true", help="log progress to stderr"
    )
    return parser


def _run(
    experiment_ids: List[str],
    scale_name: str,
    output: Optional[Path],
    json_dir: Optional[Path] = None,
) -> str:
    from repro.experiments.storage import save_result

    scale = scale_by_name(scale_name)
    blocks: List[str] = []
    for experiment_id in experiment_ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale)
        elapsed = time.perf_counter() - start
        blocks.append(result.render())
        blocks.append(f"[{experiment_id} completed in {elapsed:.1f}s at scale {scale.name}]")
        if json_dir is not None:
            save_result(result, json_dir)
    text = "\n\n".join(blocks)
    if output is not None:
        output.write_text(text + "\n")
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.verbose:
        enable_console_logging()
    experiment_ids = (
        available_experiments() if args.experiment == "all" else [args.experiment]
    )
    print(_run(experiment_ids, args.scale, args.output, args.json_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
