"""Command-line entry point for the experiment harness.

Usage::

    repro-experiments list
    repro-experiments run fig5 --scale fast
    repro-experiments run all --scale full --output results.txt
    repro-experiments run all --journal runs/journal.json --retries 2
    repro-experiments run all --journal runs/journal.json --resume
    repro-experiments serve --model recency --event-log runs/events.log
    repro-experiments replay --event-log runs/events.log
    repro-experiments tune serving --out profile.json --budget-s 60

``run all`` executes every registered table/figure in id order and
concatenates the rendered outputs — the full EXPERIMENTS.md evidence run.

Crash safety: with ``--journal`` the CLI records each experiment's
status (``pending/running/done/failed``) in an atomically-rewritten
journal file, retries failures (``--retries`` with exponential
``--retry-backoff``), keeps going past a failed experiment instead of
aborting the whole evidence run, prints a one-line summary on exit,
and returns a nonzero exit code iff anything remains failed.
``--resume`` skips experiments the journal already marks ``done`` —
rerun the same command after a crash and only unfinished work repeats.

``serve`` and ``replay`` mount the online serving layer
(:mod:`repro.serving.cli`, also installed standalone as ``repro-serve``):
``serve`` fits a model and answers live recommendation requests over
HTTP; ``replay`` rebuilds session state from an event log and prints the
per-user fingerprints a recovering server would reach.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import scale_by_name
from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.logging_utils import enable_console_logging, get_logger
from repro.resilience.journal import RunJournal
from repro.serving.cli import (
    add_cluster_arguments,
    add_replay_arguments,
    add_serve_arguments,
    run_cluster,
    run_replay,
    run_serve,
)
from repro.tuning.cli import add_tune_arguments, run_tune

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Recommendation for "
            "Repeat Consumption from User Implicit Feedback' (ICDE 2017)."
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help="console log level (debug, info, warning, error); implies "
        "logging to stderr",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    serve_parser = subparsers.add_parser(
        "serve", help="serve live recommendations over HTTP"
    )
    add_serve_arguments(serve_parser)
    replay_parser = subparsers.add_parser(
        "replay", help="rebuild serving state from an event log"
    )
    add_replay_arguments(replay_parser)
    cluster_parser = subparsers.add_parser(
        "cluster", help="run the sharded serving cluster behind one router"
    )
    add_cluster_arguments(cluster_parser)
    tune_parser = subparsers.add_parser(
        "tune",
        help="autotune serving/cluster/training knobs into a machine profile",
    )
    add_tune_arguments(tune_parser)

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig5, table3) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        default="fast",
        choices=("smoke", "fast", "full"),
        help="run profile (default: fast)",
    )
    run_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rendered output to this file",
    )
    run_parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="also archive each result as <id>.json under this directory",
    )
    run_parser.add_argument(
        "--journal",
        type=Path,
        default=None,
        help=(
            "track per-experiment status in this journal file; failures "
            "no longer abort the run and the exit code reflects them"
        ),
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the journal already marks done (requires --journal)",
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failed experiment up to N extra times (requires --journal)",
    )
    run_parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        help="base seconds to sleep between retries (doubles per attempt)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "evaluation worker processes (default: 1); accuracy results "
            "are bit-identical at any worker count"
        ),
    )
    run_parser.add_argument(
        "--fit-workers",
        type=int,
        default=1,
        help=(
            "training worker processes for the parallel feature-cache "
            "build (default: 1); learned parameters are bit-identical "
            "at any worker count"
        ),
    )
    run_parser.add_argument(
        "--verbose", action="store_true", help="log progress to stderr"
    )
    return parser


def _run_with_retries(
    experiment_id: str,
    scale,
    journal: RunJournal,
    retries: int,
    retry_backoff: float,
) -> Optional[ExperimentResult]:
    """One experiment under the journal: retry on failure, never raise.

    Returns ``None`` when every attempt failed (the journal keeps the
    last error and the attempt count).
    """
    for attempt in range(retries + 1):
        journal.mark(experiment_id, "running")
        try:
            result = run_experiment(experiment_id, scale)
        except Exception as exc:  # noqa: BLE001 - journaled + retried
            journal.mark(
                experiment_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            logger.warning(
                "experiment %s failed (attempt %d/%d): %s",
                experiment_id, attempt + 1, retries + 1, exc,
            )
            if attempt < retries and retry_backoff > 0:
                time.sleep(retry_backoff * (2 ** attempt))
        else:
            journal.mark(experiment_id, "done")
            return result
    return None


def _run(
    experiment_ids: List[str],
    scale_name: str,
    output: Optional[Path],
    json_dir: Optional[Path] = None,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.0,
    workers: int = 1,
    fit_workers: int = 1,
) -> Tuple[str, int]:
    """Run experiments; returns (rendered text, skipped count).

    Without a journal this keeps the historical contract: the first
    failure propagates. With one, failures are recorded/retried and the
    remaining experiments still run.
    """
    import dataclasses

    from repro.experiments.storage import save_result

    scale = scale_by_name(scale_name)
    if workers != 1 or fit_workers != 1:
        scale = dataclasses.replace(
            scale, workers=workers, fit_workers=fit_workers
        )
    blocks: List[str] = []
    n_skipped = 0
    total_elapsed = 0.0
    n_timed = 0
    for experiment_id in experiment_ids:
        if (
            journal is not None
            and resume
            and journal.status_of(experiment_id) == "done"
        ):
            n_skipped += 1
            logger.info("skipping %s (journal: done)", experiment_id)
            continue
        start = time.perf_counter()
        if journal is None:
            result = run_experiment(experiment_id, scale)
        else:
            result = _run_with_retries(
                experiment_id, scale, journal, retries, retry_backoff
            )
            if result is None:
                continue
        elapsed = time.perf_counter() - start
        total_elapsed += elapsed
        n_timed += 1
        blocks.append(result.render())
        blocks.append(f"[{experiment_id} completed in {elapsed:.1f}s at scale {scale.name}]")
        if json_dir is not None:
            save_result(result, json_dir)
    if n_timed:
        blocks.append(
            f"[timing: {n_timed} experiment(s) in {total_elapsed:.1f}s "
            f"(scale {scale.name}, workers {scale.workers}, "
            f"fit-workers {scale.fit_workers})]"
        )
    text = "\n\n".join(blocks)
    if output is not None:
        output.write_text(text + "\n")
    return text, n_skipped


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        try:
            enable_console_logging(args.log_level)
        except ValueError as exc:
            parser.error(str(exc))
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.command == "serve":
        return run_serve(args)
    if args.command == "replay":
        return run_replay(args)
    if args.command == "cluster":
        return run_cluster(args)
    if args.command == "tune":
        return run_tune(args)

    if args.resume and args.journal is None:
        parser.error("--resume requires --journal")
    if args.retries and args.journal is None:
        parser.error("--retries requires --journal")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.fit_workers < 1:
        parser.error(f"--fit-workers must be >= 1, got {args.fit_workers}")

    if args.verbose:
        enable_console_logging()
    experiment_ids = (
        available_experiments() if args.experiment == "all" else [args.experiment]
    )
    journal = (
        RunJournal.load(args.journal) if args.journal is not None else None
    )
    text, n_skipped = _run(
        experiment_ids,
        args.scale,
        args.output,
        args.json_dir,
        journal=journal,
        resume=args.resume,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        workers=args.workers,
        fit_workers=args.fit_workers,
    )
    print(text)
    if journal is not None:
        counts = journal.counts()
        print(
            f"journal: {counts['done']} done, {counts['failed']} failed, "
            f"{n_skipped} skipped"
        )
        if counts["failed"]:
            for experiment_id in journal.failed_ids():
                entry = journal.entry(experiment_id)
                print(
                    f"  failed: {experiment_id} after {entry.attempts} "
                    f"attempt(s): {entry.error}",
                    file=sys.stderr,
                )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
