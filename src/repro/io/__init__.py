"""Model persistence.

Fitted recommenders are plain numpy arrays plus a little configuration,
so they serialize to a directory holding an ``npz`` archive and a JSON
manifest. :func:`~repro.io.model_store.save_model` /
:func:`~repro.io.model_store.load_model` round-trip TS-PPR (RRC and
novel variants), PPR, FPMC, and Pop; the stateless baselines (Random,
Recency) need no persistence, and Survival/DYRC/STREC expose their own
small parameter sets through public attributes.
"""

from repro.io.model_store import load_model, save_model

__all__ = ["load_model", "save_model"]
