"""Saving and loading fitted recommenders.

Layout of a model directory::

    <dir>/manifest.json   model class, config, window, library version
    <dir>/arrays.npz      every numpy parameter array

Only the model parameters travel; the training split does not. A loaded
TS-PPR therefore needs its feature tables re-fitted — the manifest
stores the feature configuration, and :func:`load_model` accepts the
training split to rebuild them exactly (static features are pure
functions of the training prefixes, so the round trip is bit-exact).

Crash safety: both files are written atomically (temp + fsync +
rename), arrays first and manifest last, and the manifest records the
sha256 of ``arrays.npz`` — a crash mid-save can never leave a store
that loads as a half-written model, and torn/corrupt stores fail with
a clear :class:`~repro.exceptions.ModelError` at load time.
"""

from __future__ import annotations

import dataclasses
import io
import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import SplitDataset
from repro.exceptions import ModelError, NotFittedError
from repro.features.vectorizer import BehavioralFeatureModel
from repro.models.base import Recommender
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.ppr import PPRRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.novel.models import NovelTSPPRRecommender
from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    sha256_bytes,
    sha256_file,
)

#: Manifest schema version; bump on breaking layout changes.
#: v2 adds the ``arrays_sha256`` integrity checksum.
FORMAT_VERSION = 2

_SAVABLE = {
    "TSPPRRecommender": TSPPRRecommender,
    "NovelTSPPRRecommender": NovelTSPPRRecommender,
    "PPRRecommender": PPRRecommender,
    "FPMCRecommender": FPMCRecommender,
    "PopRecommender": PopRecommender,
}


def _config_to_dict(config: TSPPRConfig) -> Dict:
    payload = dataclasses.asdict(config)
    payload["feature_names"] = list(config.feature_names)
    return payload


def _config_from_dict(payload: Dict) -> TSPPRConfig:
    payload = dict(payload)
    payload["feature_names"] = tuple(payload["feature_names"])
    return TSPPRConfig(**payload)


def save_model(model: Recommender, directory: Union[str, Path]) -> Path:
    """Serialize a fitted model into ``directory`` (created if needed).

    Raises
    ------
    NotFittedError
        If the model has not been fitted.
    ModelError
        If the model class has no registered persistence layout.
    """
    if not model.is_fitted:
        raise NotFittedError(f"cannot save unfitted {type(model).__name__}")
    class_name = type(model).__name__
    if class_name not in _SAVABLE:
        raise ModelError(
            f"{class_name} has no persistence layout; savable: "
            f"{sorted(_SAVABLE)}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    window = model.window_config
    manifest: Dict = {
        "format_version": FORMAT_VERSION,
        "model_class": class_name,
        "window": {"window_size": window.window_size, "min_gap": window.min_gap},
    }
    arrays: Dict[str, np.ndarray] = {}

    if isinstance(model, (TSPPRRecommender, PPRRecommender, FPMCRecommender)):
        manifest["config"] = _config_to_dict(model.config)
    if isinstance(model, TSPPRRecommender):
        arrays["user_factors"] = model.user_factors_
        arrays["item_factors"] = model.item_factors_
        arrays["mappings"] = model.mappings_
        if isinstance(model, NovelTSPPRRecommender):
            manifest["popularity_biased_negatives"] = (
                model.popularity_biased_negatives
            )
    elif isinstance(model, PPRRecommender):
        arrays["user_factors"] = model.user_factors_
        arrays["item_factors"] = model.item_factors_
    elif isinstance(model, FPMCRecommender):
        manifest["use_user_term"] = model.use_user_term
        arrays["user_factors"] = model.user_factors_
        arrays["item_user_factors"] = model.item_user_factors_
        arrays["item_basket_factors"] = model.item_basket_factors_
        arrays["basket_item_factors"] = model.basket_item_factors_
    elif isinstance(model, PopRecommender):
        arrays["popularity"] = model._popularity  # noqa: SLF001 - own layout

    # Arrays first, manifest (with the arrays' checksum) last: the
    # manifest is the commit point, so a crash at any instant leaves
    # either a complete store or one that load_model rejects cleanly.
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    manifest["arrays_sha256"] = sha256_bytes(payload)
    atomic_write_bytes(directory / "arrays.npz", payload)
    atomic_write_json(directory / "manifest.json", manifest)
    return directory


def load_model(
    directory: Union[str, Path],
    split: Optional[SplitDataset] = None,
) -> Recommender:
    """Load a model saved by :func:`save_model`.

    Parameters
    ----------
    directory:
        The model directory.
    split:
        Required for TS-PPR variants: the training split used at save
        time, from which the static feature tables are re-fitted.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise ModelError(f"no manifest.json under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ModelError(
            f"corrupt manifest.json under {directory}: {exc}"
        ) from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {manifest.get('format_version')!r}"
        )
    class_name = manifest["model_class"]
    model_cls = _SAVABLE.get(class_name)
    if model_cls is None:
        raise ModelError(f"unknown model class {class_name!r} in manifest")

    window = WindowConfig(**manifest["window"])
    arrays_path = directory / "arrays.npz"
    if not arrays_path.exists():
        raise ModelError(f"no arrays.npz under {directory}")
    if sha256_file(arrays_path) != manifest.get("arrays_sha256"):
        raise ModelError(
            f"checksum mismatch on {arrays_path} — the store is torn "
            f"or corrupted"
        )
    try:
        with np.load(arrays_path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as exc:
        raise ModelError(f"unreadable arrays.npz under {directory}: {exc}") from exc

    if issubclass(model_cls, TSPPRRecommender):
        if split is None:
            raise ModelError(
                f"loading {class_name} requires the training split to "
                f"re-fit its static feature tables"
            )
        config = _config_from_dict(manifest["config"])
        if model_cls is NovelTSPPRRecommender:
            model = NovelTSPPRRecommender(
                config,
                popularity_biased_negatives=manifest[
                    "popularity_biased_negatives"
                ],
            )
        else:
            model = model_cls(config)
        model._feature_model = BehavioralFeatureModel(
            feature_names=config.feature_names,
            recency_kind=config.recency_kind,
        ).fit(split.train_dataset(), window)
        model.user_factors_ = arrays["user_factors"]
        model.item_factors_ = arrays["item_factors"]
        model.mappings_ = arrays["mappings"]
    elif model_cls is PPRRecommender:
        model = PPRRecommender(_config_from_dict(manifest["config"]))
        model.user_factors_ = arrays["user_factors"]
        model.item_factors_ = arrays["item_factors"]
    elif model_cls is FPMCRecommender:
        model = FPMCRecommender(
            _config_from_dict(manifest["config"]),
            use_user_term=manifest["use_user_term"],
        )
        model.user_factors_ = arrays["user_factors"]
        model.item_user_factors_ = arrays["item_user_factors"]
        model.item_basket_factors_ = arrays["item_basket_factors"]
        model.basket_item_factors_ = arrays["basket_item_factors"]
    else:  # PopRecommender
        model = PopRecommender()
        model._popularity = arrays["popularity"]  # noqa: SLF001

    model._window_config = window
    model._fitted = True
    return model
