"""The online recommendation service: ingest events, answer queries.

:class:`RecommendService` is the bridge between a fitted
:class:`~repro.models.base.Recommender` and live traffic. It owns three
moving parts:

* a :class:`~repro.serving.state.SessionStore` of live per-user
  window/Ω/recency state, updated O(1) per ingested event;
* an optional :class:`~repro.serving.events.EventLog` written
  write-ahead (the event is durable *before* it mutates session state),
  which makes crash recovery a pure replay;
* a scoring loop in one of two batching modes (``config.batching``):

  - ``"inflight"`` (default) — a **continuously fed packed batch**:
    admitted requests live as rows of a
    :class:`~repro.engine.packed.PackedCandidateBatch` (cu_seqlens-style
    offsets over one contiguous candidate buffer), and the loop
    *admits newly submitted requests and retires completed ones at
    every kernel boundary* — after each chunk of at most
    ``check_interval`` queries — instead of only between batches.
    Users take round-robin turns at the boundaries, so one slow
    multi-user batch can no longer stall every queued request
    (head-of-line blocking), and there is no fixed straggler wait:
    whatever is admitted is scored immediately.
  - ``"microbatch"`` — the drain-then-refill reference loop: requests
    are coalesced from the queue into batches (up to ``max_batch``,
    waiting at most ``max_wait_ms`` for stragglers), grouped by user,
    and fully drained before the next batch forms.

  Both modes answer each user group with
  :meth:`~repro.models.base.Recommender.recommend_batch` calls, so the
  engine's session-walk kernels amortize window and feature state
  across a user's requests exactly as they do offline.

Correctness contract: a request's position ``t`` and candidate set are
captured synchronously at submit time under the store lock, so whatever
shape the scoring loop produces — micro-batches, or packed rows admitted
and retired mid-batch — each request is answered from exactly the
history before its ``t``: recommendations are bit-identical to the
offline evaluation protocol, to the other batching mode, and independent
of batching, concurrency, or timing.

Deadlines degrade gracefully instead of failing: each request may carry
a deadline; when the model misses it (or the request expired while
queued), the service answers from the Recency baseline computed directly
from session state (same score arithmetic and tie-breaking as
:class:`~repro.models.recency.RecencyRecommender` — the fallback is a
real, well-defined recommender, just a cheaper one) and marks the
response degraded.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.engine.packed import PackedCandidateBatch
from repro.engine.query import Query
from repro.exceptions import ServingError
from repro.logging_utils import get_logger
from repro.models.base import Recommender, rank_top_k
from repro.models.recency import RecencyRecommender
from repro.serving.events import EventLog
from repro.serving.metrics import ServingMetrics
from repro.serving.state import SessionStore
from repro.tuning.defaults import defaults_for

logger = get_logger("serving.service")

#: Registry-declared serving knob defaults (one source of truth; see
#: ``repro.tuning.defaults``), consumed as ServiceConfig field defaults.
_KNOB_DEFAULTS = defaults_for("serving")


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one :class:`RecommendService`.

    Attributes
    ----------
    window:
        The RRC protocol parameters sessions are built with.
    default_k:
        Top-N size when a request does not specify one.
    batching:
        Scoring-loop mode: ``"inflight"`` (continuously fed packed
        batch, the default) or ``"microbatch"`` (drain-then-refill
        reference loop). Both produce bit-identical answers; they
        differ only in latency shape under load.
    max_batch:
        Micro-batch mode only: maximum requests coalesced into one
        scoring batch; ``max_batch=1`` disables micro-batching (the
        naive one-request-at-a-time loop the benchmark compares
        against).
    max_wait_ms:
        Micro-batch mode only: how long the batcher waits for
        stragglers after the first request of a batch arrives — a
        fixed cost paid by every batch.
    admission_wait_ms:
        In-flight mode only: upper bound of an optional *growth-gated*
        admission wait at the start of a busy period. When positive,
        the loop keeps admitting while the backlog is still growing (a
        burst arriving over the submitters' milliseconds coalesces into
        full per-user kernels instead of fragmenting) but stops the
        moment one poll sees no growth — so a lone calm-phase request
        waits about one poll (~0.5ms), never this bound. The default 0
        disables the gate entirely: the first request starts scoring
        immediately and the kernel's own duration coalesces the rest of
        a burst at the next boundary, which measures faster at every
        percentile unless kernels are much shorter than a burst's
        arrival spread. Once kernels are running, boundaries admit
        continuously with no waiting in either setting.
    max_inflight_rows:
        In-flight mode only: admission-control bound on the total
        candidate rows of the packed batch. Requests beyond it wait in
        the overflow queue (FIFO) until rows retire; a single oversized
        request is still admitted when the batch is empty, so no
        request can starve.
    check_interval:
        In-flight mode only: the kernel-boundary granularity — at most
        this many queries are scored per ``recommend_batch`` call
        before the loop re-checks admissions, retirements, and
        deadlines.
    manual_pump:
        When true, no background scoring thread is started; the loop
        only runs when :meth:`RecommendService.pump` (or
        :meth:`RecommendService.recommend`, which pumps for you) is
        called on the caller's thread. Deterministic single-threaded
        driving for tests and replay harnesses.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own;
        ``None`` disables deadlines (requests always wait for the
        model).
    n_items:
        Optional item-vocabulary bound; ingested events outside it are
        rejected before touching any state.
    online / online_lr / online_batch:
        Incremental model updates (``repro.online``): ``"off"`` keeps
        factors frozen (the default); ``"isgd"`` applies per-event SGD
        updates on the ingest path through an
        :class:`~repro.online.trainer.OnlineTrainer`, with the given
        learning rate and flush batch window. The live model stays
        bit-identical to a checkpoint+WAL-replay rebuild.
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    default_k: int = 10
    batching: str = str(_KNOB_DEFAULTS["batching"])
    max_batch: int = int(_KNOB_DEFAULTS["max_batch"])  # type: ignore[arg-type]
    max_wait_ms: float = float(_KNOB_DEFAULTS["max_wait_ms"])  # type: ignore[arg-type]
    admission_wait_ms: float = float(_KNOB_DEFAULTS["admission_wait_ms"])  # type: ignore[arg-type]
    max_inflight_rows: int = int(_KNOB_DEFAULTS["max_inflight_rows"])  # type: ignore[arg-type]
    check_interval: int = int(_KNOB_DEFAULTS["check_interval"])  # type: ignore[arg-type]
    manual_pump: bool = False
    default_deadline_ms: Optional[float] = None
    n_items: Optional[int] = None
    online: str = str(_KNOB_DEFAULTS["online"])
    online_lr: float = float(_KNOB_DEFAULTS["online_lr"])  # type: ignore[arg-type]
    online_batch: int = int(_KNOB_DEFAULTS["online_batch"])  # type: ignore[arg-type]

    def __post_init__(self) -> None:
        if self.default_k <= 0:
            raise ServingError(f"default_k must be positive, got {self.default_k}")
        if self.batching not in ("inflight", "microbatch"):
            raise ServingError(
                f"batching must be 'inflight' or 'microbatch', got "
                f"{self.batching!r}"
            )
        if self.online not in ("off", "isgd"):
            raise ServingError(
                f"online must be 'off' or 'isgd', got {self.online!r}"
            )
        if self.online_lr <= 0:
            raise ServingError(
                f"online_lr must be positive, got {self.online_lr}"
            )
        if self.online_batch < 1:
            raise ServingError(
                f"online_batch must be >= 1, got {self.online_batch}"
            )
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServingError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )
        if self.admission_wait_ms < 0:
            raise ServingError(
                f"admission_wait_ms must be non-negative, got "
                f"{self.admission_wait_ms}"
            )
        if self.max_inflight_rows < 1:
            raise ServingError(
                f"max_inflight_rows must be >= 1, got {self.max_inflight_rows}"
            )
        if self.check_interval < 1:
            raise ServingError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.default_deadline_ms is not None and self.default_deadline_ms < 0:
            raise ServingError(
                f"default_deadline_ms must be non-negative, got "
                f"{self.default_deadline_ms}"
            )


@dataclass(frozen=True)
class RecommendResult:
    """One answered recommend request."""

    request_id: str
    user: int
    t: int
    items: List[int]
    degraded: bool
    latency_s: float


class _PendingRequest:
    """A submitted request: captured query state plus a waitable slot."""

    __slots__ = (
        "request_id",
        "user",
        "t",
        "candidates",
        "k",
        "deadline",
        "lasts",
        "submitted",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self,
        request_id: str,
        user: int,
        t: int,
        candidates: tuple,
        k: int,
        deadline: Optional[float],
        lasts: Optional[np.ndarray],
    ) -> None:
        self.request_id = request_id
        self.user = user
        self.t = t
        self.candidates = candidates
        self.k = k
        self.deadline = deadline
        self.lasts = lasts
        self.submitted = time.monotonic()
        self._done = threading.Event()
        self._result: Optional[RecommendResult] = None
        self._error: Optional[BaseException] = None

    def resolve(self, items: List[int], degraded: bool) -> None:
        self._result = RecommendResult(
            request_id=self.request_id,
            user=self.user,
            t=self.t,
            items=items,
            degraded=degraded,
            latency_s=time.monotonic() - self.submitted,
        )
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> RecommendResult:
        if not self._done.wait(timeout):
            raise ServingError(
                f"request {self.request_id} timed out after {timeout}s"
            )
        if self._error is not None:
            raise ServingError(
                f"request {self.request_id} failed: {self._error}"
            ) from self._error
        assert self._result is not None
        return self._result


#: Queue sentinel telling the batching worker to exit.
_SHUTDOWN = object()

#: Poll period of the in-flight loop's growth-gated admission wait.
_COALESCE_POLL_S = 5e-4


class RecommendService:
    """Live recommendation service over a fitted recommender.

    Parameters
    ----------
    model:
        A fitted, *deterministic* recommender (scoring must be a pure
        function of the history — micro-batching reorders calls).
    store:
        The live session store. Wire its ``event_source`` to
        ``event_log.events_for`` so eviction rehydrates through the log.
    event_log:
        Optional write-ahead log; without one, ingested events survive
        only as long as the process (and eviction loses them).
    config:
        Operational knobs; defaults match the paper's protocol.
    online_trainer:
        Optional :class:`~repro.online.trainer.OnlineTrainer` over the
        *same* model. Every committed ingest is fed to it (pre-event
        session state, WAL seq) before being applied to the session;
        its metrics object becomes the service's, so online counters
        and gauges flow through ``/metrics`` unmodified. Required when
        ``config.online != "off"``
        (:func:`service_for_split` builds and catches it up for you).
    """

    def __init__(
        self,
        model: Recommender,
        store: SessionStore,
        event_log: Optional[EventLog] = None,
        config: Optional[ServiceConfig] = None,
        online_trainer: Optional[object] = None,
    ) -> None:
        config = config or ServiceConfig()
        if not model.is_fitted:
            raise ServingError("RecommendService requires a fitted model")
        if not model.deterministic:
            raise ServingError(
                "RecommendService requires a deterministic model: "
                "micro-batching reorders scoring calls"
            )
        if (
            store.window_size != config.window.window_size
            or store.min_gap != config.window.min_gap
        ):
            raise ServingError(
                f"store window ({store.window_size}, {store.min_gap}) does "
                f"not match service window ({config.window.window_size}, "
                f"{config.window.min_gap})"
            )
        if config.online != "off" and online_trainer is None:
            raise ServingError(
                f"config.online={config.online!r} requires an "
                f"online_trainer (service_for_split wires one)"
            )
        if online_trainer is not None and online_trainer.model is not model:
            raise ServingError(
                "online_trainer must wrap the service's own model "
                "instance — updates would otherwise go to a different "
                "copy of the factors"
            )
        self.model = model
        self.store = store
        self.event_log = event_log
        self.config = config
        self.online_trainer = online_trainer
        # One metrics object: adopting the trainer's keeps any catch-up
        # replay counters and merges online gauges through /metrics.
        self.metrics = (
            online_trainer.metrics
            if online_trainer is not None
            else ServingMetrics()
        )
        self._request_ids = itertools.count()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._closed = False
        # Serializes scoring-loop execution between the background
        # worker and manual pump() callers; all engine mutation happens
        # under it.
        self._pump_lock = threading.Lock()
        self._engine = (
            _InflightEngine(self) if config.batching == "inflight" else None
        )
        self._worker: Optional[threading.Thread] = None
        if not config.manual_pump:
            target = (
                self._inflight_loop
                if config.batching == "inflight"
                else self._batch_loop
            )
            self._worker = threading.Thread(
                target=target, name="repro-serving-batcher", daemon=True
            )
            self._worker.start()
        logger.info(
            "service started: model=%s window=(%d, %d) batching=%s "
            "max_batch=%d max_wait_ms=%.1f check_interval=%d",
            model.name or type(model).__name__,
            config.window.window_size,
            config.window.min_gap,
            config.batching,
            config.max_batch,
            config.max_wait_ms,
            config.check_interval,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self, user: int, item: int, client_seq: Optional[int] = None
    ) -> int:
        """Apply one consumption event; returns its sequence position.

        Write-ahead discipline: the event is committed to the log first,
        then applied to the live session. A crash between the two
        replays the logged event on restart; a crash before the log
        write leaves no trace anywhere — either way state stays exactly
        replayable.

        The session is materialized *before* the log write: rehydration
        replays every previously-logged event, so logging first and then
        letting ``store.get`` rebuild would apply the new event twice.

        ``client_seq`` makes retries idempotent: it is the index this
        event should take among the user's *live* events (0-based). A
        ``client_seq`` below the session's live-event count means the
        append already committed — the original position is returned
        without re-applying (the retried duplicate of a request whose
        reply was lost). The item must match the committed one; a
        mismatch means the client's counter diverged and raises. A
        ``client_seq`` beyond the live count is a gap (events lost
        client-side) and also raises. Assumes one writer per user —
        the cluster's consistent-hash routing guarantees exactly that.
        """
        user, item = int(user), int(item)
        if user < 0:
            raise ServingError(f"user must be non-negative, got {user}")
        if item < 0 or (
            self.config.n_items is not None and item >= self.config.n_items
        ):
            raise ServingError(
                f"item {item} outside the vocabulary "
                f"[0, {self.config.n_items})"
            )
        with self.store.lock:
            session = self.store.get(user)
            if client_seq is not None:
                client_seq = int(client_seq)
                if client_seq < 0:
                    raise ServingError(
                        f"client_seq must be non-negative, got {client_seq}"
                    )
                n_live = session.n_live_events
                if client_seq < n_live:
                    committed = (
                        self.event_log.events_for(user)[client_seq]
                        if self.event_log is not None
                        else None
                    )
                    if committed is not None and committed != item:
                        raise ServingError(
                            f"duplicate event for user {user} at live seq "
                            f"{client_seq} carries item {item}, but item "
                            f"{committed} is committed there"
                        )
                    self.metrics.inc("duplicate_events")
                    return session.t - n_live + client_seq
                if client_seq > n_live:
                    raise ServingError(
                        f"client_seq {client_seq} for user {user} skips "
                        f"ahead of the live stream (next is {n_live})"
                    )
            if self.event_log is not None:
                event = self.event_log.append(user, item)
                if self.online_trainer is not None:
                    # Committed to the WAL, not yet in the session: the
                    # trainer captures against the exact pre-event state
                    # a replay rebuild would reconstruct.
                    self.online_trainer.observe(
                        event.seq, user, item, session, ts=event.ts
                    )
            elif self.online_trainer is not None:
                self.online_trainer.observe_next(user, item, session)
            position = session.append(item)
        self.metrics.inc("events")
        return position

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def submit(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> _PendingRequest:
        """Enqueue one recommend request; returns a waitable handle.

        The query state (position, Ω-filtered candidates, and — when a
        deadline is set — the last-position vector the Recency fallback
        needs) is captured *now*, under the store lock; later ingests
        cannot leak into this request.
        """
        if self._closed:
            raise ServingError("service is closed")
        k = self.config.default_k if k is None else int(k)
        if k <= 0:
            raise ServingError(f"k must be positive, got {k}")
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        request_id = f"r{next(self._request_ids):08d}"
        with self.store.lock:
            session = self.store.get(int(user))
            t = session.t
            candidates = tuple(session.candidates())
            lasts = (
                session.last_positions(candidates)
                if deadline_ms is not None and candidates
                else None
            )
        deadline = (
            time.monotonic() + deadline_ms / 1e3
            if deadline_ms is not None
            else None
        )
        pending = _PendingRequest(
            request_id, int(user), t, candidates, k, deadline, lasts
        )
        self.metrics.inc("requests")
        if not candidates:
            # Nothing recommendable (cold user or everything Ω-excluded):
            # answer empty without occupying the scoring loop.
            self.metrics.inc("empty_candidate_requests")
            pending.resolve([], degraded=False)
            logger.debug(
                "request %s user=%d t=%d: empty candidate set",
                request_id, user, t,
            )
            return pending
        logger.debug(
            "request %s user=%d t=%d k=%d candidates=%d deadline_ms=%s",
            request_id, user, t, k, len(candidates), deadline_ms,
        )
        self._queue.put(pending)
        return pending

    def recommend(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = 60.0,
    ) -> RecommendResult:
        """Submit and wait: the synchronous request path.

        Under ``manual_pump`` there is no background worker, so this
        drives :meth:`pump` on the caller's thread until the queue is
        drained before waiting on the handle.
        """
        pending = self.submit(user, k, deadline_ms)
        if self.config.manual_pump:
            self.pump()
        result = pending.result(timeout)
        self.metrics.observe("request_latency", result.latency_s)
        self.metrics.inc("recommendations")
        return result

    def pump(self) -> int:
        """Run the scoring loop synchronously until no work remains.

        Drains every request currently queued (and, in in-flight mode,
        everything already admitted to the packed batch) on the
        *caller's* thread, then returns the number of requests
        completed. This is the single-step manual-pump contract: after
        ``pump()`` returns, every request submitted before the call has
        been resolved — identically in both batching modes, and whether
        or not a background worker is also running (the pump lock
        serializes them; work is completed exactly once).

        In in-flight mode the pump still advances one kernel boundary
        at a time — at most ``check_interval`` queries per model call,
        admitting and retiring between calls — so manual driving
        exercises the same loop shape as the background worker.
        """
        completed = 0
        if self.config.batching == "inflight":
            engine = self._engine
            assert engine is not None
            while True:
                with self._pump_lock:
                    sentinel, _ = self._drain_submissions(engine)
                    if sentinel:
                        # Not ours to consume: hand it back to the worker.
                        self._queue.put(_SHUTDOWN)
                    if engine.idle:
                        return completed
                    completed += engine.step()
        while True:
            with self._pump_lock:
                batch: List[_PendingRequest] = []
                while len(batch) < self.config.max_batch:
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if item is _SHUTDOWN:
                        # Not ours to consume: hand it back to the worker.
                        self._queue.put(item)
                        break
                    batch.append(item)  # type: ignore[arg-type]
                if not batch:
                    return completed
                completed += self._process_batch(batch)

    def step(
        self, user: int, item: int, k: Optional[int] = None
    ) -> Optional[RecommendResult]:
        """Replay primitive: recommend-if-target, then ingest ``item``.

        Mirrors one position of the offline evaluation walk — a
        recommendation is produced exactly when the incoming consumption
        is an RRC target with a non-empty candidate set (the
        ``collect_queries`` filter), *before* the event is applied.
        Used by the equivalence suite, the benchmark, and ``replay``.

        The contract is batching-mode independent: ``step`` observes the
        session *before* ingesting, the recommend request captures its
        query state at submit, and the call blocks until the answer is
        resolved — so interleaving steps with any scoring-loop mode
        (including ``manual_pump`` driving) replays the offline walk
        position for position.
        """
        with self.store.lock:
            session = self.store.get(int(user))
            is_target = session.is_next_target(int(item)) and bool(
                session.candidates()
            )
        result = self.recommend(user, k) if is_target else None
        self.ingest(user, item)
        return result

    # ------------------------------------------------------------------
    # Micro-batching worker (batching="microbatch")
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            head = self._queue.get()
            if head is _SHUTDOWN:
                return
            batch: List[_PendingRequest] = [head]  # type: ignore[list-item]
            drain_until = time.monotonic() + max_wait
            stop = False
            while len(batch) < self.config.max_batch:
                remaining = drain_until - time.monotonic()
                try:
                    nxt = (
                        self._queue.get_nowait()
                        if remaining <= 0
                        else self._queue.get(timeout=remaining)
                    )
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)  # type: ignore[arg-type]
            with self._pump_lock:
                self._process_batch(batch)
            if stop:
                return

    def _process_batch(self, batch: List[_PendingRequest]) -> int:
        now = time.monotonic()
        self.metrics.inc("batches")
        self.metrics.inc("batched_requests", len(batch))
        self.metrics.observe_gauge("queue_depth", self._queue.qsize())
        by_user: Dict[int, List[_PendingRequest]] = {}
        for pending in batch:
            self.metrics.observe("admission_wait", now - pending.submitted)
            by_user.setdefault(pending.user, []).append(pending)
        for user, group in by_user.items():
            try:
                self._score_user_group(user, group)
            except Exception as exc:  # noqa: BLE001 - reported per request
                self.metrics.inc("errors", len(group))
                logger.warning(
                    "scoring failed for user %d (%d request(s)): %s",
                    user, len(group), exc,
                )
                for pending in group:
                    pending.fail(exc)
        return len(batch)

    # ------------------------------------------------------------------
    # In-flight worker (batching="inflight")
    # ------------------------------------------------------------------
    def _inflight_loop(self) -> None:
        engine = self._engine
        assert engine is not None
        max_wait = self.config.admission_wait_ms / 1e3
        stop = False
        while True:
            if not stop and engine.idle:
                # Nothing in flight: block for the next submission
                # without holding the pump lock (a manual pump may run
                # concurrently and must not be blocked by our wait).
                head = self._queue.get()
                if head is _SHUTDOWN:
                    stop = True
                else:
                    with self._pump_lock:
                        engine.take(head)  # type: ignore[arg-type]
                    stop = self._coalesce_arrivals(engine, max_wait) or stop
            with self._pump_lock:
                sentinel, _ = self._drain_submissions(engine)
                stop = stop or sentinel
                if not engine.idle:
                    engine.step()
                    continue
            if stop:
                return

    def _coalesce_arrivals(
        self, engine: "_InflightEngine", max_wait: float
    ) -> bool:
        """Optional growth-gated admission wait at the start of a busy period.

        A no-op unless ``admission_wait_ms`` is positive. When enabled:
        a burst reaches the queue spread over the submitters'
        milliseconds, and starting a kernel on the first fraction of it
        fragments each user's burst across several model calls,
        re-paying the session walk per fragment — so on idle→busy the
        loop keeps admitting *while the backlog is still growing*,
        polling briefly, and starts scoring as soon as one poll sees no
        growth (or the bound is spent). A lone calm-phase request
        therefore waits one poll (~half a millisecond), never the full
        bound. Once the engine is busy, kernel boundaries admit
        continuously with no waiting in either setting: a burst landing
        mid-kernel is coalesced by the kernel's own duration. Returns
        True on shutdown.
        """
        if max_wait <= 0:
            return False
        deadline = time.monotonic() + max_wait
        stop = False
        seen = engine.n_inflight + len(engine.overflow)
        while not stop and time.monotonic() < deadline:
            time.sleep(_COALESCE_POLL_S)
            with self._pump_lock:
                stop, _ = self._drain_submissions(engine)
                size = engine.n_inflight + len(engine.overflow)
            if size == seen:
                break
            seen = size
        return stop

    def _drain_submissions(self, engine: "_InflightEngine"):
        """Move every queued submission into the engine.

        Returns ``(saw_shutdown, admitted)``: whether the shutdown
        sentinel was consumed, and how many requests were admitted.
        """
        stop = False
        admitted = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Requests already queued behind the sentinel were
                # submitted concurrently with close(); drain them too so
                # shutdown never strands a handle.
                stop = True
                continue
            engine.take(item)  # type: ignore[arg-type]
            admitted += 1
        return stop, admitted

    def _score_user_chunk(
        self,
        user: int,
        group: List[_PendingRequest],
        candidates_of: Callable[[_PendingRequest], List[int]],
    ) -> None:
        """One in-flight kernel: answer a chunk of one user's requests.

        ``candidates_of`` resolves a request's candidate row range out
        of the packed buffer; the resulting plain-int lists are exactly
        the candidates captured at submit, so the packed layout is
        invisible to the model.
        """
        now = time.monotonic()
        live: List[_PendingRequest] = []
        for pending in group:
            if pending.deadline is not None and now > pending.deadline:
                # Expired while queued/admitted: don't make it later
                # still — serve the cheap fallback immediately.
                self._resolve_fallback(pending, cause="queue_expired")
            else:
                live.append(pending)
        if not live:
            return
        with self.store.lock:
            sequence = self.store.get(user).sequence()
        queries = [
            Query(t=pending.t, candidates=candidates_of(pending))
            for pending in live
        ]
        max_k = max(pending.k for pending in live)
        start = time.perf_counter()
        ranked_lists = self.model.recommend_batch(sequence, queries, max_k)
        self.metrics.observe("scoring_latency", time.perf_counter() - start)
        finished = time.monotonic()
        for pending, ranked in zip(live, ranked_lists):
            if pending.deadline is not None and finished > pending.deadline:
                self._resolve_fallback(pending, cause="scoring_overrun")
            else:
                self.metrics.inc("scored_answers")
                pending.resolve(ranked[: pending.k], degraded=False)

    def _score_user_group(
        self, user: int, group: List[_PendingRequest]
    ) -> None:
        """Answer all of one user's requests with one batched model call."""
        self._score_user_chunk(
            user, group, lambda pending: list(pending.candidates)
        )

    def _resolve_fallback(self, pending: _PendingRequest, cause: str) -> None:
        """Answer from the Recency baseline computed off captured state.

        ``cause`` is either ``"queue_expired"`` (the deadline passed
        before the model was ever invoked for this request) or
        ``"scoring_overrun"`` (the model ran but finished too late);
        the two are counted separately so a saturated queue and a slow
        model are distinguishable in ``/metrics``.
        """
        self.metrics.inc("deadline_fallbacks")
        self.metrics.inc("fallback_answers")
        self.metrics.inc(f"fallbacks_{cause}")
        if pending.lasts is None:
            # Deadline-less requests never reach here, but stay safe.
            pending.resolve([], degraded=True)
            return
        scores = RecencyRecommender.scores_from_last_positions(
            pending.lasts, pending.t
        )
        items = rank_top_k(
            pending.candidates, scores, pending.k, owner="serving fallback"
        )
        logger.debug(
            "request %s user=%d t=%d: deadline missed (%s), served Recency "
            "fallback", pending.request_id, pending.user, pending.t, cause,
        )
        pending.resolve(items, degraded=True)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def state_fingerprint(self, user: int) -> str:
        """Digest of one user's live session state (rehydrates if needed)."""
        return self.store.state_fingerprint(int(user))

    def user_state(self, user: int) -> Dict[str, object]:
        """Position, live-event count, and fingerprint of one user.

        Served on ``/state``; the supervisor uses the fingerprint to
        prove a restarted shard rehydrated bit-identically before
        readmitting it, and clients use ``live_events`` to initialize
        their idempotency counters.
        """
        user = int(user)
        if user < 0:
            raise ServingError(f"user must be non-negative, got {user}")
        with self.store.lock:
            session = self.store.get(user)
            return {
                "user": session.user,
                "t": session.t,
                "live_events": session.n_live_events,
                "fingerprint": session.state_fingerprint(),
            }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Counters + latency histograms + session-cache stats, one dict."""
        return self.metrics.as_dict(self.store.counters.as_dict())

    def close(self) -> None:
        """Stop the batching worker, drain pending work, seal the log."""
        if self._closed:
            return
        self._closed = True
        if self._worker is not None:
            self._queue.put(_SHUTDOWN)
            self._worker.join(timeout=30.0)
        else:
            # Manual-pump services have no worker; flush whatever was
            # submitted so no handle is left hanging.
            self.pump()
        if self.online_trainer is not None:
            self.online_trainer.flush()
        if self.event_log is not None:
            self.event_log.close()
        logger.info("service closed")

    def __enter__(self) -> "RecommendService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _InflightEngine:
    """Mutable state of the continuously batched scoring loop.

    Not thread-safe on its own: the service serializes every call
    through its pump lock. Three structures cooperate:

    * ``batch`` — the :class:`~repro.engine.packed.PackedCandidateBatch`
      holding every admitted request's candidate rows contiguously;
    * ``queues`` — per-user FIFO queues of admitted requests, walked
      round-robin so each kernel boundary serves the next user in turn
      (one user's burst cannot monopolize the loop);
    * ``overflow`` — submissions held back by the ``max_inflight_rows``
      admission bound, re-examined (FIFO) at every boundary.
    """

    __slots__ = ("service", "config", "batch", "queues", "overflow",
                 "n_inflight")

    def __init__(self, service: "RecommendService") -> None:
        self.service = service
        self.config = service.config
        self.batch = PackedCandidateBatch()
        self.queues: "OrderedDict[int, Deque[_PendingRequest]]" = OrderedDict()
        self.overflow: Deque[_PendingRequest] = deque()
        self.n_inflight = 0

    @property
    def idle(self) -> bool:
        """True when nothing is admitted and nothing waits in overflow."""
        return self.n_inflight == 0 and not self.overflow

    def _fits(self, pending: _PendingRequest) -> bool:
        # An empty batch always admits — even a request wider than the
        # row budget — so admission control can never starve a request.
        if self.n_inflight == 0:
            return True
        rows = self.batch.live_rows + len(pending.candidates)
        return rows <= self.config.max_inflight_rows

    def _admit(self, pending: _PendingRequest) -> None:
        metrics = self.service.metrics
        metrics.observe(
            "admission_wait", time.monotonic() - pending.submitted
        )
        self.batch.admit(pending.request_id, pending.candidates)
        self.queues.setdefault(pending.user, deque()).append(pending)
        self.n_inflight += 1

    def _admit_overflow(self) -> None:
        while self.overflow and self._fits(self.overflow[0]):
            self._admit(self.overflow.popleft())

    def take(self, pending: _PendingRequest) -> None:
        """Admit a submission, or park it in overflow if rows are full.

        Earlier overflow entries keep priority: a new submission only
        admits directly when nothing is already waiting.
        """
        self._admit_overflow()
        if self.overflow or not self._fits(pending):
            self.overflow.append(pending)
        else:
            self._admit(pending)

    def step(self) -> int:
        """One kernel boundary; returns the number of requests completed.

        Picks the next user round-robin, scores at most
        ``check_interval`` of its queued requests with one model call,
        resolves them, retires their packed rows, and refills from
        overflow — so admission and retirement happen between every
        kernel, never only between full batches.
        """
        self._admit_overflow()
        if not self.queues:
            return 0
        service = self.service
        metrics = service.metrics
        metrics.observe_gauge("batch_occupancy_rows", self.batch.live_rows)
        metrics.observe_gauge("inflight_requests", self.n_inflight)
        metrics.observe_gauge(
            "queue_depth", service._queue.qsize() + len(self.overflow)
        )
        user = next(iter(self.queues))
        user_queue = self.queues[user]
        chunk: List[_PendingRequest] = []
        while user_queue and len(chunk) < self.config.check_interval:
            chunk.append(user_queue.popleft())
        if user_queue:
            self.queues.move_to_end(user)
        else:
            del self.queues[user]
        metrics.inc("batches")
        metrics.inc("batched_requests", len(chunk))
        try:
            service._score_user_chunk(
                user, chunk, lambda p: self.batch.candidate_list_of(p.request_id)
            )
        except Exception as exc:  # noqa: BLE001 - reported per request
            metrics.inc("errors", len(chunk))
            logger.warning(
                "scoring failed for user %d (%d request(s)): %s",
                user, len(chunk), exc,
            )
            for pending in chunk:
                pending.fail(exc)
        finally:
            for pending in chunk:
                self.batch.retire(pending.request_id)
            self.n_inflight -= len(chunk)
        return len(chunk)


def service_for_split(
    model: Recommender,
    split: SplitDataset,
    event_log: Optional[EventLog] = None,
    config: Optional[ServiceConfig] = None,
    capacity: int = int(_KNOB_DEFAULTS["capacity"]),  # type: ignore[arg-type]
    store: str = str(_KNOB_DEFAULTS["store"]),
    store_dir: Optional[str] = None,
    online_checkpoint_dir: Optional[str] = None,
) -> RecommendService:
    """Wire a service whose base histories are a split's training prefixes.

    The canonical online/offline topology: sessions start from
    ``split.train_sequence(user)`` and the held-out test suffix arrives
    as live events, so replaying it through :meth:`RecommendService.step`
    reproduces the offline evaluation protocol position for position.

    ``store`` selects the history backing: one of
    ``repro.store.STORE_KINDS`` (``"arena"`` — the default columnar
    session-memory arena, ``"arena-mmap"`` — the same columns persisted
    under ``store_dir`` and memory-mapped, ``"dict"`` — the Python
    dict/list reference), or ``"callable"`` for the legacy per-user
    fetch through ``split.train_sequence``. Every kind answers
    bit-identically; they differ in resident memory and rehydration
    cost (``BENCH_memory.json``).

    With ``config.online="isgd"`` an
    :class:`~repro.online.trainer.OnlineTrainer` is built over the
    model, restored from the newest checkpoint under
    ``online_checkpoint_dir`` (when given), and **caught up** on the
    recovered log before the service opens: every committed event is
    replayed through a throwaway session store — base histories only,
    never the serving store, so arena tails are not polluted — with
    events before the checkpoint cursor only advancing session state
    and later ones applying ISGD updates. The factors the service
    starts with are therefore bit-identical to the ones a never-crashed
    live trainer would hold.
    """
    config = config or ServiceConfig(n_items=split.n_items)

    def base_history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    if store == "callable":
        provider = base_history
    else:
        provider = split.history_store(
            kind=store, base="train", directory=store_dir
        )

    trainer = None
    if config.online != "off":
        from repro.online.trainer import OnlineTrainer
        from repro.resilience.checkpoint import CheckpointManager

        manager = (
            CheckpointManager(online_checkpoint_dir)
            if online_checkpoint_dir is not None
            else None
        )
        trainer = OnlineTrainer(
            model,
            learning_rate=config.online_lr,
            batch_window=config.online_batch,
            checkpoint_manager=manager,
        )
        trainer.load_latest()
        if event_log is not None and len(event_log) > 0:
            # Catch-up replay over a throwaway lossless store (capacity
            # covers every user, no eviction): session-state
            # trajectories are store-kind invariant, so capture sees
            # exactly the states the live trainer saw.
            catchup_store = SessionStore(
                config.window.window_size,
                config.window.min_gap,
                capacity=max(split.n_users, 1),
                history_provider=base_history,
            )
            trainer.replay(event_log.iter_events(), catchup_store)

    session_store = SessionStore(
        config.window.window_size,
        config.window.min_gap,
        capacity=capacity,
        history_provider=provider,
        event_source=(
            event_log.events_for if event_log is not None else None
        ),
    )
    return RecommendService(
        model,
        session_store,
        event_log=event_log,
        config=config,
        online_trainer=trainer,
    )
