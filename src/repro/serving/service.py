"""The online recommendation service: ingest events, answer queries.

:class:`RecommendService` is the bridge between a fitted
:class:`~repro.models.base.Recommender` and live traffic. It owns three
moving parts:

* a :class:`~repro.serving.state.SessionStore` of live per-user
  window/Ω/recency state, updated O(1) per ingested event;
* an optional :class:`~repro.serving.events.EventLog` written
  write-ahead (the event is durable *before* it mutates session state),
  which makes crash recovery a pure replay;
* a **micro-batching** scoring loop: concurrent recommend requests are
  coalesced from a queue into batches (up to ``max_batch``, waiting at
  most ``max_wait_ms`` for stragglers), grouped by user, and answered
  with one :meth:`~repro.models.base.Recommender.recommend_batch` call
  per user — so the engine's session-walk kernels amortize window and
  feature state across requests exactly as they do offline.

Correctness contract: a request's position ``t`` and candidate set are
captured synchronously at submit time under the store lock, so whatever
batch shape the queue produces, each request is answered from exactly
the history before its ``t`` — recommendations are bit-identical to the
offline evaluation protocol and independent of batching, concurrency,
or timing.

Deadlines degrade gracefully instead of failing: each request may carry
a deadline; when the model misses it (or the request expired while
queued), the service answers from the Recency baseline computed directly
from session state (same score arithmetic and tie-breaking as
:class:`~repro.models.recency.RecencyRecommender` — the fallback is a
real, well-defined recommender, just a cheaper one) and marks the
response degraded.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.exceptions import ServingError
from repro.logging_utils import get_logger
from repro.models.base import Recommender, rank_top_k
from repro.models.recency import RecencyRecommender
from repro.serving.events import EventLog
from repro.serving.metrics import ServingMetrics
from repro.serving.state import SessionStore

logger = get_logger("serving.service")


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one :class:`RecommendService`.

    Attributes
    ----------
    window:
        The RRC protocol parameters sessions are built with.
    default_k:
        Top-N size when a request does not specify one.
    max_batch:
        Maximum requests coalesced into one scoring batch;
        ``max_batch=1`` disables micro-batching (the naive
        one-request-at-a-time loop the benchmark compares against).
    max_wait_ms:
        How long the batcher waits for stragglers after the first
        request of a batch arrives.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own;
        ``None`` disables deadlines (requests always wait for the
        model).
    n_items:
        Optional item-vocabulary bound; ingested events outside it are
        rejected before touching any state.
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    default_k: int = 10
    max_batch: int = 64
    max_wait_ms: float = 2.0
    default_deadline_ms: Optional[float] = None
    n_items: Optional[int] = None

    def __post_init__(self) -> None:
        if self.default_k <= 0:
            raise ServingError(f"default_k must be positive, got {self.default_k}")
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServingError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )
        if self.default_deadline_ms is not None and self.default_deadline_ms < 0:
            raise ServingError(
                f"default_deadline_ms must be non-negative, got "
                f"{self.default_deadline_ms}"
            )


@dataclass(frozen=True)
class RecommendResult:
    """One answered recommend request."""

    request_id: str
    user: int
    t: int
    items: List[int]
    degraded: bool
    latency_s: float


class _PendingRequest:
    """A submitted request: captured query state plus a waitable slot."""

    __slots__ = (
        "request_id",
        "user",
        "t",
        "candidates",
        "k",
        "deadline",
        "lasts",
        "submitted",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self,
        request_id: str,
        user: int,
        t: int,
        candidates: tuple,
        k: int,
        deadline: Optional[float],
        lasts: Optional[np.ndarray],
    ) -> None:
        self.request_id = request_id
        self.user = user
        self.t = t
        self.candidates = candidates
        self.k = k
        self.deadline = deadline
        self.lasts = lasts
        self.submitted = time.monotonic()
        self._done = threading.Event()
        self._result: Optional[RecommendResult] = None
        self._error: Optional[BaseException] = None

    def resolve(self, items: List[int], degraded: bool) -> None:
        self._result = RecommendResult(
            request_id=self.request_id,
            user=self.user,
            t=self.t,
            items=items,
            degraded=degraded,
            latency_s=time.monotonic() - self.submitted,
        )
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> RecommendResult:
        if not self._done.wait(timeout):
            raise ServingError(
                f"request {self.request_id} timed out after {timeout}s"
            )
        if self._error is not None:
            raise ServingError(
                f"request {self.request_id} failed: {self._error}"
            ) from self._error
        assert self._result is not None
        return self._result


#: Queue sentinel telling the batching worker to exit.
_SHUTDOWN = object()


class RecommendService:
    """Live recommendation service over a fitted recommender.

    Parameters
    ----------
    model:
        A fitted, *deterministic* recommender (scoring must be a pure
        function of the history — micro-batching reorders calls).
    store:
        The live session store. Wire its ``event_source`` to
        ``event_log.events_for`` so eviction rehydrates through the log.
    event_log:
        Optional write-ahead log; without one, ingested events survive
        only as long as the process (and eviction loses them).
    config:
        Operational knobs; defaults match the paper's protocol.
    """

    def __init__(
        self,
        model: Recommender,
        store: SessionStore,
        event_log: Optional[EventLog] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        config = config or ServiceConfig()
        if not model.is_fitted:
            raise ServingError("RecommendService requires a fitted model")
        if not model.deterministic:
            raise ServingError(
                "RecommendService requires a deterministic model: "
                "micro-batching reorders scoring calls"
            )
        if (
            store.window_size != config.window.window_size
            or store.min_gap != config.window.min_gap
        ):
            raise ServingError(
                f"store window ({store.window_size}, {store.min_gap}) does "
                f"not match service window ({config.window.window_size}, "
                f"{config.window.min_gap})"
            )
        self.model = model
        self.store = store
        self.event_log = event_log
        self.config = config
        self.metrics = ServingMetrics()
        self._request_ids = itertools.count()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._closed = False
        self._worker = threading.Thread(
            target=self._batch_loop, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()
        logger.info(
            "service started: model=%s window=(%d, %d) max_batch=%d "
            "max_wait_ms=%.1f",
            model.name or type(model).__name__,
            config.window.window_size,
            config.window.min_gap,
            config.max_batch,
            config.max_wait_ms,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self, user: int, item: int, client_seq: Optional[int] = None
    ) -> int:
        """Apply one consumption event; returns its sequence position.

        Write-ahead discipline: the event is committed to the log first,
        then applied to the live session. A crash between the two
        replays the logged event on restart; a crash before the log
        write leaves no trace anywhere — either way state stays exactly
        replayable.

        The session is materialized *before* the log write: rehydration
        replays every previously-logged event, so logging first and then
        letting ``store.get`` rebuild would apply the new event twice.

        ``client_seq`` makes retries idempotent: it is the index this
        event should take among the user's *live* events (0-based). A
        ``client_seq`` below the session's live-event count means the
        append already committed — the original position is returned
        without re-applying (the retried duplicate of a request whose
        reply was lost). The item must match the committed one; a
        mismatch means the client's counter diverged and raises. A
        ``client_seq`` beyond the live count is a gap (events lost
        client-side) and also raises. Assumes one writer per user —
        the cluster's consistent-hash routing guarantees exactly that.
        """
        user, item = int(user), int(item)
        if user < 0:
            raise ServingError(f"user must be non-negative, got {user}")
        if item < 0 or (
            self.config.n_items is not None and item >= self.config.n_items
        ):
            raise ServingError(
                f"item {item} outside the vocabulary "
                f"[0, {self.config.n_items})"
            )
        with self.store.lock:
            session = self.store.get(user)
            if client_seq is not None:
                client_seq = int(client_seq)
                if client_seq < 0:
                    raise ServingError(
                        f"client_seq must be non-negative, got {client_seq}"
                    )
                n_live = session.n_live_events
                if client_seq < n_live:
                    committed = (
                        self.event_log.events_for(user)[client_seq]
                        if self.event_log is not None
                        else None
                    )
                    if committed is not None and committed != item:
                        raise ServingError(
                            f"duplicate event for user {user} at live seq "
                            f"{client_seq} carries item {item}, but item "
                            f"{committed} is committed there"
                        )
                    self.metrics.inc("duplicate_events")
                    return session.t - n_live + client_seq
                if client_seq > n_live:
                    raise ServingError(
                        f"client_seq {client_seq} for user {user} skips "
                        f"ahead of the live stream (next is {n_live})"
                    )
            if self.event_log is not None:
                self.event_log.append(user, item)
            position = session.append(item)
        self.metrics.inc("events")
        return position

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def submit(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> _PendingRequest:
        """Enqueue one recommend request; returns a waitable handle.

        The query state (position, Ω-filtered candidates, and — when a
        deadline is set — the last-position vector the Recency fallback
        needs) is captured *now*, under the store lock; later ingests
        cannot leak into this request.
        """
        if self._closed:
            raise ServingError("service is closed")
        k = self.config.default_k if k is None else int(k)
        if k <= 0:
            raise ServingError(f"k must be positive, got {k}")
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        request_id = f"r{next(self._request_ids):08d}"
        with self.store.lock:
            session = self.store.get(int(user))
            t = session.t
            candidates = tuple(session.candidates())
            lasts = (
                session.last_positions(candidates)
                if deadline_ms is not None and candidates
                else None
            )
        deadline = (
            time.monotonic() + deadline_ms / 1e3
            if deadline_ms is not None
            else None
        )
        pending = _PendingRequest(
            request_id, int(user), t, candidates, k, deadline, lasts
        )
        self.metrics.inc("requests")
        if not candidates:
            # Nothing recommendable (cold user or everything Ω-excluded):
            # answer empty without occupying the scoring loop.
            self.metrics.inc("empty_candidate_requests")
            pending.resolve([], degraded=False)
            logger.debug(
                "request %s user=%d t=%d: empty candidate set",
                request_id, user, t,
            )
            return pending
        logger.debug(
            "request %s user=%d t=%d k=%d candidates=%d deadline_ms=%s",
            request_id, user, t, k, len(candidates), deadline_ms,
        )
        self._queue.put(pending)
        return pending

    def recommend(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = 60.0,
    ) -> RecommendResult:
        """Submit and wait: the synchronous request path."""
        result = self.submit(user, k, deadline_ms).result(timeout)
        self.metrics.observe("request_latency", result.latency_s)
        self.metrics.inc("recommendations")
        return result

    def step(
        self, user: int, item: int, k: Optional[int] = None
    ) -> Optional[RecommendResult]:
        """Replay primitive: recommend-if-target, then ingest ``item``.

        Mirrors one position of the offline evaluation walk — a
        recommendation is produced exactly when the incoming consumption
        is an RRC target with a non-empty candidate set (the
        ``collect_queries`` filter), *before* the event is applied.
        Used by the equivalence suite, the benchmark, and ``replay``.
        """
        with self.store.lock:
            session = self.store.get(int(user))
            is_target = session.is_next_target(int(item)) and bool(
                session.candidates()
            )
        result = self.recommend(user, k) if is_target else None
        self.ingest(user, item)
        return result

    # ------------------------------------------------------------------
    # Micro-batching worker
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            head = self._queue.get()
            if head is _SHUTDOWN:
                return
            batch: List[_PendingRequest] = [head]  # type: ignore[list-item]
            drain_until = time.monotonic() + max_wait
            stop = False
            while len(batch) < self.config.max_batch:
                remaining = drain_until - time.monotonic()
                try:
                    nxt = (
                        self._queue.get_nowait()
                        if remaining <= 0
                        else self._queue.get(timeout=remaining)
                    )
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)  # type: ignore[arg-type]
            self._process_batch(batch)
            if stop:
                return

    def _process_batch(self, batch: List[_PendingRequest]) -> None:
        self.metrics.inc("batches")
        self.metrics.inc("batched_requests", len(batch))
        by_user: Dict[int, List[_PendingRequest]] = {}
        for pending in batch:
            by_user.setdefault(pending.user, []).append(pending)
        for user, group in by_user.items():
            try:
                self._score_user_group(user, group)
            except Exception as exc:  # noqa: BLE001 - reported per request
                self.metrics.inc("errors", len(group))
                logger.warning(
                    "scoring failed for user %d (%d request(s)): %s",
                    user, len(group), exc,
                )
                for pending in group:
                    pending.fail(exc)

    def _score_user_group(
        self, user: int, group: List[_PendingRequest]
    ) -> None:
        """Answer all of one user's requests with one batched model call."""
        now = time.monotonic()
        expired = [
            p for p in group if p.deadline is not None and now > p.deadline
        ]
        live = [p for p in group if p not in expired]
        for pending in expired:
            # Expired while queued: don't make it later still — serve
            # the cheap fallback immediately.
            self._resolve_fallback(pending)
        if not live:
            return
        with self.store.lock:
            sequence = self.store.get(user).sequence()
        queries = [
            Query(t=pending.t, candidates=pending.candidates)
            for pending in live
        ]
        max_k = max(pending.k for pending in live)
        start = time.perf_counter()
        ranked_lists = self.model.recommend_batch(sequence, queries, max_k)
        self.metrics.observe("scoring_latency", time.perf_counter() - start)
        finished = time.monotonic()
        for pending, ranked in zip(live, ranked_lists):
            if pending.deadline is not None and finished > pending.deadline:
                self._resolve_fallback(pending)
            else:
                pending.resolve(ranked[: pending.k], degraded=False)

    def _resolve_fallback(self, pending: _PendingRequest) -> None:
        """Answer from the Recency baseline computed off captured state."""
        self.metrics.inc("deadline_fallbacks")
        if pending.lasts is None:
            # Deadline-less requests never reach here, but stay safe.
            pending.resolve([], degraded=True)
            return
        scores = RecencyRecommender.scores_from_last_positions(
            pending.lasts, pending.t
        )
        items = rank_top_k(
            pending.candidates, scores, pending.k, owner="serving fallback"
        )
        logger.debug(
            "request %s user=%d t=%d: deadline missed, served Recency "
            "fallback", pending.request_id, pending.user, pending.t,
        )
        pending.resolve(items, degraded=True)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def state_fingerprint(self, user: int) -> str:
        """Digest of one user's live session state (rehydrates if needed)."""
        return self.store.state_fingerprint(int(user))

    def user_state(self, user: int) -> Dict[str, object]:
        """Position, live-event count, and fingerprint of one user.

        Served on ``/state``; the supervisor uses the fingerprint to
        prove a restarted shard rehydrated bit-identically before
        readmitting it, and clients use ``live_events`` to initialize
        their idempotency counters.
        """
        user = int(user)
        if user < 0:
            raise ServingError(f"user must be non-negative, got {user}")
        with self.store.lock:
            session = self.store.get(user)
            return {
                "user": session.user,
                "t": session.t,
                "live_events": session.n_live_events,
                "fingerprint": session.state_fingerprint(),
            }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Counters + latency histograms + session-cache stats, one dict."""
        return self.metrics.as_dict(self.store.counters.as_dict())

    def close(self) -> None:
        """Stop the batching worker and seal the event log."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=30.0)
        if self.event_log is not None:
            self.event_log.close()
        logger.info("service closed")

    def __enter__(self) -> "RecommendService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def service_for_split(
    model: Recommender,
    split: SplitDataset,
    event_log: Optional[EventLog] = None,
    config: Optional[ServiceConfig] = None,
    capacity: int = 1024,
) -> RecommendService:
    """Wire a service whose base histories are a split's training prefixes.

    The canonical online/offline topology: sessions start from
    ``split.train_sequence(user)`` and the held-out test suffix arrives
    as live events, so replaying it through :meth:`RecommendService.step`
    reproduces the offline evaluation protocol position for position.
    """
    config = config or ServiceConfig(n_items=split.n_items)

    def history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    store = SessionStore(
        config.window.window_size,
        config.window.min_gap,
        capacity=capacity,
        history_provider=history,
        event_source=(
            event_log.events_for if event_log is not None else None
        ),
    )
    return RecommendService(model, store, event_log=event_log, config=config)
