"""Stdlib JSON-over-HTTP front end for :class:`RecommendService`.

No framework, no new dependency: a :class:`http.server.ThreadingHTTPServer`
whose handler translates four routes into service calls:

===========  ======  ====================================================
Route        Method  Body / response
===========  ======  ====================================================
/events      POST    ``{"user": u, "item": i, "seq"?: s}`` → committed
                     position (``seq`` makes retried appends idempotent)
/recommend   POST    ``{"user": u, "k"?: n, "deadline_ms"?: d}`` →
                     ranked items + degraded flag
/metrics     GET     full metrics snapshot (counters, latency, cache)
/healthz     GET     liveness probe
/state       GET     ``?user=u`` → position, live-event count, and state
                     fingerprint (supervisor readmission checks, client
                     idempotency-counter initialization)
/admin/hang  POST    ``{"seconds": s}`` → stall every *subsequent*
                     request for ``s`` seconds (chaos hook simulating a
                     hung worker; the supervisor must detect and react)
===========  ======  ====================================================

Handler threads funnel into the service's micro-batching queue, so
concurrent HTTP clients are exactly what fills scoring batches. Request
logging goes through :mod:`repro.logging_utils` with the service's
per-request ids — the default ``BaseHTTPRequestHandler`` stderr writes
are disabled.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.exceptions import ReproError, ServingError
from repro.logging_utils import get_logger
from repro.serving.service import RecommendService

logger = get_logger("serving.server")

#: Reject request bodies beyond this size (a liveness guard, not a quota).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests into the wrapped service."""

    #: Set by RecommendServer before the server starts.
    service: RecommendService

    # Silence the default stderr access log; we log through `repro`.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client gave up (timeout, retry elsewhere) before the
            # reply went out; nothing to answer anymore.
            logger.debug("client disconnected before reply on %s", self.path)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ServingError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ServingError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict, name: str) -> int:
        if name not in payload:
            raise ServingError(f"missing required field {name!r}")
        try:
            return int(payload[name])
        except (TypeError, ValueError) as exc:
            raise ServingError(f"field {name!r} must be an integer") from exc

    def _hang_if_armed(self) -> None:
        """Chaos gate: stall this handler while a hang window is open."""
        until = getattr(self.server, "hang_until", 0.0)
        now = time.monotonic()
        if now < until:
            time.sleep(until - now)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._hang_if_armed()
            parsed = urllib.parse.urlsplit(self.path)
            if parsed.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif parsed.path == "/metrics":
                self._send_json(200, self.service.metrics_snapshot())
            elif parsed.path == "/state":
                query = urllib.parse.parse_qs(parsed.query)
                if "user" not in query:
                    raise ServingError("missing required query param 'user'")
                try:
                    user = int(query["user"][0])
                except ValueError as exc:
                    raise ServingError("query param 'user' must be an integer") from exc
                self._send_json(200, self.service.user_state(user))
            else:
                self._send_json(404, {"error": f"unknown route {self.path}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            logger.warning("GET %s failed: %s", self.path, exc)
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/admin/hang":
                # The hang request itself answers immediately; only
                # requests arriving inside the window stall.
                payload = self._read_json()
                seconds = float(payload.get("seconds", 0.0))
                self.server.hang_until = time.monotonic() + seconds  # type: ignore[attr-defined]
                self._send_json(200, {"hanging_s": seconds})
                return
            self._hang_if_armed()
            payload = self._read_json()
            if self.path == "/events":
                user = self._field(payload, "user")
                item = self._field(payload, "item")
                seq = self._field(payload, "seq") if "seq" in payload else None
                position = self.service.ingest(user, item, client_seq=seq)
                self._send_json(
                    200, {"user": user, "item": item, "position": position}
                )
            elif self.path == "/recommend":
                user = self._field(payload, "user")
                k = (
                    self._field(payload, "k") if "k" in payload else None
                )
                deadline_ms = payload.get("deadline_ms")
                if deadline_ms is not None:
                    deadline_ms = float(deadline_ms)
                result = self.service.recommend(
                    user, k=k, deadline_ms=deadline_ms
                )
                self._send_json(
                    200,
                    {
                        "request_id": result.request_id,
                        "user": result.user,
                        "t": result.t,
                        "items": result.items,
                        "degraded": result.degraded,
                        "latency_ms": round(1e3 * result.latency_s, 3),
                    },
                )
            else:
                self._send_json(404, {"error": f"unknown route {self.path}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            logger.warning("POST %s failed: %s", self.path, exc)
            self._send_json(500, {"error": str(exc)})


class RecommendServer:
    """Own one HTTP listener bound to one :class:`RecommendService`.

    ``start()`` serves from a daemon thread (tests, embedding);
    ``serve_forever()`` blocks (the CLI). ``close()`` shuts the listener
    down and closes the service — sealing the event log, so a restarted
    server recovers by replay.
    """

    def __init__(
        self,
        service: RecommendService,
        host: str = "127.0.0.1",
        port: int = 8423,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.hang_until = 0.0  # type: ignore[attr-defined] - chaos gate
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port resolved if 0 was requested."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RecommendServer":
        """Serve from a background daemon thread."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        logger.info("serving on %s", self.url)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            logger.info("interrupted; shutting down")
        finally:
            self.close()

    def close(self) -> None:
        """Stop the listener, then close the service (seals the log)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "RecommendServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
