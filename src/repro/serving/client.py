"""Stdlib HTTP client for the serving endpoints.

A thin :mod:`urllib.request` wrapper speaking the same routes as
:mod:`repro.serving.server` (and the cluster router, which mounts the
identical surface). Failures are typed:

* 4xx/5xx replies surface as :class:`~repro.exceptions.ServingError`
  carrying the server's error message — the server *answered*, the
  request was wrong;
* connection failures and timeouts surface as
  :class:`~repro.exceptions.ServingUnavailableError` — the request may
  never have been processed, so idempotent retries are safe.

Every request honors a ``timeout=`` argument (falling back to the
client default), and transient failures are retried with bounded
exponential backoff. Retrying ``/events`` is only safe when the append
is idempotent, so the client attaches a per-user sequence number to
each event (``track_seq=True``, the default): the server deduplicates a
retried append whose first attempt actually committed. Counters are
initialized from the server's ``/state`` on first contact with a user
and assume a single writer per user — exactly what consistent-hash
routing guarantees in the cluster.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ServingError, ServingUnavailableError


class ServingClient:
    """Talk to one :class:`~repro.serving.server.RecommendServer` or router.

    Parameters
    ----------
    base_url:
        Endpoint root, e.g. ``http://127.0.0.1:8423``.
    timeout:
        Default per-request timeout in seconds.
    retries:
        Transient-failure retries per request (on top of the first
        attempt). ``0`` disables retrying.
    backoff_s / max_backoff_s:
        Exponential-backoff schedule: attempt *i* sleeps
        ``min(backoff_s * 2**i, max_backoff_s)`` before retrying.
    track_seq:
        Attach per-user sequence numbers to ``/events`` so retried
        appends are deduplicated server-side. Disable only for
        multi-writer setups where this client does not own its users.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        track_seq: bool = True,
    ) -> None:
        if retries < 0:
            raise ServingError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or max_backoff_s < 0:
            raise ServingError("backoff delays must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.track_seq = track_seq
        self._next_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _attempt(
        self, path: str, payload: Optional[dict], timeout: float
    ) -> Dict[str, object]:
        url = f"{self.base_url}{path}"
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc)
                )
            except Exception:  # noqa: BLE001 - body may not be JSON
                message = str(exc)
            if exc.code == 503:
                # Service Unavailable is transient by definition (the
                # cluster router answers it while a shard restarts):
                # typed as unavailability so idempotent calls retry.
                raise ServingUnavailableError(
                    f"{path} failed with HTTP 503: {message}"
                ) from exc
            raise ServingError(
                f"{path} failed with HTTP {exc.code}: {message}"
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            # URLError (unreachable), socket timeouts, resets, and torn
            # HTTP exchanges: the server never answered.
            reason = getattr(exc, "reason", exc)
            raise ServingUnavailableError(
                f"cannot reach {url}: {reason}"
            ) from exc

    def _request(
        self,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Dict[str, object]:
        """One request with bounded-backoff retries on unavailability."""
        timeout = self.timeout if timeout is None else float(timeout)
        retries = self.retries if retries is None else int(retries)
        attempt = 0
        while True:
            try:
                return self._attempt(path, payload, timeout)
            except ServingUnavailableError:
                if attempt >= retries:
                    raise
                time.sleep(
                    min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
                )
                attempt += 1

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def ingest(
        self,
        user: int,
        item: int,
        seq: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Send one consumption event; returns its committed position.

        With ``track_seq`` (default) the event carries a per-user
        sequence number, making retries idempotent; the counter is
        initialized from ``/state`` on first contact. An explicit
        ``seq`` overrides the tracked counter (and does not advance it).
        """
        payload: Dict[str, object] = {"user": int(user), "item": int(item)}
        tracked = seq is None and self.track_seq
        if tracked:
            if user not in self._next_seq:
                self._next_seq[user] = int(
                    self.state(user, timeout=timeout)["live_events"]  # type: ignore[arg-type]
                )
            seq = self._next_seq[user]
        if seq is not None:
            payload["seq"] = int(seq)
        # Without a seq the append is not idempotent: a retry could
        # double-apply, so unavailability surfaces after one attempt.
        reply = self._request(
            "/events",
            payload,
            timeout=timeout,
            retries=None if seq is not None else 0,
        )
        if tracked:
            self._next_seq[user] = int(seq) + 1  # type: ignore[arg-type]
        return int(reply["position"])  # type: ignore[arg-type]

    def recommend(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Ask for a top-k list; returns the full response payload."""
        payload: Dict[str, object] = {"user": user}
        if k is not None:
            payload["k"] = k
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("/recommend", payload, timeout=timeout)

    def recommend_items(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> List[int]:
        """Just the ranked item list of :meth:`recommend`."""
        return [
            int(item)
            for item in self.recommend(user, k, deadline_ms, timeout=timeout)[
                "items"
            ]  # type: ignore[union-attr]
        ]

    def state(
        self, user: int, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Position, live-event count, and fingerprint of one user."""
        query = urllib.parse.urlencode({"user": int(user)})
        return self._request(f"/state?{query}", timeout=timeout)

    def metrics(self, timeout: Optional[float] = None) -> Dict[str, object]:
        return self._request("/metrics", timeout=timeout)

    def health(self, timeout: Optional[float] = None) -> bool:
        """Whether the server answers its liveness probe."""
        try:
            reply = self._request(
                "/healthz", timeout=timeout, retries=0
            )
            return reply.get("status") == "ok"
        except ServingError:
            return False

    def hang(self, seconds: float, timeout: Optional[float] = None) -> None:
        """Arm the server's chaos hang gate (testing/ops hook)."""
        self._request(
            "/admin/hang", {"seconds": float(seconds)}, timeout=timeout
        )
