"""Stdlib HTTP client for the serving endpoints.

A thin :mod:`urllib.request` wrapper speaking the same four routes as
:mod:`repro.serving.server`; 4xx replies surface as
:class:`~repro.exceptions.ServingError` carrying the server's error
message, so client code and tests get typed failures instead of raw
HTTP exceptions.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ServingError


class ServingClient:
    """Talk to one running :class:`~repro.serving.server.RecommendServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, path: str, payload: Optional[dict] = None
    ) -> Dict[str, object]:
        url = f"{self.base_url}{path}"
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc)
                )
            except Exception:  # noqa: BLE001 - body may not be JSON
                message = str(exc)
            raise ServingError(
                f"{path} failed with HTTP {exc.code}: {message}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {url}: {exc.reason}") from exc

    def ingest(self, user: int, item: int) -> int:
        """Send one consumption event; returns its committed position."""
        reply = self._request("/events", {"user": user, "item": item})
        return int(reply["position"])  # type: ignore[arg-type]

    def recommend(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        """Ask for a top-k list; returns the full response payload."""
        payload: Dict[str, object] = {"user": user}
        if k is not None:
            payload["k"] = k
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("/recommend", payload)

    def recommend_items(
        self,
        user: int,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[int]:
        """Just the ranked item list of :meth:`recommend`."""
        return [
            int(item)
            for item in self.recommend(user, k, deadline_ms)["items"]  # type: ignore[union-attr]
        ]

    def metrics(self) -> Dict[str, object]:
        return self._request("/metrics")

    def health(self) -> bool:
        """Whether the server answers its liveness probe."""
        try:
            return self._request("/healthz").get("status") == "ok"
        except ServingError:
            return False
