"""The online serving layer: live sessions, event log, micro-batched service.

Everything before this package was offline — train a model, walk a
pre-loaded split, report accuracy. :mod:`repro.serving` turns the
trained artifacts into a long-lived service that ingests consumption
events as they happen and answers "what should user *u* reconsume
now?", while staying bit-identical to the offline evaluation protocol:

* :mod:`~repro.serving.state` — :class:`LiveSession` (the engine's
  window/Ω/recency bookkeeping with an O(1) live ``append`` path) and
  :class:`SessionStore` (LRU-bounded residency with transparent
  rehydration from base history + event-log replay);
* :mod:`~repro.serving.events` — the crc-checked append-only
  :class:`EventLog`, written write-ahead so crash recovery is pure
  replay;
* :mod:`~repro.serving.service` — :class:`RecommendService`, coalescing
  concurrent requests into micro-batches over the engine's
  ``score_batch`` kernels, with per-request deadlines degrading to the
  Recency baseline;
* :mod:`~repro.serving.server` / :mod:`~repro.serving.client` —
  stdlib-only JSON-over-HTTP transport;
* :mod:`~repro.serving.metrics` — latency histograms (p50/p95/p99),
  request/fallback/eviction counters, and session-cache hit rate,
  exposed on ``/metrics`` — with exact, order-independent cross-shard
  merging (:func:`merge_snapshots`) for the cluster router.

The sharded, fault-tolerant deployment of this stack lives in
:mod:`repro.cluster`.
"""

from repro.serving.client import ServingClient
from repro.serving.events import Event, EventLog, scan_events
from repro.serving.metrics import (
    LatencyHistogram,
    ServingMetrics,
    merge_snapshots,
)
from repro.serving.server import RecommendServer
from repro.serving.service import (
    RecommendResult,
    RecommendService,
    ServiceConfig,
    service_for_split,
)
from repro.serving.state import LiveSession, SessionStore

__all__ = [
    "Event",
    "EventLog",
    "LatencyHistogram",
    "LiveSession",
    "RecommendResult",
    "RecommendServer",
    "RecommendService",
    "ServiceConfig",
    "ServingClient",
    "ServingMetrics",
    "SessionStore",
    "merge_snapshots",
    "scan_events",
    "service_for_split",
]
