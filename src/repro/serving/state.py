"""Live per-user session state for the online serving layer.

Offline, a :class:`~repro.engine.session.ScoringSession` walks a
*pre-loaded* sequence; it cannot ingest a consumption event that was not
known at construction. :class:`LiveSession` keeps the same window/Ω/
recency bookkeeping over a *growable* history: :meth:`LiveSession.append`
applies one live event with the exact O(1) dictionary updates of
``ScoringSession.advance``, so after any number of appends the state is
bit-identical (same multisets, same candidates, same last positions —
asserted via the shared :func:`~repro.engine.session.fingerprint_state`
digest) to a fresh offline session built over the concatenated history.

:class:`SessionStore` keeps many live sessions resident under an LRU
capacity bound. An evicted user is *transparently rehydrated* on next
access. With a legacy callable ``history_provider`` that means
re-fetching the base history and replaying the user's logged live
events on top; with a :class:`~repro.store.base.HistoryStore` provider
the history (base *and* live tail) survives eviction inside the store,
so rehydration is an O(window) re-seed over a zero-copy view — no
re-fetch, no copy, no replay. Either way eviction is invisible to
correctness, it only costs (much less, now) latency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.engine.session import fingerprint_state
from repro.exceptions import DataError, ServingError
from repro.store.base import HistoryStore
from repro.store.session import StoreSession

#: Fetches one user's base (pre-serving) history, or ``None`` for a user
#: unknown to the dataset (served cold, from live events only).
HistoryProvider = Callable[[int], Optional[ConsumptionSequence]]

#: What ``SessionStore.get`` hands out: the two session flavours share
#: one accessor contract (asserted digest-for-digest by the equivalence
#: suite), so every consumer treats them interchangeably.
SessionLike = Union["LiveSession", StoreSession]


class LiveSession:
    """Window/Ω/recency state of one user, updatable one event at a time.

    Parameters
    ----------
    user:
        Dense user index.
    window_size / min_gap:
        The ``|W|`` / ``Ω`` protocol parameters; ``min_gap=0`` disables
        the Ω-filter exactly as in :class:`ScoringSession`.
    history:
        Optional base history the session starts from; live events are
        appended after it.
    """

    __slots__ = (
        "user",
        "window_size",
        "min_gap",
        "_items",
        "_t",
        "_window_counts",
        "_recent_counts",
        "_last_pos",
        "_n_live",
        "_sequence_cache",
    )

    def __init__(
        self,
        user: int,
        window_size: int,
        min_gap: int = 0,
        history: Optional[ConsumptionSequence] = None,
    ) -> None:
        if window_size <= 0:
            raise DataError(f"window_size must be positive, got {window_size}")
        if min_gap < 0:
            raise DataError(f"min_gap must be non-negative, got {min_gap}")
        if history is not None and history.user != user:
            raise DataError(
                f"history belongs to user {history.user}, not {user}"
            )
        self.user = int(user)
        self.window_size = window_size
        self.min_gap = min_gap
        items: List[int] = (
            history.items.tolist() if history is not None else []
        )
        self._items = items
        self._t = len(items)
        # Same seeding as ScoringSession(start=len(history)): one forward
        # pass over the prefix fills the three state dicts.
        window_counts: Dict[int, int] = {}
        for item in items[max(0, self._t - window_size):]:
            window_counts[item] = window_counts.get(item, 0) + 1
        recent_counts: Dict[int, int] = {}
        if min_gap > 0:
            for item in items[max(0, self._t - min_gap):]:
                recent_counts[item] = recent_counts.get(item, 0) + 1
        last_pos: Dict[int, int] = {}
        for position, item in enumerate(items):
            last_pos[item] = position
        self._window_counts = window_counts
        self._recent_counts = recent_counts
        self._last_pos = last_pos
        self._n_live = 0
        self._sequence_cache: Optional[ConsumptionSequence] = None

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    @property
    def t(self) -> int:
        """Current position: state describes the window before ``t``."""
        return self._t

    @property
    def n_live_events(self) -> int:
        """Events appended since construction (= events needing replay)."""
        return self._n_live

    def append(self, item: int) -> int:
        """Ingest one live consumption event; returns its position.

        The update rule is ``ScoringSession.advance`` verbatim, except
        the consumed item arrives from the outside instead of being read
        from a pre-loaded sequence.
        """
        item = int(item)
        if item < 0:
            raise DataError(f"item indices must be non-negative, got {item}")
        t = self._t
        items = self._items
        items.append(item)
        self._last_pos[item] = t
        window_counts = self._window_counts
        window_counts[item] = window_counts.get(item, 0) + 1
        tail = t - self.window_size
        if tail >= 0:
            leaving = items[tail]
            remaining = window_counts[leaving] - 1
            if remaining:
                window_counts[leaving] = remaining
            else:
                del window_counts[leaving]
        if self.min_gap > 0:
            recent_counts = self._recent_counts
            recent_counts[item] = recent_counts.get(item, 0) + 1
            tail = t - self.min_gap
            if tail >= 0:
                leaving = items[tail]
                remaining = recent_counts[leaving] - 1
                if remaining:
                    recent_counts[leaving] = remaining
                else:
                    del recent_counts[leaving]
        self._t = t + 1
        self._n_live += 1
        self._sequence_cache = None
        return t

    # ------------------------------------------------------------------
    # State accessors (contracts identical to ScoringSession's)
    # ------------------------------------------------------------------
    def window_length(self) -> int:
        """Number of consumptions in the window before ``t``."""
        return min(self._t, self.window_size)

    def window_count(self, item: int) -> int:
        """Occurrences of ``item`` in the window before ``t``."""
        return self._window_counts.get(int(item), 0)

    def window_counts_map(self) -> Dict[int, int]:
        """The live item → window-count dict. Treat as read-only."""
        return self._window_counts

    def candidates(self) -> List[int]:
        """The Ω-filtered RRC candidate set before ``t`` (sorted)."""
        recent = self._recent_counts
        if recent:
            return sorted(
                [item for item in self._window_counts if item not in recent]
            )
        return sorted(self._window_counts)

    def last_position(self, item: int) -> int:
        """``l_ut(v)`` — last occurrence strictly before ``t`` (-1 if never)."""
        return self._last_pos.get(int(item), -1)

    def last_positions(self, items) -> np.ndarray:
        """Last occurrences before ``t`` for many items (-1 if never)."""
        last_pos = self._last_pos
        keys = items.tolist() if isinstance(items, np.ndarray) else items
        return np.array(
            [last_pos.get(int(key), -1) for key in keys], dtype=np.int64
        )

    def last_positions_list(self, keys) -> List[int]:
        """Plain-int last positions (feature-filler fast path)."""
        last_pos = self._last_pos
        return [last_pos.get(int(key), -1) for key in keys]

    def is_next_target(self, item: int) -> bool:
        """Whether consuming ``item`` *now* would be an RRC target.

        Mirrors ``ScoringSession.is_target``: the item repeats from the
        window (gap ≤ ``window_size``) and was not consumed within the
        last ``min_gap`` steps. The serving replay path uses this to
        decide which stream positions get a recommendation, exactly as
        the offline protocol's target filter.
        """
        last = self.last_position(item)
        if last < 0:
            return False
        gap = self._t - last
        return self.min_gap < gap <= self.window_size

    def sequence(self) -> ConsumptionSequence:
        """The full history (base + live events) as an immutable sequence.

        Models score against this exact object, so the serving path and
        the offline protocol feed kernels identical inputs. The O(n)
        materialization is cached and invalidated by :meth:`append`.
        """
        if self._sequence_cache is None:
            self._sequence_cache = ConsumptionSequence(self.user, self._items)
        return self._sequence_cache

    def state_fingerprint(self) -> str:
        """Digest comparable with ``ScoringSession.state_fingerprint``."""
        return fingerprint_state(
            self.user,
            self._t,
            self.window_size,
            self.min_gap,
            self._window_counts,
            self._recent_counts,
            self._last_pos,
        )

    def __repr__(self) -> str:
        return (
            f"LiveSession(user={self.user}, t={self._t}, "
            f"live={self._n_live}, window_size={self.window_size}, "
            f"min_gap={self.min_gap})"
        )


class StoreCounters:
    """Mutable hit/miss/eviction/rehydration tallies of one store."""

    __slots__ = ("hits", "misses", "evictions", "rehydrations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rehydrations = 0

    def as_dict(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class SessionStore:
    """LRU-bounded cache of :class:`LiveSession` objects.

    Parameters
    ----------
    window_size / min_gap:
        Protocol parameters every session is built with.
    capacity:
        Maximum resident sessions; accessing a new user past capacity
        evicts the least-recently-used one.
    history_provider:
        Either a :class:`~repro.store.base.HistoryStore` (sessions are
        :class:`~repro.store.session.StoreSession` objects over it —
        zero-copy rehydration, histories survive eviction in the store)
        or a legacy callable fetching a user's base history on first
        access / rehydration.
    event_source:
        Optional callable ``user -> iterable of item ids`` returning the
        user's *logged live events* in append order (the event log's
        per-user replay view). Rehydration replays them on top of the
        base history, so eviction never loses state — provided every
        live event was logged before it was applied.

    All public methods are thread-safe (one lock; sessions are only
    mutated under it through :meth:`append`).
    """

    def __init__(
        self,
        window_size: int,
        min_gap: int,
        capacity: int = 1024,
        history_provider: Optional[
            Union[HistoryProvider, HistoryStore]
        ] = None,
        event_source: Optional[Callable[[int], List[int]]] = None,
    ) -> None:
        if capacity < 1:
            raise ServingError(f"capacity must be >= 1, got {capacity}")
        self.window_size = window_size
        self.min_gap = min_gap
        self.capacity = capacity
        self.history_provider = history_provider
        self.event_source = event_source
        self.counters = StoreCounters()
        self._sessions: "OrderedDict[int, SessionLike]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def lock(self) -> threading.RLock:
        """The store lock; the service holds it across capture points."""
        return self._lock

    def resident_users(self) -> List[int]:
        """Users currently resident, least-recently-used first."""
        with self._lock:
            return list(self._sessions)

    def get(self, user: int) -> SessionLike:
        """The user's live session, rehydrating (and evicting) as needed."""
        with self._lock:
            session = self._sessions.get(user)
            if session is not None:
                self.counters.hits += 1
                self._sessions.move_to_end(user)
                return session
            self.counters.misses += 1
            session = self._build(user)
            self._sessions[user] = session
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self.counters.evictions += 1
            return session

    def append(self, user: int, item: int) -> int:
        """Apply one live event to the user's session; returns position.

        When the event is also being written to the log that backs
        ``event_source``, materialize the session (``get``) *before* the
        log write: a first access afterwards would replay the new event
        during the rebuild and then apply it a second time here.
        """
        with self._lock:
            return self.get(user).append(item)

    def evict(self, user: int) -> bool:
        """Explicitly drop a user's resident session (testing/ops hook)."""
        with self._lock:
            if self._sessions.pop(user, None) is None:
                return False
            self.counters.evictions += 1
            return True

    def state_fingerprint(self, user: int) -> str:
        """Digest of the user's (possibly rehydrated) session state."""
        with self._lock:
            return self.get(user).state_fingerprint()

    def _build(self, user: int) -> SessionLike:
        """Rebuild a session: base history + replay of logged events.

        Over a :class:`HistoryStore` the "rebuild" is an O(window)
        re-seed — the store retained both base and live tail across
        eviction — and only WAL events the store has *not* seen yet
        (``events[live_count:]``, i.e. a crash-restart gap) are
        replayed. Over a legacy callable provider, the base history is
        re-fetched and every logged live event replayed, as before.
        """
        provider = self.history_provider
        if isinstance(provider, HistoryStore):
            session = provider.session(
                user, self.window_size, self.min_gap
            )
            replayed = 0
            if self.event_source is not None:
                already_held = provider.live_count(user)
                for item in self.event_source(user)[already_held:]:
                    session.append(item)
                    replayed += 1
            if replayed or provider.live_count(user):
                # The user had live state to restore — whether it came
                # back from the store's tail (free) or the WAL (replay).
                self.counters.rehydrations += 1
            return session
        history = provider(user) if provider is not None else None
        session = LiveSession(
            user, self.window_size, self.min_gap, history=history
        )
        if self.event_source is not None:
            replayed = 0
            for item in self.event_source(user):
                session.append(item)
                replayed += 1
            if replayed:
                self.counters.rehydrations += 1
        return session

    def __repr__(self) -> str:
        return (
            f"SessionStore(resident={len(self._sessions)}, "
            f"capacity={self.capacity})"
        )
