"""Append-only, crc-checked event log — the serving layer's source of truth.

Every live consumption event is durably logged *before* it is applied to
any in-memory session, so a crashed server can rebuild bit-identical
session state by replaying the log over the base histories
(write-ahead-log discipline). The format is one JSON record per line::

    {"seq": 17, "user": 3, "item": 42, "ts": 1754600000.25, "crc": "1a2b3c4d"}

``seq`` is a contiguous global sequence number, ``ts`` the wall-clock
commit time (optional — records written before timestamps existed omit
it and parse fine), and ``crc`` the CRC-32 of the canonical
``"seq:user:item"`` (or ``"seq:user:item:ts"``) payload, so recovery
can tell the two failure modes apart:

* a **torn tail** — the final line truncated mid-write by a crash — is
  expected and silently discarded (the event never committed; the
  client retries it);
* **interior corruption** — a bad record *followed by* valid ones, or a
  file shorter than the sealed manifest says it must be — is data loss
  and raises :class:`~repro.exceptions.DataError` loudly.

The sealed-length manifest (``<log>.manifest.json``) is written through
:func:`repro.resilience.atomic.atomic_write_json` on every
:meth:`EventLog.seal` / :meth:`EventLog.close`, so it is itself
crash-safe: after a clean shutdown it pins the minimum record count a
reopened log must contain.

A :class:`~repro.resilience.faults.FaultInjector` can be armed on the
append path (its ``on_write`` hook fires before the record reaches the
file), which is how the crash-recovery suite kills the server
mid-stream at deterministic points.

:func:`scan_events` streams a log file record-by-record (same torn-tail
tolerance and corruption/contiguity checks as :meth:`EventLog.open`)
without materializing the whole file or any in-memory index — the
inspection path ``repro-serve replay`` and the offline online-trainer
rebuild use it to walk arbitrarily large logs in O(1) memory.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Union

from repro.exceptions import DataError
from repro.resilience.atomic import atomic_write_json

#: Log format version recorded in the manifest; bump on layout changes.
EVENT_LOG_VERSION = 1

#: Durability policies for the append path (see :class:`EventLog`).
FSYNC_POLICIES = ("always", "interval", "never")


def _payload_crc(
    seq: int, user: int, item: int, ts: Optional[float] = None
) -> str:
    """CRC-32 (hex, no prefix) of the canonical record payload.

    Timestamped records extend the payload with ``repr(ts)`` —
    ``repr``/JSON round-trip floats exactly, so the crc stays stable
    across write/parse cycles; legacy records (``ts is None``) keep the
    original three-field payload so their stored crcs still verify.
    """
    payload = f"{seq}:{user}:{item}"
    if ts is not None:
        payload += f":{ts!r}"
    return format(zlib.crc32(payload.encode("ascii")) & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class Event:
    """One committed consumption event.

    ``ts`` is the wall-clock commit time. It is metadata for inspection
    and update-lag accounting only — replay and the online trainer key
    every decision off ``seq``/``user``/``item``, so two logs that
    differ only in timestamps rebuild bit-identical state.
    """

    seq: int
    user: int
    item: int
    ts: Optional[float] = None

    def to_line(self) -> str:
        """The record's exact on-disk line (including the newline)."""
        record: dict = {
            "seq": self.seq,
            "user": self.user,
            "item": self.item,
        }
        if self.ts is not None:
            record["ts"] = self.ts
        record["crc"] = _payload_crc(self.seq, self.user, self.item, self.ts)
        return json.dumps(record, separators=(",", ":")) + "\n"


def _parse_line(line: str) -> Optional[Event]:
    """Parse one complete line; ``None`` marks an invalid/torn record."""
    try:
        record = json.loads(line)
        ts = record.get("ts")
        event = Event(
            seq=int(record["seq"]),
            user=int(record["user"]),
            item=int(record["item"]),
            ts=None if ts is None else float(ts),
        )
    except (ValueError, KeyError, TypeError):
        return None
    expected = _payload_crc(event.seq, event.user, event.item, event.ts)
    if record.get("crc") != expected:
        return None
    return event


class EventLog:
    """Durable append-only record of live consumption events.

    Use :meth:`EventLog.open` — it replays an existing file (recovering
    from a torn tail), verifies the sealed manifest, and leaves the log
    ready for appends.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fault_injector: Optional[object] = None,
        fsync_every: int = 1,
        fsync_policy: Optional[str] = None,
    ) -> None:
        if fsync_every < 1:
            raise DataError(f"fsync_every must be >= 1, got {fsync_every}")
        if fsync_policy is None:
            # Back-compat mapping: the historical knob was fsync_every,
            # with 1 (the default) meaning fsync-per-append.
            fsync_policy = "always" if fsync_every == 1 else "interval"
        if fsync_policy not in FSYNC_POLICIES:
            raise DataError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync_policy!r}"
            )
        self.path = Path(path)
        self.fault_injector = fault_injector
        self.fsync_every = fsync_every
        self.fsync_policy = fsync_policy
        self.n_discarded_tail = 0
        self._events: List[Event] = []
        self._by_user: Dict[int, List[int]] = {}
        self._handle: Optional[IO[str]] = None
        self._unsynced = 0
        self._readonly = False

    # ------------------------------------------------------------------
    # Opening / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        fault_injector: Optional[object] = None,
        fsync_every: int = 1,
        readonly: bool = False,
        fsync_policy: Optional[str] = None,
    ) -> "EventLog":
        """Open (or create) a log, replaying and validating its records.

        ``readonly`` skips the append handle entirely — the inspection
        mode ``repro-serve replay`` uses; appends raise and
        :meth:`close` leaves the manifest untouched.

        ``fsync_policy`` picks the durability/throughput trade-off of
        the append path:

        * ``"always"`` (default) — fsync after every append. A record
          returned from :meth:`append` survives an immediate process
          kill *and* power cut; the strongest guarantee and the one the
          crash sweeps assume.
        * ``"interval"`` — fsync every ``fsync_every`` appends (and on
          close). A process kill loses nothing (the OS page cache holds
          the flushed lines), but a power cut may lose up to
          ``fsync_every - 1`` committed records.
        * ``"never"`` — fsync only on :meth:`close`. Fastest; a power
          cut can lose any record appended since open. Only sensible
          when the log is a rebuildable cache of some upstream truth.
        """
        log = cls(
            path,
            fault_injector=fault_injector,
            fsync_every=fsync_every,
            fsync_policy=fsync_policy,
        )
        log._readonly = readonly
        log._recover()
        if not readonly:
            log.path.parent.mkdir(parents=True, exist_ok=True)
            log._handle = log.path.open("a", encoding="utf-8")
        return log

    @property
    def manifest_path(self) -> Path:
        return self.path.with_name(self.path.name + ".manifest.json")

    def _recover(self) -> None:
        """Load committed records, dropping a torn tail, detecting loss."""
        if self.path.exists():
            text = self.path.read_text(encoding="utf-8")
            lines = text.split("\n")
            # A file ending in "\n" splits into [..., ""]; anything else
            # in the final slot is a record the crash cut short.
            complete, tail = lines[:-1], lines[-1]
            torn = bool(tail)
            events: List[Event] = []
            for line_no, line in enumerate(complete):
                event = _parse_line(line)
                if event is None:
                    if line_no == len(complete) - 1 and not torn:
                        # Corrupt *final* complete line: also a torn
                        # write (the newline made it, the payload tore).
                        torn = True
                        break
                    raise DataError(
                        f"corrupt event record at {self.path}:{line_no + 1} "
                        f"with valid records after it"
                    )
                if event.seq != len(events):
                    raise DataError(
                        f"event log {self.path} has non-contiguous seq "
                        f"{event.seq} at line {line_no + 1} "
                        f"(expected {len(events)})"
                    )
                events.append(event)
            self.n_discarded_tail = 1 if torn else 0
            self._events = events
            for index, event in enumerate(events):
                self._by_user.setdefault(event.user, []).append(index)
            if torn and not self._readonly:
                # Truncate the torn tail so future appends start on a
                # clean record boundary.
                committed = "".join(event.to_line() for event in events)
                with self.path.open("w", encoding="utf-8") as handle:
                    handle.write(committed)
                    handle.flush()
                    os.fsync(handle.fileno())
        manifest = self._read_manifest()
        if manifest is not None:
            sealed = int(manifest.get("n_records", 0))
            if sealed > len(self._events):
                raise DataError(
                    f"event log {self.path} holds {len(self._events)} "
                    f"records but its manifest seals {sealed}: committed "
                    f"events were lost"
                )

    def _read_manifest(self) -> Optional[dict]:
        if not self.manifest_path.exists():
            return None
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(
                f"corrupt event-log manifest at {self.manifest_path}: {exc}"
            ) from exc
        if manifest.get("version") != EVENT_LOG_VERSION:
            raise DataError(
                f"unsupported event-log version "
                f"{manifest.get('version')!r} in {self.manifest_path}"
            )
        return manifest

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, user: int, item: int) -> Event:
        """Durably commit one event; returns it with its assigned ``seq``.

        The record only counts as committed once fully written (torn
        tails are discarded on recovery), so the in-memory indexes are
        updated strictly after the write succeeds.
        """
        if self._handle is None:
            raise DataError(f"event log {self.path} is not open for appends")
        if user < 0 or item < 0:
            raise DataError(
                f"user and item must be non-negative, got ({user}, {item})"
            )
        if self.fault_injector is not None:
            self.fault_injector.on_write()  # type: ignore[attr-defined]
        event = Event(
            seq=len(self._events),
            user=int(user),
            item=int(item),
            ts=time.time(),
        )
        self._handle.write(event.to_line())
        self._handle.flush()
        self._unsynced += 1
        if self.fsync_policy == "always" or (
            self.fsync_policy == "interval"
            and self._unsynced >= self.fsync_every
        ):
            os.fsync(self._handle.fileno())
            self._unsynced = 0
        self._events.append(event)
        self._by_user.setdefault(event.user, []).append(event.seq)
        return event

    # ------------------------------------------------------------------
    # Replay views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Event]:
        """All committed events in append order (a copy)."""
        return list(self._events)

    def iter_events(self) -> Iterator[Event]:
        return iter(self._events)

    def events_for(self, user: int) -> List[int]:
        """The user's committed item stream in append order.

        This is the replay view :class:`~repro.serving.state.SessionStore`
        rehydrates from.
        """
        return [self._events[index].item for index in self._by_user.get(user, [])]

    def users(self) -> List[int]:
        """Sorted users with at least one committed event."""
        return sorted(self._by_user)

    # ------------------------------------------------------------------
    # Sealing / shutdown
    # ------------------------------------------------------------------
    def seal(self) -> Path:
        """Atomically record the committed length in the manifest.

        After a seal, a reopened log containing fewer records fails
        recovery — the sealed count is the durability floor.
        """
        return atomic_write_json(
            self.manifest_path,
            {
                "version": EVENT_LOG_VERSION,
                "n_records": len(self._events),
                "log": self.path.name,
            },
        )

    def close(self) -> None:
        """Fsync outstanding appends, seal, and release the file handle.

        A readonly log closes without sealing — inspection must never
        mutate the artifact it inspects.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0
            self._handle.close()
            self._handle = None
        if not self._readonly:
            self.seal()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventLog(path={str(self.path)!r}, n_events={len(self._events)}, "
            f"users={len(self._by_user)})"
        )


def scan_events(path: Union[str, Path]) -> Iterator[Event]:
    """Stream a log file's committed events in O(1) memory.

    Yields each :class:`Event` (timestamps included) in append order
    with the same validation :meth:`EventLog.open` applies — a torn
    final record ends the stream silently, interior corruption or a
    seq gap raises :class:`~repro.exceptions.DataError` — but without
    building the whole-log list or per-user index, so inspection and
    offline online-trainer rebuilds can walk logs far larger than
    memory. A sealed manifest is honoured: scanning fewer records than
    the seal pinned is data loss and raises.
    """
    path = Path(path)
    n_scanned = 0
    if path.exists():
        with path.open("r", encoding="utf-8") as handle:
            line = handle.readline()
            line_no = 0
            while line:
                pending = handle.readline()
                line_no += 1
                if not line.endswith("\n"):
                    # Final partial line: a torn write; never committed.
                    break
                event = _parse_line(line)
                if event is None:
                    if not pending:
                        # Corrupt *final* complete line: also a torn
                        # write (the newline made it, the payload tore).
                        break
                    raise DataError(
                        f"corrupt event record at {path}:{line_no} "
                        f"with valid records after it"
                    )
                if event.seq != n_scanned:
                    raise DataError(
                        f"event log {path} has non-contiguous seq "
                        f"{event.seq} at line {line_no} "
                        f"(expected {n_scanned})"
                    )
                n_scanned += 1
                yield event
                line = pending
    manifest_path = path.with_name(path.name + ".manifest.json")
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(
                f"corrupt event-log manifest at {manifest_path}: {exc}"
            ) from exc
        sealed = int(manifest.get("n_records", 0))
        if sealed > n_scanned:
            raise DataError(
                f"event log {path} holds {n_scanned} records but its "
                f"manifest seals {sealed}: committed events were lost"
            )
