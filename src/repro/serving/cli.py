"""The ``repro-serve`` command line: run and inspect the online service.

Three subcommands::

    repro-serve serve   --dataset gowalla --model recency --port 8423 \
                        --event-log runs/events.log
    repro-serve replay  --event-log runs/events.log --dataset gowalla
    repro-serve cluster --dataset gowalla --model recency --shards 4 \
                        --run-dir runs/cluster --port 8430

``serve`` builds a synthetic dataset, fits the chosen model on its
training prefixes, and serves recommendations over HTTP; with an event
log, a restarted server replays it and resumes with bit-identical
session state. ``replay`` opens a log read-only and prints what a
restarted server would rebuild — per-user replayed event counts and
state fingerprints — which is how operators verify recovery.
``cluster`` runs the fault-tolerant sharded deployment: N supervised
worker processes behind one router address, with heartbeat monitoring,
WAL-replay restarts, and graceful degradation (see
:mod:`repro.cluster`).

The same subcommands are also mounted on ``repro-experiments`` so the
whole toolbox stays reachable from one entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import SplitDataset, temporal_split
from repro.exceptions import ReproError
from repro.logging_utils import enable_console_logging, get_logger
from repro.models.base import Recommender
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.ppr import PPRRecommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.serving.events import EventLog, scan_events
from repro.serving.server import RecommendServer
from repro.serving.service import ServiceConfig, service_for_split
from repro.serving.state import SessionStore
from repro.synth.gowalla import generate_gowalla
from repro.synth.lastfm import generate_lastfm
from repro.tuning.defaults import ResolvedKnob, describe, knob, resolve, values_of
from repro.tuning.profile import load_profile_knobs

logger = get_logger("serving.cli")

#: Model names accepted by ``--model``.
MODEL_CHOICES = ("recency", "pop", "tsppr", "ppr", "fpmc")

#: Dataset names accepted by ``--dataset``.
DATASET_CHOICES = ("gowalla", "lastfm")

#: Registry knobs ``serve`` exposes as flags (argparse dest == knob name).
SERVE_KNOB_ARGS = (
    "batching",
    "max_batch",
    "max_wait_ms",
    "check_interval",
    "max_inflight_rows",
    "admission_wait_ms",
    "capacity",
    "store",
    "online",
    "online_lr",
    "online_batch",
)

#: Registry knobs ``cluster`` exposes (no micro-batch sizing flags).
CLUSTER_KNOB_ARGS = tuple(
    name for name in SERVE_KNOB_ARGS if name not in ("max_batch", "max_wait_ms")
)


def build_split(dataset: str, seed: int) -> SplitDataset:
    """The serving dataset: a laptop-scale synthetic split."""
    if dataset == "gowalla":
        data = generate_gowalla(
            random_state=seed, user_factor=0.12, length_factor=0.6
        )
    else:
        data = generate_lastfm(
            random_state=seed, user_factor=0.12, length_factor=0.6
        )
    return temporal_split(data)


def build_model(
    name: str, split: SplitDataset, max_epochs: int, seed: int
) -> Recommender:
    """Fit the requested recommender on the split's training prefixes."""
    if name == "recency":
        return RecencyRecommender().fit(split)
    if name == "pop":
        return PopRecommender().fit(split)
    config = TSPPRConfig(max_epochs=max_epochs, seed=seed)
    model = {
        "tsppr": TSPPRRecommender,
        "ppr": PPRRecommender,
        "fpmc": FPMCRecommender,
    }[name](config)
    logger.info("fitting %s (max_epochs=%d, seed=%d)", name, max_epochs, seed)
    return model.fit(split)


def _knob_flag_help(name: str) -> str:
    """Registry help + default, so flag docs never drift from the registry."""
    entry = knob("serving", name)
    return f"{entry.help} (default: {entry.default})"


def add_profile_argument(parser: argparse.ArgumentParser) -> None:
    """``--profile``: load tuned knob values written by the autotuner."""
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        help="machine profile written by 'repro-experiments tune'; knob "
        "precedence is CLI flag > profile > built-in default, and every "
        "resolved knob is logged with its provenance at startup",
    )


def resolve_knob_args(
    args: argparse.Namespace,
    subsystem: str,
    names: Sequence[str],
    required: bool = True,
) -> "dict[str, ResolvedKnob]":
    """Resolve a subcommand's knob flags against its profile (if any).

    ``names`` lists the argparse dests (== knob names) the subcommand
    exposes; their parser defaults are ``None`` sentinels, so only knobs
    the user explicitly set override the profile.
    """
    cli = {
        name: getattr(args, name)
        for name in names
        if getattr(args, name, None) is not None
    }
    profile_path = getattr(args, "profile", None)
    profile_knobs = (
        load_profile_knobs(profile_path, subsystem, required=required)
        if profile_path is not None
        else {}
    )
    resolved = resolve(subsystem, cli=cli, profile=profile_knobs)
    logger.info(
        "resolved %s knobs%s: %s",
        subsystem,
        f" (profile {profile_path})" if profile_path is not None else "",
        describe(resolved),
    )
    return resolved


def add_store_arguments(
    parser: argparse.ArgumentParser, include_dir: bool = True
) -> None:
    """History-backing options shared by serve, cluster, and replay."""
    parser.add_argument(
        "--store",
        default=None,
        choices=knob("serving", "store").choices,
        help=_knob_flag_help("store"),
    )
    if include_dir:
        parser.add_argument(
            "--store-dir",
            type=Path,
            default=None,
            help="arena-mmap only: directory for the packed columns "
            "(default: a fresh temporary directory)",
        )


def add_online_arguments(
    parser: argparse.ArgumentParser, include_checkpoint_dir: bool = False
) -> None:
    """Online-learning options shared by serve, cluster, and replay."""
    parser.add_argument(
        "--online",
        default=None,
        choices=knob("serving", "online").choices,
        help=_knob_flag_help("online"),
    )
    parser.add_argument(
        "--online-lr",
        type=float,
        default=None,
        help=_knob_flag_help("online_lr"),
    )
    parser.add_argument(
        "--online-batch",
        type=int,
        default=None,
        help=_knob_flag_help("online_batch"),
    )
    if include_checkpoint_dir:
        parser.add_argument(
            "--online-checkpoint-dir",
            type=Path,
            default=None,
            help="directory for atomic checksummed online checkpoints; a "
            "restart resumes from the newest one and replays only the "
            "WAL suffix behind it",
        )


def add_batching_arguments(parser: argparse.ArgumentParser) -> None:
    """Scoring-loop options shared by ``serve`` and ``cluster``."""
    parser.add_argument(
        "--batching",
        default=None,
        choices=knob("serving", "batching").choices,
        help=_knob_flag_help("batching"),
    )
    parser.add_argument(
        "--check-interval",
        type=int,
        default=None,
        help=_knob_flag_help("check_interval"),
    )
    parser.add_argument(
        "--max-inflight-rows",
        type=int,
        default=None,
        help=_knob_flag_help("max_inflight_rows"),
    )
    parser.add_argument(
        "--admission-wait-ms",
        type=float,
        default=None,
        help=_knob_flag_help("admission_wait_ms"),
    )


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """``serve`` options, shared by repro-serve and repro-experiments."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8423, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--dataset",
        default="gowalla",
        choices=DATASET_CHOICES,
        help="synthetic dataset providing the base histories",
    )
    parser.add_argument(
        "--model",
        default="recency",
        choices=MODEL_CHOICES,
        help="recommender to serve (learned models are fitted at startup)",
    )
    parser.add_argument(
        "--event-log",
        type=Path,
        default=None,
        help="write-ahead event log path (enables crash recovery by replay)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help=_knob_flag_help("capacity"),
    )
    add_store_arguments(parser)
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help=_knob_flag_help("max_batch"),
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=None,
        help=_knob_flag_help("max_wait_ms"),
    )
    add_batching_arguments(parser)
    add_online_arguments(parser, include_checkpoint_dir=True)
    add_profile_argument(parser)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline; missed deadlines fall back "
        "to the Recency baseline",
    )
    parser.add_argument(
        "--max-epochs",
        type=int,
        default=3000,
        help="training budget for learned models (tsppr/ppr/fpmc)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset/model seed"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="dump a metrics snapshot to this JSON file on shutdown",
    )


def add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    """``cluster`` options, shared by repro-serve and repro-experiments."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8430,
        help="router bind port (0 = ephemeral); workers always bind "
        "ephemeral ports and publish them to the run directory",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="number of worker processes"
    )
    parser.add_argument(
        "--run-dir",
        type=Path,
        default=Path("runs/cluster"),
        help="directory for per-shard event logs and endpoint files",
    )
    parser.add_argument(
        "--dataset",
        default="gowalla",
        choices=DATASET_CHOICES,
        help="synthetic dataset providing the base histories",
    )
    parser.add_argument(
        "--model",
        default="recency",
        choices=MODEL_CHOICES,
        help="recommender to serve (fitted once, inherited by every shard)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="per-shard " + _knob_flag_help("capacity"),
    )
    # The supervisor owns the packed-column location (run_dir/arena), so
    # the cluster form has no --store-dir.
    add_store_arguments(parser, include_dir=False)
    parser.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="consistent-hash ring points per shard",
    )
    parser.add_argument(
        "--fsync-policy",
        default="always",
        choices=("always", "interval", "never"),
        help="durability policy of every shard WAL",
    )
    add_batching_arguments(parser)
    # Shards are checkpoint-less: a restarted worker catches its model
    # up by replaying its shard WAL, which recovery already guarantees
    # rebuilds session state — and now factors — bit-identically.
    add_online_arguments(parser)
    add_profile_argument(parser)
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.25,
        help="seconds between supervisor health probes",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline on every shard",
    )
    parser.add_argument(
        "--max-epochs",
        type=int,
        default=3000,
        help="training budget for learned models (tsppr/ppr/fpmc)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset/model seed"
    )


def add_replay_arguments(parser: argparse.ArgumentParser) -> None:
    """``replay`` options, shared by repro-serve and repro-experiments."""
    parser.add_argument(
        "--event-log",
        type=Path,
        required=True,
        help="event log to inspect (opened read-only)",
    )
    parser.add_argument(
        "--dataset",
        default="gowalla",
        choices=DATASET_CHOICES,
        help="dataset providing the base histories replayed under the log",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset seed (must match serve)"
    )
    add_store_arguments(parser)
    add_online_arguments(parser)
    parser.add_argument(
        "--model",
        default="tsppr",
        choices=MODEL_CHOICES,
        help="model to rebuild when --online isgd (must match serve)",
    )
    parser.add_argument(
        "--max-epochs",
        type=int,
        default=3000,
        help="training budget for the --online isgd model rebuild",
    )
    add_profile_argument(parser)
    parser.add_argument(
        "--user",
        type=int,
        default=None,
        help="only report this user (default: every user in the log)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online repeat-consumption recommendation service.",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        help="console log level (debug, info, warning, error)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    serve_parser = subparsers.add_parser(
        "serve", help="fit a model and serve recommendations over HTTP"
    )
    add_serve_arguments(serve_parser)
    replay_parser = subparsers.add_parser(
        "replay", help="rebuild session state from an event log and report it"
    )
    add_replay_arguments(replay_parser)
    cluster_parser = subparsers.add_parser(
        "cluster",
        help="run the fault-tolerant sharded cluster behind one router",
    )
    add_cluster_arguments(cluster_parser)
    return parser


def run_serve(args: argparse.Namespace) -> int:
    """Build split + model + service and serve until interrupted."""
    resolved = resolve_knob_args(args, "serving", SERVE_KNOB_ARGS)
    knobs = values_of(resolved)
    print(f"resolved serving knobs: {describe(resolved)}")
    split = build_split(args.dataset, args.seed)
    model = build_model(args.model, split, args.max_epochs, args.seed)
    event_log = (
        EventLog.open(args.event_log) if args.event_log is not None else None
    )
    config = ServiceConfig(
        default_deadline_ms=args.deadline_ms,
        batching=str(knobs["batching"]),
        max_batch=int(knobs["max_batch"]),  # type: ignore[arg-type]
        max_wait_ms=float(knobs["max_wait_ms"]),  # type: ignore[arg-type]
        check_interval=int(knobs["check_interval"]),  # type: ignore[arg-type]
        max_inflight_rows=int(knobs["max_inflight_rows"]),  # type: ignore[arg-type]
        admission_wait_ms=float(knobs["admission_wait_ms"]),  # type: ignore[arg-type]
        n_items=split.n_items,
        online=str(knobs["online"]),
        online_lr=float(knobs["online_lr"]),  # type: ignore[arg-type]
        online_batch=int(knobs["online_batch"]),  # type: ignore[arg-type]
    )
    service = service_for_split(
        model,
        split,
        event_log=event_log,
        config=config,
        capacity=int(knobs["capacity"]),  # type: ignore[arg-type]
        store=str(knobs["store"]),
        store_dir=(
            str(args.store_dir) if args.store_dir is not None else None
        ),
        online_checkpoint_dir=(
            str(args.online_checkpoint_dir)
            if args.online_checkpoint_dir is not None
            else None
        ),
    )
    if event_log is not None and len(event_log):
        logger.info(
            "recovered %d event(s) across %d user(s) from %s",
            len(event_log), len(event_log.users()), args.event_log,
        )
    server = RecommendServer(service, host=args.host, port=args.port)
    print(f"serving {args.model} on {server.url} (dataset {args.dataset})")
    try:
        server.serve_forever()
    finally:
        if args.metrics_out is not None:
            service.metrics.dump(
                args.metrics_out, service.store.counters.as_dict()
            )
            logger.info("metrics written to %s", args.metrics_out)
    return 0


def run_cluster(args: argparse.Namespace) -> int:
    """Spin up supervisor + workers + router and serve until interrupted."""
    # Imported here so the plain serve/replay paths never pay for (or
    # depend on) the cluster machinery.
    from repro.cluster.router import ClusterRouter
    from repro.cluster.supervisor import ShardSupervisor

    resolved = resolve_knob_args(args, "cluster", CLUSTER_KNOB_ARGS)
    knobs = values_of(resolved)
    print(f"resolved cluster knobs: {describe(resolved)}")
    split = build_split(args.dataset, args.seed)
    model = build_model(args.model, split, args.max_epochs, args.seed)
    config = ServiceConfig(
        default_deadline_ms=args.deadline_ms,
        batching=str(knobs["batching"]),
        check_interval=int(knobs["check_interval"]),  # type: ignore[arg-type]
        max_inflight_rows=int(knobs["max_inflight_rows"]),  # type: ignore[arg-type]
        admission_wait_ms=float(knobs["admission_wait_ms"]),  # type: ignore[arg-type]
        n_items=split.n_items,
        online=str(knobs["online"]),
        online_lr=float(knobs["online_lr"]),  # type: ignore[arg-type]
        online_batch=int(knobs["online_batch"]),  # type: ignore[arg-type]
    )
    supervisor = ShardSupervisor(
        split,
        model,
        config,
        n_shards=args.shards,
        run_dir=args.run_dir,
        capacity=int(knobs["capacity"]),  # type: ignore[arg-type]
        host=args.host,
        vnodes=args.vnodes,
        heartbeat_interval_s=args.heartbeat_interval,
        fsync_policy=args.fsync_policy,
        store=str(knobs["store"]),
    )
    supervisor.start()
    router = ClusterRouter(supervisor, host=args.host, port=args.port)
    print(
        f"cluster: {args.shards} shard(s) of {args.model} behind "
        f"{router.url} (dataset {args.dataset}, run dir {args.run_dir})"
    )
    try:
        router.serve_forever()
    finally:
        supervisor.close()
    return 0


def run_replay_online(args: argparse.Namespace) -> int:
    """Rebuild the online-updated *model* from the log, streaming.

    Refits the frozen model exactly as ``serve`` did, then streams the
    log's committed events — via :func:`scan_events`, one record at a
    time, never loading a segment into memory — through an
    :class:`~repro.online.trainer.OnlineTrainer`. The printed
    fingerprint must equal the crashed server's live one: the
    operator-facing form of the replay-identity invariant.
    """
    from repro.online.trainer import OnlineTrainer

    resolved = resolve_knob_args(
        args, "serving", ("online_lr", "online_batch"), required=False
    )
    split = build_split(args.dataset, args.seed)
    model = build_model(args.model, split, args.max_epochs, args.seed)
    trainer = OnlineTrainer(
        model,
        learning_rate=float(resolved["online_lr"].value),
        batch_window=int(resolved["online_batch"].value),
    )

    def base_history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    window = WindowConfig()
    store = SessionStore(
        window.window_size,
        window.min_gap,
        capacity=max(split.n_users, 1),
        history_provider=base_history,
    )
    ts_seen = []

    def stream():
        for event in scan_events(args.event_log):
            if event.ts is not None:
                if not ts_seen:
                    ts_seen.append(event.ts)
                    ts_seen.append(event.ts)
                ts_seen[1] = event.ts
            yield event

    n_events = trainer.replay(stream(), store)
    span = (
        f", event ts {ts_seen[0]:.3f} .. {ts_seen[1]:.3f} "
        f"({ts_seen[1] - ts_seen[0]:.1f}s span)"
        if ts_seen
        else ""
    )
    print(
        f"online rebuild ({args.model}): replayed {n_events} event(s)"
        f"{span}"
    )
    print(f"model fingerprint={trainer.model_fingerprint()}")
    return 0


def run_replay(args: argparse.Namespace) -> int:
    """Rebuild per-user state from the log and print fingerprints."""
    if not args.event_log.exists():
        print(f"event log not found: {args.event_log}", file=sys.stderr)
        return 1
    online = args.online if args.online is not None else "off"
    if online != "off":
        return run_replay_online(args)
    resolved = resolve_knob_args(
        args, "serving", ("store",), required=False
    )
    log = EventLog.open(args.event_log, readonly=True)
    split = build_split(args.dataset, args.seed)
    provider = split.history_store(
        kind=str(resolved["store"].value),
        base="train",
        directory=(
            str(args.store_dir) if args.store_dir is not None else None
        ),
    )
    window = WindowConfig()
    store = SessionStore(
        window.window_size,
        window.min_gap,
        capacity=max(len(log.users()), 1),
        history_provider=provider,
        event_source=log.events_for,
    )
    users = [args.user] if args.user is not None else log.users()
    print(
        f"event log {args.event_log}: {len(log)} committed event(s), "
        f"{len(log.users())} user(s)"
        + (
            f", {log.n_discarded_tail} torn record discarded"
            if log.n_discarded_tail
            else ""
        )
    )
    for user in users:
        session = store.get(user)
        print(
            f"user {user}: replayed {session.n_live_events} event(s), "
            f"t={session.t}, fingerprint={session.state_fingerprint()}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        enable_console_logging(args.log_level)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        if args.command == "serve":
            return run_serve(args)
        if args.command == "cluster":
            return run_cluster(args)
        return run_replay(args)
    except ReproError as exc:
        logger.error("%s", exc)
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
