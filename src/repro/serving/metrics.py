"""Serving observability: latency histograms and request counters.

Everything the service measures lands here: request/event/fallback/error
counters, micro-batch occupancy, and fixed-bucket latency histograms
with p50/p95/p99 estimates. The whole registry renders to one plain
dict, which is what the HTTP ``/metrics`` endpoint returns and what
:meth:`ServingMetrics.dump` writes (atomically, via the resilience
layer) next to the experiment journals so a benchmark run leaves a
machine-readable latency table behind.

Histograms use ~60 log-spaced bucket bounds between 10µs and 60s;
percentiles report the upper bound of the bucket containing the rank,
i.e. a ≤8% overestimate — the right bias for latency SLOs.
"""

from __future__ import annotations

import bisect
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.resilience.atomic import atomic_write_json


def _default_bounds() -> List[float]:
    """Log-spaced bucket upper bounds (seconds), ~8% apart, 10µs → 60s."""
    bounds: List[float] = []
    value = 1e-5
    while value < 60.0:
        bounds.append(value)
        value *= 1.08
    bounds.append(60.0)
    return bounds


class LatencyHistogram:
    """Fixed-bucket histogram of durations in seconds.

    Observations beyond the last bound land in a +inf overflow bucket;
    percentile estimates then report the last finite bound.
    """

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        self.bounds = list(bounds) if bounds is not None else _default_bounds()
        if sorted(self.bounds) != self.bounds or not self.bounds:
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self.bounds, seconds)
        self.counts[index] += 1
        self.n += 1
        self.total += seconds
        if seconds > self.max_seen:
            self.max_seen = seconds

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0..1)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        rank = max(1, int(q * self.n + 0.5))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        """count/mean/max plus the standard p50/p95/p99, in milliseconds."""
        mean = (self.total / self.n) if self.n else 0.0
        return {
            "count": self.n,
            "mean_ms": round(1e3 * mean, 4),
            "p50_ms": round(1e3 * self.percentile(0.50), 4),
            "p95_ms": round(1e3 * self.percentile(0.95), 4),
            "p99_ms": round(1e3 * self.percentile(0.99), 4),
            "max_ms": round(1e3 * self.max_seen, 4),
        }


class ServingMetrics:
    """Thread-safe registry of every number the service exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests": 0,
            "events": 0,
            "recommendations": 0,
            "empty_candidate_requests": 0,
            "deadline_fallbacks": 0,
            "errors": 0,
            "batches": 0,
            "batched_requests": 0,
        }
        self._histograms: Dict[str, LatencyHistogram] = {
            "request_latency": LatencyHistogram(),
            "scoring_latency": LatencyHistogram(),
        }

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def as_dict(
        self, store_counters: Optional[Dict[str, float]] = None
    ) -> Dict[str, object]:
        """One JSON-ready snapshot: counters, histograms, cache stats."""
        with self._lock:
            counters = dict(self._counters)
            latencies = {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }
        batches = counters.get("batches", 0)
        payload: Dict[str, object] = {
            "counters": counters,
            "latency": latencies,
            "mean_batch_size": (
                round(counters.get("batched_requests", 0) / batches, 3)
                if batches
                else 0.0
            ),
        }
        if store_counters is not None:
            payload["session_cache"] = store_counters
        return payload

    def dump(
        self,
        path: Union[str, Path],
        store_counters: Optional[Dict[str, float]] = None,
    ) -> Path:
        """Atomically write the snapshot as JSON (crash-safe, journal-style)."""
        return atomic_write_json(path, self.as_dict(store_counters))
