"""Serving observability: latency histograms and request counters.

Everything the service measures lands here: request/event/fallback/error
counters, micro-batch occupancy, and fixed-bucket latency histograms
with p50/p95/p99 estimates. The whole registry renders to one plain
dict, which is what the HTTP ``/metrics`` endpoint returns and what
:meth:`ServingMetrics.dump` writes (atomically, via the resilience
layer) next to the experiment journals so a benchmark run leaves a
machine-readable latency table behind.

Histograms use ~60 log-spaced bucket bounds between 10µs and 60s;
percentiles report the upper bound of the bucket containing the rank,
i.e. a ≤8% overestimate — the right bias for latency SLOs.

Histograms are **exactly mergeable**: all internal state is integral
(bucket counts, totals in integer nanoseconds), so merging shard
snapshots is associative and order-independent — the cluster router's
``/metrics`` aggregation via :func:`merge_snapshots` is exact, not an
approximation.

Besides durations, the in-flight batching loop samples *depth-like*
integers at every kernel boundary — request-queue depth and
packed-batch occupancy (live candidate rows). Those land in
:class:`GaugeStats`: count/total/max in plain integers, so the same
exact-merge guarantee holds for the ``gauges`` block of a snapshot.
"""

from __future__ import annotations

import bisect
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.resilience.atomic import atomic_write_json


def _default_bounds() -> List[float]:
    """Log-spaced bucket upper bounds (seconds), ~8% apart, 10µs → 60s."""
    bounds: List[float] = []
    value = 1e-5
    while value < 60.0:
        bounds.append(value)
        value *= 1.08
    bounds.append(60.0)
    return bounds


class LatencyHistogram:
    """Fixed-bucket histogram of durations in seconds.

    Observations beyond the last bound land in a +inf overflow bucket;
    percentile estimates then report the last finite bound.
    """

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        self.bounds = list(bounds) if bounds is not None else _default_bounds()
        if sorted(self.bounds) != self.bounds or not self.bounds:
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.n = 0
        # Totals/extrema in integer nanoseconds: integer addition is
        # associative and exact, which is what makes cross-shard merges
        # independent of merge order.
        self.total_ns = 0
        self.max_ns = 0

    @property
    def total(self) -> float:
        """Sum of observations in seconds."""
        return self.total_ns / 1e9

    @property
    def max_seen(self) -> float:
        """Largest observation in seconds."""
        return self.max_ns / 1e9

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self.bounds, seconds)
        self.counts[index] += 1
        self.n += 1
        nanos = int(round(seconds * 1e9))
        self.total_ns += nanos
        if nanos > self.max_ns:
            self.max_ns = nanos

    # ------------------------------------------------------------------
    # Exact merging (cross-shard aggregation)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-ready full state; :meth:`from_state` round-trips it."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "n": self.n,
            "total_ns": self.total_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencyHistogram":
        histogram = cls(bounds=[float(b) for b in state["bounds"]])  # type: ignore[union-attr]
        counts = [int(c) for c in state["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram state has {len(counts)} buckets, "
                f"bounds imply {len(histogram.counts)}"
            )
        histogram.counts = counts
        histogram.n = int(state["n"])  # type: ignore[arg-type]
        histogram.total_ns = int(state["total_ns"])  # type: ignore[arg-type]
        histogram.max_ns = int(state["max_ns"])  # type: ignore[arg-type]
        return histogram

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` in. Exact: only integer adds and a max."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.n += other.n
        self.total_ns += other.total_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        return self

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0..1)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        rank = max(1, int(q * self.n + 0.5))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        """count/mean/max plus the standard p50/p95/p99, in milliseconds."""
        mean = (self.total / self.n) if self.n else 0.0
        return {
            "count": self.n,
            "mean_ms": round(1e3 * mean, 4),
            "p50_ms": round(1e3 * self.percentile(0.50), 4),
            "p95_ms": round(1e3 * self.percentile(0.95), 4),
            "p99_ms": round(1e3 * self.percentile(0.99), 4),
            "max_ms": round(1e3 * self.max_seen, 4),
        }


class GaugeStats:
    """Exactly mergeable summary of an integer-valued gauge.

    Queue depth and batch occupancy are sampled at kernel boundaries;
    what matters operationally is how deep they run on average and at
    worst. State is three integers (count, total, max), so merging is
    associative, order-independent, and lossless — the same contract as
    :class:`LatencyHistogram`, for depth-like numbers.
    """

    __slots__ = ("n", "total", "max_seen")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0
        self.max_seen = 0

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError(f"gauge samples must be non-negative, got {value}")
        self.n += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    def state_dict(self) -> Dict[str, int]:
        """JSON-ready full state; :meth:`from_state` round-trips it."""
        return {"n": self.n, "total": self.total, "max": self.max_seen}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "GaugeStats":
        gauge = cls()
        gauge.n = int(state["n"])  # type: ignore[arg-type]
        gauge.total = int(state["total"])  # type: ignore[arg-type]
        gauge.max_seen = int(state["max"])  # type: ignore[arg-type]
        return gauge

    def merge(self, other: "GaugeStats") -> "GaugeStats":
        """Fold ``other`` in. Exact: integer adds and a max."""
        self.n += other.n
        self.total += other.total
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.n,
            "mean": round(self.total / self.n, 3) if self.n else 0.0,
            "max": self.max_seen,
        }


class ServingMetrics:
    """Thread-safe registry of every number the service exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests": 0,
            "events": 0,
            "recommendations": 0,
            "empty_candidate_requests": 0,
            "scored_answers": 0,
            "fallback_answers": 0,
            "deadline_fallbacks": 0,
            "fallbacks_queue_expired": 0,
            "fallbacks_scoring_overrun": 0,
            "duplicate_events": 0,
            "errors": 0,
            "batches": 0,
            "batched_requests": 0,
        }
        self._histograms: Dict[str, LatencyHistogram] = {
            "request_latency": LatencyHistogram(),
            "scoring_latency": LatencyHistogram(),
            "admission_wait": LatencyHistogram(),
        }
        self._gauges: Dict[str, GaugeStats] = {
            "queue_depth": GaugeStats(),
            "batch_occupancy_rows": GaugeStats(),
            "inflight_requests": GaugeStats(),
        }

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def observe_gauge(self, name: str, value: int) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = GaugeStats()
            gauge.observe(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def as_dict(
        self, store_counters: Optional[Dict[str, float]] = None
    ) -> Dict[str, object]:
        """One JSON-ready snapshot: counters, histograms, cache stats."""
        with self._lock:
            counters = dict(self._counters)
            latencies = {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }
            states = {
                name: histogram.state_dict()
                for name, histogram in self._histograms.items()
            }
            gauges = {
                name: gauge.summary() for name, gauge in self._gauges.items()
            }
            gauge_states = {
                name: gauge.state_dict()
                for name, gauge in self._gauges.items()
            }
        batches = counters.get("batches", 0)
        payload: Dict[str, object] = {
            "counters": counters,
            "latency": latencies,
            "histogram_state": states,
            "gauges": gauges,
            "gauge_state": gauge_states,
            "mean_batch_size": (
                round(counters.get("batched_requests", 0) / batches, 3)
                if batches
                else 0.0
            ),
        }
        if store_counters is not None:
            payload["session_cache"] = store_counters
        return payload

    def dump(
        self,
        path: Union[str, Path],
        store_counters: Optional[Dict[str, float]] = None,
    ) -> Path:
        """Atomically write the snapshot as JSON (crash-safe, journal-style)."""
        return atomic_write_json(path, self.as_dict(store_counters))


#: session_cache keys that merge by summation (hit_rate is derived).
_CACHE_SUM_KEYS = ("hits", "misses", "evictions", "rehydrations")


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Exactly merge :meth:`ServingMetrics.as_dict` payloads.

    The cluster router aggregates its shards' ``/metrics`` snapshots
    with this. Counters and histogram states sum; derived values
    (percentile summaries, hit rate, mean batch size) are recomputed
    from the merged exact state — so the result is associative and
    independent of shard order: ``merge([a, merge([b, c])])``,
    ``merge([merge([a, b]), c])``, and ``merge`` over any permutation
    all produce the same payload (the property test in
    ``tests/test_serving_metrics.py`` pins this).
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, LatencyHistogram] = {}
    gauges: Dict[str, GaugeStats] = {}
    cache: Dict[str, float] = {}
    saw_cache = False
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            counters[name] = counters.get(name, 0) + int(value)
        for name, state in snapshot.get("histogram_state", {}).items():  # type: ignore[union-attr]
            incoming = LatencyHistogram.from_state(state)
            if name in histograms:
                histograms[name].merge(incoming)
            else:
                histograms[name] = incoming
        for name, state in snapshot.get("gauge_state", {}).items():  # type: ignore[union-attr]
            incoming_gauge = GaugeStats.from_state(state)
            if name in gauges:
                gauges[name].merge(incoming_gauge)
            else:
                gauges[name] = incoming_gauge
        session_cache = snapshot.get("session_cache")
        if session_cache is not None:
            saw_cache = True
            for key in _CACHE_SUM_KEYS:
                cache[key] = cache.get(key, 0) + session_cache.get(key, 0)  # type: ignore[union-attr]
    batches = counters.get("batches", 0)
    payload: Dict[str, object] = {
        "counters": {name: counters[name] for name in sorted(counters)},
        "latency": {
            name: histograms[name].summary() for name in sorted(histograms)
        },
        "histogram_state": {
            name: histograms[name].state_dict() for name in sorted(histograms)
        },
        "gauges": {name: gauges[name].summary() for name in sorted(gauges)},
        "gauge_state": {
            name: gauges[name].state_dict() for name in sorted(gauges)
        },
        "mean_batch_size": (
            round(counters.get("batched_requests", 0) / batches, 3)
            if batches
            else 0.0
        ),
    }
    if saw_cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = (cache.get("hits", 0) / lookups) if lookups else 0.0
        payload["session_cache"] = cache
    return payload
