"""Crash safety: atomic persistence, checkpoint/resume, fault injection.

The paper's Algorithm 1 is a long-running SGD loop and the evidence
runs chain a dozen trainings back-to-back; this subsystem makes both
survive crashes:

* :mod:`repro.resilience.atomic` — temp-file + fsync + rename writes
  with sha256 checksums, used by every durable artifact.
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointManager`
  snapshots of SGD state (parameters, RNG, counters, margin history)
  enabling bit-identical resume via ``fit(checkpoint_dir=...)``.
* :mod:`repro.resilience.journal` — :class:`RunJournal`, the
  per-experiment status book behind ``repro-experiments run --resume``.
* :mod:`repro.resilience.faults` — deterministic
  :class:`FaultInjector` / :class:`CrashingFile` used by the tests to
  prove the above under adversarial crash points, and
  :class:`ProcessFaultInjector`, which kills/hangs live worker
  processes for the serving cluster's chaos suite.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    sha256_bytes,
    sha256_file,
)
from repro.resilience.checkpoint import (
    CheckpointManager,
    TrainingState,
)
from repro.resilience.faults import (
    CrashingFile,
    FaultInjected,
    FaultInjector,
    ProcessFaultInjector,
)
from repro.resilience.journal import JournalEntry, RunJournal

__all__ = [
    "CheckpointManager",
    "CrashingFile",
    "FaultInjected",
    "FaultInjector",
    "JournalEntry",
    "ProcessFaultInjector",
    "RunJournal",
    "TrainingState",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
    "sha256_bytes",
    "sha256_file",
]
