"""Per-experiment run journal for resumable evidence runs.

``repro-experiments run all`` chains a dozen trainings back-to-back; a
crash in experiment nine used to force rerunning the first eight. The
journal records each experiment's lifecycle status —

    pending -> running -> done | failed

— in one JSON document that is rewritten atomically on every
transition, so no crash point can corrupt it. ``--resume`` then skips
``done`` entries and reruns the rest; ``failed`` entries carry the last
error message and an attempt counter, feeding the CLI's retry loop and
its exit code (nonzero iff anything remains failed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ExperimentError
from repro.resilience.atomic import atomic_write_json

#: Journal schema version; bump on breaking layout changes.
JOURNAL_VERSION = 1

#: Valid lifecycle states, in progression order.
STATUSES = ("pending", "running", "done", "failed")


@dataclass
class JournalEntry:
    """Lifecycle record of one experiment."""

    status: str = "pending"
    attempts: int = 0
    error: Optional[str] = None


class RunJournal:
    """Atomic, crash-safe status book for an experiment run.

    Every :meth:`mark` persists the whole document via the atomic-write
    layer, so readers (including a restarted CLI) always see a
    consistent journal.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, JournalEntry] = {}

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunJournal":
        """Read a journal, or start an empty one if the file is absent.

        Raises
        ------
        ExperimentError
            If the file exists but is truncated, not JSON, has an
            unsupported version, or contains an unknown status.
        """
        journal = cls(path)
        if not journal.path.exists():
            return journal
        try:
            payload = json.loads(journal.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(
                f"corrupt run journal at {journal.path}: {exc}"
            ) from exc
        if payload.get("journal_version") != JOURNAL_VERSION:
            raise ExperimentError(
                f"unsupported journal version "
                f"{payload.get('journal_version')!r} in {journal.path}"
            )
        for experiment_id, entry in payload.get("experiments", {}).items():
            status = entry.get("status", "pending")
            if status not in STATUSES:
                raise ExperimentError(
                    f"unknown status {status!r} for {experiment_id!r} "
                    f"in {journal.path}"
                )
            journal._entries[experiment_id] = JournalEntry(
                status=status,
                attempts=int(entry.get("attempts", 0)),
                error=entry.get("error"),
            )
        return journal

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark(
        self,
        experiment_id: str,
        status: str,
        error: Optional[str] = None,
    ) -> JournalEntry:
        """Set an experiment's status and persist the journal atomically.

        Marking ``running`` increments the attempt counter; marking
        anything but ``failed`` clears any recorded error.
        """
        if status not in STATUSES:
            raise ExperimentError(
                f"unknown journal status {status!r}; valid: {STATUSES}"
            )
        entry = self._entries.setdefault(experiment_id, JournalEntry())
        if status == "running":
            entry.attempts += 1
        entry.status = status
        entry.error = error if status == "failed" else None
        self.save()
        return entry

    def save(self) -> Path:
        """Atomically rewrite the journal document."""
        payload = {
            "journal_version": JOURNAL_VERSION,
            "experiments": {
                experiment_id: {
                    "status": entry.status,
                    "attempts": entry.attempts,
                    "error": entry.error,
                }
                for experiment_id, entry in sorted(self._entries.items())
            },
        }
        return atomic_write_json(self.path, payload)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status_of(self, experiment_id: str) -> str:
        """Current status (``"pending"`` for never-seen experiments)."""
        entry = self._entries.get(experiment_id)
        return entry.status if entry is not None else "pending"

    def entry(self, experiment_id: str) -> JournalEntry:
        """The full record for one experiment (default-pending)."""
        return self._entries.get(experiment_id, JournalEntry())

    def counts(self) -> Dict[str, int]:
        """``status -> count`` over all recorded experiments."""
        totals = {status: 0 for status in STATUSES}
        for entry in self._entries.values():
            totals[entry.status] += 1
        return totals

    def failed_ids(self) -> List[str]:
        """Sorted ids whose latest status is ``failed``."""
        return sorted(
            experiment_id
            for experiment_id, entry in self._entries.items()
            if entry.status == "failed"
        )

    def __len__(self) -> int:
        return len(self._entries)
