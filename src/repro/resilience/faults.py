"""Deterministic fault injection for crash-safety tests.

The resilience guarantees of this library — resume-equals-uninterrupted
training, never-torn persistence — are only worth anything if tests can
*kill the process at an adversarial moment* and watch recovery happen.
:class:`FaultInjector` provides exactly that: deterministic "crash at
update K" / "raise on write M" triggers threaded through the SGD loop
and the atomic-write layer, plus :class:`CrashingFile`, a file wrapper
that tears a write mid-payload to simulate a power cut.

Crash points can be pinned explicitly or derived from a seed
(:meth:`FaultInjector.from_seed`), so property-style tests can sweep
arbitrary crash moments while staying reproducible.
"""

from __future__ import annotations

import os
import signal
from typing import IO, Any, List, Optional, Tuple

import numpy as np


class FaultInjected(RuntimeError):
    """Raised when a scheduled fault fires.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`:
    production error handling that catches the library's exception
    hierarchy must never swallow an injected crash, otherwise the
    crash-safety tests would prove nothing.
    """


class FaultInjector:
    """Counts updates/writes and raises at pre-registered crash points.

    Parameters
    ----------
    crash_at_update:
        Raise :class:`FaultInjected` when the K-th SGD update is about
        to run (updates 1..K-1 execute, update K never does).
    crash_on_write:
        Raise when the M-th persistence write is about to run; the
        atomic-write layer guarantees the target file is untouched.

    Either trigger may be ``None`` (disabled). Counters keep advancing
    after a fault fires, but each trigger fires at most once per
    :meth:`reset`.
    """

    def __init__(
        self,
        crash_at_update: Optional[int] = None,
        crash_on_write: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("crash_at_update", crash_at_update),
            ("crash_on_write", crash_on_write),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.crash_at_update = crash_at_update
        self.crash_on_write = crash_on_write
        self.updates_seen = 0
        self.writes_seen = 0

    @classmethod
    def from_seed(
        cls,
        seed: int,
        max_update: Optional[int] = None,
        max_write: Optional[int] = None,
    ) -> "FaultInjector":
        """Derive crash points deterministically from ``seed``.

        Each enabled trigger is drawn uniformly from ``[1, max_*]``, so
        sweeping seeds sweeps arbitrary-but-reproducible crash moments.
        """
        rng = np.random.default_rng(seed)
        crash_at_update = (
            int(rng.integers(1, max_update + 1)) if max_update else None
        )
        crash_on_write = (
            int(rng.integers(1, max_write + 1)) if max_write else None
        )
        return cls(
            crash_at_update=crash_at_update, crash_on_write=crash_on_write
        )

    def on_update(self) -> None:
        """Hook called by the SGD loop before each update."""
        self.updates_seen += 1
        if self.updates_seen == self.crash_at_update:
            raise FaultInjected(
                f"injected crash at update {self.updates_seen}"
            )

    def on_write(self) -> None:
        """Hook called by the persistence layer before each write."""
        self.writes_seen += 1
        if self.writes_seen == self.crash_on_write:
            raise FaultInjected(f"injected crash at write {self.writes_seen}")

    def disarm(self) -> None:
        """Disable both triggers (counters keep running)."""
        self.crash_at_update = None
        self.crash_on_write = None

    def reset(self) -> None:
        """Zero the counters so the triggers can fire again."""
        self.updates_seen = 0
        self.writes_seen = 0

    def __repr__(self) -> str:
        return (
            f"FaultInjector(crash_at_update={self.crash_at_update}, "
            f"crash_on_write={self.crash_on_write}, "
            f"updates_seen={self.updates_seen}, writes_seen={self.writes_seen})"
        )


class ProcessFaultInjector:
    """Kill or hang *live worker processes* — the cluster chaos hooks.

    Where :class:`FaultInjector` crashes code paths inside one process,
    this one attacks whole processes, which is what the sharded serving
    cluster must survive:

    * :meth:`kill` delivers ``SIGKILL`` — no atexit, no log seal, no
      graceful anything; exactly the hard-crash the WAL-replay restart
      path is specified against;
    * :meth:`hang` arms a worker's ``/admin/hang`` gate over HTTP, so
      every subsequent request (including health checks) stalls — the
      slow-shard failure mode heartbeat monitoring must catch.

    Both record what they did (``kills`` / ``hangs``) so chaos tests can
    assert the fault actually landed.
    """

    def __init__(self) -> None:
        self.kills: List[int] = []
        self.hangs: List[Tuple[str, float]] = []

    def kill(self, pid: int) -> None:
        """SIGKILL ``pid`` and wait for the zombie to be reapable."""
        os.kill(int(pid), signal.SIGKILL)
        self.kills.append(int(pid))

    def hang(self, base_url: str, seconds: float, timeout: float = 5.0) -> None:
        """Stall every subsequent request of the worker at ``base_url``."""
        # Imported here: resilience must not depend on serving at import
        # time (serving already imports resilience).
        from repro.serving.client import ServingClient

        ServingClient(base_url, timeout=timeout, retries=0).hang(
            seconds, timeout=timeout
        )
        self.hangs.append((base_url, float(seconds)))

    def __repr__(self) -> str:
        return (
            f"ProcessFaultInjector(kills={self.kills}, hangs={self.hangs})"
        )


class CrashingFile:
    """File-like wrapper that dies mid-write after a byte budget.

    Simulates a torn write (power cut, full disk): the first
    ``crash_after_bytes`` bytes reach the underlying handle, the rest
    are dropped and :class:`FaultInjected` is raised. Used against
    :func:`~repro.resilience.atomic.atomic_writer` to prove that a torn
    temporary never replaces the committed file.
    """

    def __init__(self, handle: IO[bytes], crash_after_bytes: int) -> None:
        if crash_after_bytes < 0:
            raise ValueError(
                f"crash_after_bytes must be >= 0, got {crash_after_bytes}"
            )
        self._handle = handle
        self._budget = int(crash_after_bytes)
        self._written = 0

    def write(self, data: bytes) -> int:
        remaining = self._budget - self._written
        if len(data) > remaining:
            self._handle.write(data[:remaining])
            self._written = self._budget
            raise FaultInjected(
                f"injected torn write after {self._budget} bytes"
            )
        self._handle.write(data)
        self._written += len(data)
        return len(data)

    def __getattr__(self, name: str) -> Any:
        # Delegate flush/close/fileno/... to the wrapped handle.
        return getattr(self._handle, name)
