"""Atomic file persistence primitives.

Every durable artifact the library writes (model stores, experiment
archives, training checkpoints, run journals) goes through the helpers
here: the full payload is written to a temporary file *in the
destination directory*, flushed and fsynced, then moved over the target
with :func:`os.replace`. On POSIX the rename is atomic, so a reader —
or a process restarting after a crash — observes either the complete
old file or the complete new file, never a truncated mix of the two.

The sha256 helpers let manifests bind to their payload files, so a
payload that *was* torn (e.g. a crash between writing two files of a
multi-file artifact, or plain bit rot) is detected at load time instead
of silently producing wrong numbers.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Iterator, Optional, Union

PathLike = Union[str, Path]


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 digest of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex sha256 digest of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_writer(path: PathLike, mode: str = "wb", **open_kwargs: Any) -> Iterator[IO]:
    """Yield a temp-file handle that replaces ``path`` only on success.

    The temporary file lives next to the target (same filesystem, so the
    final :func:`os.replace` is atomic) and is deleted if the body
    raises — the target is either untouched or fully replaced, and no
    temp litter survives a failed write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    handle = os.fdopen(fd, mode, **open_kwargs)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        with contextlib.suppress(Exception):
            handle.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_bytes(
    path: PathLike, data: bytes, fault_injector: Optional[object] = None
) -> Path:
    """Atomically replace ``path`` with ``data``.

    ``fault_injector`` (a :class:`~repro.resilience.faults.FaultInjector`)
    is consulted before the write so crash-safety tests can simulate a
    process dying mid-persistence; the target file is never touched when
    the fault fires.
    """
    if fault_injector is not None:
        fault_injector.on_write()  # type: ignore[attr-defined]
    with atomic_writer(path) as handle:
        handle.write(data)
    return Path(path)


def atomic_write_text(
    path: PathLike,
    text: str,
    encoding: str = "utf-8",
    fault_injector: Optional[object] = None,
) -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding), fault_injector)


def atomic_write_json(
    path: PathLike,
    payload: object,
    indent: int = 2,
    fault_injector: Optional[object] = None,
) -> Path:
    """Atomically replace ``path`` with ``payload`` rendered as JSON."""
    text = json.dumps(payload, indent=indent) + "\n"
    return atomic_write_text(path, text, fault_injector=fault_injector)
