"""Checkpoint/resume for long-running SGD training.

A checkpoint captures everything :func:`~repro.optim.sgd.run_sgd` needs
to continue a run *bit-identically*: the model's parameter arrays, the
schedule RNG's bit-generator state, the update counter, and the
convergence monitor's margin history and streak. Snapshots are taken at
convergence-check boundaries (every ``every_n_checks`` checks), so a
resumed run replays exactly the updates an uninterrupted run would have
applied.

Layout of a checkpoint directory::

    <dir>/ckpt-00000003.npz    parameter arrays
    <dir>/ckpt-00000003.json   manifest: counters, RNG state, margin
                               history, sha256 of the npz payload

Both files are written atomically (temp + fsync + rename), npz first
and manifest last — the manifest is the commit point. A crash at any
instant therefore leaves either a fully valid checkpoint pair or an
unreferenced/torn artifact that :meth:`CheckpointManager.load_latest`
detects via the checksum and skips, falling back to the newest valid
snapshot (the last ``keep`` snapshots are retained for exactly this).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CheckpointError
from repro.logging_utils import get_logger
from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    sha256_bytes,
    sha256_file,
)
from repro.resilience.faults import FaultInjector

logger = get_logger("resilience.checkpoint")

#: Manifest schema version; bump on breaking layout changes.
CHECKPOINT_VERSION = 1

_PREFIX = "ckpt-"


@dataclass
class TrainingState:
    """One resumable snapshot of an SGD run.

    Attributes
    ----------
    n_updates:
        Updates applied so far (a convergence-check boundary).
    converged:
        Whether the ``Δr̃`` criterion had already fired.
    history:
        The monitor's ``(n_updates, r̃)`` checks so far.
    streak:
        The monitor's consecutive sub-``tol`` streak.
    params:
        Named parameter arrays (model-defined layout).
    rng_state:
        ``numpy`` bit-generator state of the schedule RNG, or ``None``
        when the caller manages randomness itself.
    """

    n_updates: int
    converged: bool
    history: List[Tuple[int, float]]
    streak: int
    params: Dict[str, np.ndarray] = field(default_factory=dict)
    rng_state: Optional[dict] = None


class CheckpointManager:
    """Writes and recovers :class:`TrainingState` snapshots.

    Parameters
    ----------
    directory:
        Where checkpoint pairs live (created if needed).
    every_n_checks:
        Snapshot cadence in convergence checks: the first check is
        always persisted, then every ``every_n_checks``-th after it.
    keep:
        How many most-recent snapshots to retain; older pairs are
        pruned after each successful save.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` whose
        write trigger is consulted before each file write, so tests can
        crash persistence at an arbitrary point.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every_n_checks: int = 1,
        keep: int = 3,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if every_n_checks < 1:
            raise ValueError(
                f"every_n_checks must be >= 1, got {every_n_checks}"
            )
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_n_checks = every_n_checks
        self.keep = keep
        self.fault_injector = fault_injector
        self._checks_seen = 0
        self._next_sequence = 1 + max(
            self._sequence_numbers(), default=0
        )

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def maybe_save(
        self, make_state: Callable[[], TrainingState]
    ) -> Optional[Path]:
        """Save if the cadence says so; returns the manifest path or None.

        Takes a zero-argument *factory* instead of a ready snapshot so
        skipped checks cost nothing — building the state (copying the
        margin history, serializing the RNG) only happens on the checks
        that actually persist. This is what keeps the checkpointing
        overhead of a dense convergence-check schedule negligible.
        """
        self._checks_seen += 1
        if (self._checks_seen - 1) % self.every_n_checks != 0:
            return None
        return self.save(make_state())

    def save(self, state: TrainingState) -> Path:
        """Persist one snapshot unconditionally (npz first, manifest last)."""
        sequence = self._next_sequence
        self._next_sequence += 1
        buffer = io.BytesIO()
        np.savez(buffer, **state.params)
        payload = buffer.getvalue()
        npz_path = self.directory / f"{_PREFIX}{sequence:08d}.npz"
        manifest_path = self.directory / f"{_PREFIX}{sequence:08d}.json"
        atomic_write_bytes(npz_path, payload, fault_injector=self.fault_injector)
        manifest = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "sequence": sequence,
            "n_updates": int(state.n_updates),
            "converged": bool(state.converged),
            "history": [[int(n), float(m)] for n, m in state.history],
            "streak": int(state.streak),
            "rng_state": state.rng_state,
            "arrays_sha256": sha256_bytes(payload),
            "param_keys": sorted(state.params),
        }
        atomic_write_json(
            manifest_path, manifest, fault_injector=self.fault_injector
        )
        self._prune()
        return manifest_path

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_latest(self) -> Optional[TrainingState]:
        """Newest snapshot that passes validation, or ``None``.

        Torn or corrupt snapshots (manifest that does not parse, missing
        npz, checksum mismatch) are logged and skipped, falling back to
        the next-newest — the recovery path for a crash mid-save.
        """
        for sequence in sorted(self._sequence_numbers(), reverse=True):
            manifest_path = self.directory / f"{_PREFIX}{sequence:08d}.json"
            try:
                return self._load_one(manifest_path)
            except CheckpointError as exc:
                logger.warning(
                    "skipping unusable checkpoint %s: %s", manifest_path, exc
                )
        return None

    def _load_one(self, manifest_path: Path) -> TrainingState:
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest: {exc}") from exc
        if manifest.get("checkpoint_version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{manifest.get('checkpoint_version')!r}"
            )
        npz_path = manifest_path.with_suffix(".npz")
        if not npz_path.exists():
            raise CheckpointError(f"missing parameter file {npz_path.name}")
        if sha256_file(npz_path) != manifest.get("arrays_sha256"):
            raise CheckpointError(
                f"checksum mismatch on {npz_path.name} (torn write?)"
            )
        try:
            with np.load(npz_path) as archive:
                params = {key: archive[key] for key in archive.files}
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable {npz_path.name}: {exc}") from exc
        try:
            return TrainingState(
                n_updates=int(manifest["n_updates"]),
                converged=bool(manifest["converged"]),
                history=[
                    (int(n), float(m)) for n, m in manifest["history"]
                ],
                streak=int(manifest["streak"]),
                params=params,
                rng_state=manifest.get("rng_state"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed manifest: {exc}") from exc

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _sequence_numbers(self) -> Sequence[int]:
        numbers = []
        for path in self.directory.glob(f"{_PREFIX}*.json"):
            stem = path.stem[len(_PREFIX):]
            if stem.isdigit():
                numbers.append(int(stem))
        return numbers

    def _prune(self) -> None:
        sequences = sorted(self._sequence_numbers())
        for sequence in sequences[: -self.keep]:
            for suffix in (".json", ".npz"):
                stale = self.directory / f"{_PREFIX}{sequence:08d}{suffix}"
                try:
                    stale.unlink()
                except OSError:
                    pass
