"""``repro-experiments tune`` — run the autotuner, write a machine profile.

Usage::

    repro-experiments tune serving --out profile.json --budget-s 60
    repro-experiments tune cluster --out profile.json
    repro-experiments tune training --out profile.json --reps 2
    repro-experiments tune serving --journal tune.journal.json --resume

Each invocation probes the machine, enumerates the subsystem's candidate
configurations from the knob registry, ranks them with the analytic cost
model, validates the top-k (plus the built-in default, always) by real
measurement, and writes the winner into ``--out`` as a checksummed
machine profile. Tuning another subsystem into the same ``--out`` file
merges: existing subsystem blocks are preserved.

A killed tune resumes: measurements stream into ``--journal`` through
atomic rewrites, and ``--resume`` reuses them (and the journaled probe),
producing a profile identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.exceptions import TuningError
from repro.logging_utils import get_logger
from repro.tuning.defaults import SUBSYSTEMS

logger = get_logger("tuning.cli")


def add_tune_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "target",
        choices=SUBSYSTEMS,
        help="subsystem to tune (which knob spaces are searched)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("profile.json"),
        help="machine-profile file to write (default: profile.json); "
        "an existing profile's other subsystem blocks are preserved",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=60.0,
        help="wall-clock budget of the measured-validation loop "
        "(default: 60); the default config is always measured",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="cost-model-ranked candidates to validate by real "
        "measurement (default: 5)",
    )
    parser.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="resumable measurement journal (default: <out>.tune-<target>"
        ".journal.json)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse journaled probe/measurements from a killed tune; the "
        "final profile is identical to an uninterrupted run",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="seed of the synthetic tuning workload (default: 7)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=1,
        help="measurement repetitions per candidate, best rep kept "
        "(default: 1)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log progress to stderr"
    )


def run_tune(args: argparse.Namespace) -> int:
    from repro.logging_utils import enable_console_logging
    from repro.tuning.autotune import AutoTuner
    from repro.tuning.measure import ServingWorkload, TrainingWorkload
    from repro.tuning.profile import MachineProfile

    if args.verbose:
        enable_console_logging()
    if args.top_k < 1:
        print(f"error: --top-k must be >= 1, got {args.top_k}")
        return 2
    if args.budget_s <= 0:
        print(f"error: --budget-s must be positive, got {args.budget_s}")
        return 2
    journal_path = args.journal or args.out.with_name(
        f"{args.out.name}.tune-{args.target}.journal.json"
    )
    if args.target == "training":
        workload = TrainingWorkload.quick(seed=args.seed)
    else:
        workload = ServingWorkload.quick(seed=args.seed)
    tuner = AutoTuner(
        subsystem=args.target,
        workload=workload,
        budget_s=args.budget_s,
        top_k=args.top_k,
        journal_path=journal_path,
        resume=args.resume,
        reps=args.reps,
    )
    try:
        profile = tuner.run()
    except TuningError as exc:
        print(f"error: {exc}")
        return 2
    # Merge into an existing profile so serving + training tunes can
    # share one file; the machine block is refreshed to this run's probe.
    if args.out.exists():
        try:
            existing = MachineProfile.load(args.out)
        except TuningError as exc:
            logger.warning(
                "overwriting unreadable profile at %s: %s", args.out, exc
            )
        else:
            for subsystem, block in existing.subsystems.items():
                if subsystem != args.target:
                    profile.subsystems[subsystem] = block
    path = profile.save(args.out)
    chosen = profile.knobs_for(args.target)
    validation = profile.validation_for(args.target)
    print(f"tuned {args.target}: wrote {path}")
    print(
        "  chosen: "
        + " ".join(f"{name}={chosen[name]}" for name in sorted(chosen))
    )
    if validation:
        print(
            "  measured: "
            + " ".join(
                f"{name}={validation[name]}" for name in sorted(validation)
            )
        )
    print(
        f"  searched {tuner.n_candidates} candidate(s), validated "
        f"{len(tuner.results)} ({tuner.n_reused} journaled)"
    )
    return 0


__all__ = ["add_tune_arguments", "run_tune"]
