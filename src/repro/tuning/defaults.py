"""The knob registry: every tunable serving/cluster/training constant.

Before this module, every hot-path knob — micro/in-flight ``max_batch``,
``max_wait_ms``, ``check_interval``, ``max_inflight_rows``,
``admission_wait_ms``, LRU ``capacity``, arena store kind,
``fit_workers``, SGD block size — was a hand-picked literal scattered
across :class:`~repro.serving.service.ServiceConfig`, the CLIs, and the
training entry points, each tuned on one machine. The registry declares
each knob **once**: its type, valid range (or choice set), built-in
default, which subsystem consumes it, and the candidate values the
autotuner searches. Everything else derives from here:

* :class:`~repro.serving.service.ServiceConfig` field defaults,
* ``repro-serve`` / ``repro-experiments`` argparse defaults and help,
* the autotuner's candidate spaces
  (:mod:`repro.tuning.autotune`),
* machine-profile validation (:mod:`repro.tuning.profile`),
* the DESIGN.md knob table.

:func:`resolve` implements the startup precedence contract —
**CLI > profile > built-in default** — returning, for every knob, both
the value and where it came from, so servers can log the provenance of
each resolved knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import TuningError

#: Subsystems the registry partitions knobs into.
SUBSYSTEMS = ("serving", "cluster", "training")

#: Where a resolved knob value came from, in precedence order.
SOURCES = ("cli", "profile", "default")

#: CLI-facing store kinds (mirrors ``repro.store.STORE_KINDS`` without
#: importing the store package — the registry must stay import-light so
#: ``ServiceConfig`` can pull defaults from it at class-definition time).
STORE_CHOICES = ("dict", "arena", "arena-mmap")


@dataclass(frozen=True)
class Knob:
    """One registered knob: type, range, default, consumer, search space.

    Attributes
    ----------
    name / subsystem:
        Identity; ``(subsystem, name)`` is unique.
    default:
        The built-in value used when neither CLI nor profile names one.
    kind:
        ``int``, ``float``, or ``str``.
    lo / hi:
        Inclusive numeric bounds (numeric kinds only).
    choices:
        Allowed values (string kinds only).
    search:
        Candidate values the autotuner enumerates for this knob; empty
        for knobs tuned indirectly (or not at all).
    consumer:
        Dotted path of the class/function that reads the value — kept
        accurate so DESIGN.md's knob table never drifts from the code.
    help:
        One-line description (also used as argparse help).
    """

    name: str
    subsystem: str
    default: object
    kind: type = int
    lo: Optional[float] = None
    hi: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    search: Tuple = ()
    consumer: str = ""
    help: str = ""

    def validate(self, value: object) -> object:
        """Coerce ``value`` to the knob's type and check its range.

        Raises :class:`TuningError` with the offending knob named, so a
        profile carrying a bad value fails loudly at load time.
        """
        try:
            if self.kind is int:
                if isinstance(value, bool) or (
                    isinstance(value, float) and not float(value).is_integer()
                ):
                    raise ValueError(f"not an integer: {value!r}")
                coerced: object = int(value)  # type: ignore[arg-type]
            elif self.kind is float:
                coerced = float(value)  # type: ignore[arg-type]
            else:
                if not isinstance(value, str):
                    raise ValueError(f"not a string: {value!r}")
                coerced = value
        except (TypeError, ValueError) as exc:
            raise TuningError(
                f"knob {self.subsystem}.{self.name} expects {self.kind.__name__}, "
                f"got {value!r}"
            ) from exc
        if self.choices is not None and coerced not in self.choices:
            raise TuningError(
                f"knob {self.subsystem}.{self.name} must be one of "
                f"{self.choices}, got {coerced!r}"
            )
        if self.lo is not None and coerced < self.lo:  # type: ignore[operator]
            raise TuningError(
                f"knob {self.subsystem}.{self.name} must be >= {self.lo}, "
                f"got {coerced!r}"
            )
        if self.hi is not None and coerced > self.hi:  # type: ignore[operator]
            raise TuningError(
                f"knob {self.subsystem}.{self.name} must be <= {self.hi}, "
                f"got {coerced!r}"
            )
        return coerced

    def alternative(self) -> object:
        """A valid value different from the default (for tests/examples)."""
        for value in self.search:
            if value != self.default:
                return value
        if self.choices is not None:
            for value in self.choices:
                if value != self.default:
                    return value
        if self.kind is int:
            step = 1
            candidate = int(self.default) + step  # type: ignore[arg-type]
            if self.hi is not None and candidate > self.hi:
                candidate = int(self.default) - step  # type: ignore[arg-type]
            return candidate
        if self.kind is float:
            candidate = float(self.default) + 1.0  # type: ignore[arg-type]
            if self.hi is not None and candidate > self.hi:
                candidate = float(self.default) / 2.0  # type: ignore[arg-type]
            return candidate
        raise TuningError(
            f"knob {self.subsystem}.{self.name} has no alternative value"
        )


def _build_registry() -> Dict[str, Dict[str, Knob]]:
    scoring = [
        Knob(
            "batching", "serving", "inflight", str,
            choices=("inflight", "microbatch"),
            search=("inflight", "microbatch"),
            consumer="repro.serving.service.ServiceConfig",
            help="scoring loop: continuously fed packed batch (inflight) "
            "or drain-then-refill micro-batches (microbatch); answers are "
            "bit-identical either way",
        ),
        Knob(
            "max_batch", "serving", 64, int, lo=1, hi=4096,
            search=(16, 64, 256),
            consumer="repro.serving.service.ServiceConfig",
            help="micro-batch mode: max requests coalesced into one "
            "scoring batch",
        ),
        Knob(
            "max_wait_ms", "serving", 2.0, float, lo=0.0, hi=100.0,
            search=(0.5, 2.0, 10.0),
            consumer="repro.serving.service.ServiceConfig",
            help="micro-batch mode: how long a batch waits for stragglers",
        ),
        Knob(
            "check_interval", "serving", 16, int, lo=1, hi=4096,
            search=(4, 16, 64),
            consumer="repro.serving.service.ServiceConfig",
            help="in-flight mode: max queries scored per model call — the "
            "kernel-boundary granularity at which requests admit and retire",
        ),
        Knob(
            "max_inflight_rows", "serving", 32768, int, lo=1, hi=1 << 22,
            search=(4096, 32768, 131072),
            consumer="repro.serving.service.ServiceConfig",
            help="in-flight mode: admission-control bound on packed "
            "candidate rows; requests beyond it wait in the overflow queue",
        ),
        Knob(
            "admission_wait_ms", "serving", 0.0, float, lo=0.0, hi=100.0,
            search=(0.0, 1.0),
            consumer="repro.serving.service.ServiceConfig",
            help="in-flight mode: optional growth-gated coalescing wait at "
            "the start of a busy period (0 = admit and score immediately)",
        ),
        Knob(
            "capacity", "serving", 1024, int, lo=1, hi=1 << 24,
            search=(1024,),
            consumer="repro.serving.state.SessionStore",
            help="max resident live sessions before LRU eviction",
        ),
        Knob(
            "store", "serving", "arena", str, choices=STORE_CHOICES,
            search=("arena", "dict"),
            consumer="repro.store.make_history_store",
            help="session history backing: columnar arena (default), "
            "memory-mapped arena, or per-user Python lists; answers are "
            "bit-identical either way",
        ),
        # Online-learning knobs carry an empty ``search`` tuple: they
        # change the model, not the serving schedule, so the autotuner's
        # latency objective cannot rank them (candidate spaces stay
        # 54/38 per batching mode).
        Knob(
            "online", "serving", "off", str, choices=("off", "isgd"),
            search=(),
            consumer="repro.online.trainer.OnlineTrainer",
            help="incremental model updates per ingested event: off "
            "(frozen factors, the default) or isgd per-event SGD; the "
            "live model stays bit-identical to a checkpoint+WAL-replay "
            "rebuild either way",
        ),
        Knob(
            "online_lr", "serving", 0.05, float, lo=1e-6, hi=1.0,
            search=(),
            consumer="repro.online.trainer.OnlineTrainer",
            help="online mode: ISGD learning rate applied per event "
            "(independent of the offline fit's schedule)",
        ),
        Knob(
            "online_batch", "serving", 256, int, lo=1, hi=4096,
            search=(),
            consumer="repro.online.trainer.OnlineTrainer",
            help="online mode: events buffered before one batched kernel "
            "flush; final parameters are bit-identical at any window "
            "(conflict order is preserved), so the window only trades "
            "update lag against how often kernel work can land on the "
            "serving tail",
        ),
    ]
    # The cluster shards run the same scoring loop per worker; its knob
    # set is the in-flight subset plus per-shard capacity/store (the
    # cluster CLI exposes no micro-batch sizing knobs).
    cluster = [
        Knob(
            knob.name, "cluster", knob.default, knob.kind,
            lo=knob.lo, hi=knob.hi, choices=knob.choices,
            search=knob.search, consumer=knob.consumer, help=knob.help,
        )
        for knob in scoring
        if knob.name not in ("max_batch", "max_wait_ms")
    ]
    training = [
        Knob(
            "fit_workers", "training", 1, int, lo=1, hi=256,
            search=(1, 2, 4, 8),
            consumer="repro.models.base.Recommender.fit",
            help="worker processes for the parallel feature-cache build; "
            "learned parameters are bit-identical at any worker count",
        ),
        Knob(
            "sgd_block", "training", 0, int, lo=0, hi=1 << 20,
            search=(0, 512, 4096, 32768),
            consumer="repro.optim.sgd.run_sgd",
            help="cap on updates per block-SGD kernel call (0 = one whole "
            "check interval per kernel); results are bit-identical at any "
            "block size",
        ),
    ]
    registry: Dict[str, Dict[str, Knob]] = {name: {} for name in SUBSYSTEMS}
    for knob in scoring + cluster + training:
        registry[knob.subsystem][knob.name] = knob
    return registry


#: ``subsystem -> name -> Knob``; the one declaration of every knob.
KNOBS: Dict[str, Dict[str, Knob]] = _build_registry()


def knobs_for(subsystem: str) -> Dict[str, Knob]:
    """Every registered knob of one subsystem (name-keyed)."""
    if subsystem not in KNOBS:
        raise TuningError(
            f"unknown subsystem {subsystem!r}; expected one of {SUBSYSTEMS}"
        )
    return dict(KNOBS[subsystem])


def knob(subsystem: str, name: str) -> Knob:
    """Look one knob up, or raise :class:`TuningError`."""
    registry = knobs_for(subsystem)
    if name not in registry:
        raise TuningError(
            f"unknown knob {name!r} for subsystem {subsystem!r}; "
            f"registered: {sorted(registry)}"
        )
    return registry[name]


def default_of(subsystem: str, name: str) -> object:
    """The built-in default of one knob."""
    return knob(subsystem, name).default


def defaults_for(subsystem: str) -> Dict[str, object]:
    """``name -> built-in default`` for one subsystem."""
    return {name: k.default for name, k in knobs_for(subsystem).items()}


@dataclass(frozen=True)
class ResolvedKnob:
    """One knob after precedence resolution: the value and its source."""

    name: str
    value: object
    source: str  # one of SOURCES


def resolve(
    subsystem: str,
    cli: Optional[Mapping[str, object]] = None,
    profile: Optional[Mapping[str, object]] = None,
) -> Dict[str, ResolvedKnob]:
    """Resolve every knob of ``subsystem`` with CLI > profile > default.

    ``cli`` holds only the knobs the user *explicitly* set (absent or
    ``None`` entries fall through to the profile); ``profile`` holds the
    subsystem's knob dict from a loaded machine profile. Every value is
    validated against the registry — an unknown knob name or an
    out-of-range value raises :class:`TuningError` naming the offender,
    whichever layer it came from.
    """
    registry = knobs_for(subsystem)
    for layer_name, layer in (("cli", cli), ("profile", profile)):
        for name in layer or ():
            if name not in registry:
                raise TuningError(
                    f"unknown knob {name!r} in {layer_name} overrides for "
                    f"subsystem {subsystem!r}; registered: {sorted(registry)}"
                )
    resolved: Dict[str, ResolvedKnob] = {}
    for name, entry in sorted(registry.items()):
        if cli is not None and cli.get(name) is not None:
            value, source = cli[name], "cli"
        elif profile is not None and profile.get(name) is not None:
            value, source = profile[name], "profile"
        else:
            value, source = entry.default, "default"
        resolved[name] = ResolvedKnob(name, entry.validate(value), source)
    return resolved


def values_of(resolved: Mapping[str, ResolvedKnob]) -> Dict[str, object]:
    """Flatten a resolution to ``name -> value``."""
    return {name: knob.value for name, knob in resolved.items()}


def describe(resolved: Mapping[str, ResolvedKnob]) -> str:
    """One log line naming every resolved knob and its provenance."""
    return " ".join(
        f"{name}={entry.value}({entry.source})"
        for name, entry in sorted(resolved.items())
    )


__all__ = [
    "KNOBS",
    "Knob",
    "ResolvedKnob",
    "SOURCES",
    "STORE_CHOICES",
    "SUBSYSTEMS",
    "default_of",
    "defaults_for",
    "describe",
    "knob",
    "knobs_for",
    "resolve",
    "values_of",
]
