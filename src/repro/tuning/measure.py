"""Measured validation of candidate configurations.

The cost model ranks; this module *measures*. A
:class:`ServingWorkload` replays one seeded bursty arrival schedule
(:class:`~repro.tuning.load.LoadGenerator` — the same pacing the
serving/cluster benches use) through a real
:class:`~repro.serving.service.RecommendService` built from a candidate
knob dict, and reports the latency percentiles and completed
throughput. A :class:`TrainingWorkload` times a real (small) ``fit``
under candidate ``fit_workers`` / ``sgd_block`` values.

Both workloads are deterministic in everything but wall-clock: the
split, the model, the event stream, and the arrival schedule are all
seeded, so two candidates are compared under identical offered load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.exceptions import TuningError
from repro.logging_utils import get_logger
from repro.tuning.cost import WorkloadShape
from repro.tuning.load import LoadGenerator

logger = get_logger("tuning.measure")

#: Serving-side knobs consumed by ServiceConfig (the rest go to the
#: session-store wiring).
_SERVICE_KNOBS = (
    "batching",
    "max_batch",
    "max_wait_ms",
    "check_interval",
    "max_inflight_rows",
    "admission_wait_ms",
)

#: Bursty-schedule shape of the quick workload (mirrors the serving
#: bench's calm-heavy regime at a smaller scale).
QUICK_BURSTY = dict(calm_rate_hz=400.0, burst_size=12, calm_between=24)


def _interleaved_stream(split) -> List[Tuple[int, int]]:
    """Round-robin the users' held-out suffixes, like live traffic."""
    per_user = {
        user: split.full_sequence(user)
        .items[split.train_boundary(user):]
        .tolist()
        for user in range(split.n_users)
    }
    stream: List[Tuple[int, int]] = []
    longest = max(len(items) for items in per_user.values())
    for step in range(longest):
        for user in range(split.n_users):
            if step < len(per_user[user]):
                stream.append((user, per_user[user][step]))
    return stream


@dataclass
class ServingWorkload:
    """One reproducible serving workload a candidate config is measured on."""

    split: object
    model: object
    stream: List[Tuple[int, int]]
    arrivals: np.ndarray
    window: WindowConfig
    shape: WorkloadShape
    top_n: int = 10

    @classmethod
    def quick(
        cls,
        seed: int = 7,
        n_events: int = 280,
        model_name: str = "recency",
        window: Optional[WindowConfig] = None,
        schedule_seed: int = 808,
    ) -> "ServingWorkload":
        """A seconds-scale workload for CLI tuning (Recency by default).

        The kernel constants come from the probe, so a cheap model here
        still produces a correctly *shaped* schedule; pass a fitted
        TS-PPR and a heavier split (as the autotune bench does) when
        the absolute numbers must match a benchmark baseline.
        """
        from repro.data.split import temporal_split
        from repro.models.recency import RecencyRecommender
        from repro.models.tsppr import TSPPRRecommender
        from repro.synth.base import SyntheticConfig, generate_dataset

        config = SyntheticConfig(
            name="tune-serving",
            n_users=4,
            n_items=1200,
            sequence_length_range=(420, 520),
            catalog_size_range=(90, 130),
            zipf_exponent=0.8,
            p_explore_range=(0.2, 0.3),
            memory_span=120,
            frequency_exponent=0.05,
            recency_exponent=0.05,
            explore_weight_exponent=0.0,
        )
        split = temporal_split(generate_dataset(config, seed))
        window = window or WindowConfig()
        if model_name == "recency":
            model = RecencyRecommender().fit(split, window)
        elif model_name == "tsppr":
            model = TSPPRRecommender(
                TSPPRConfig(max_epochs=2000, seed=seed)
            ).fit(split, window)
        else:
            raise TuningError(
                f"unknown tune workload model {model_name!r}; expected "
                f"'recency' or 'tsppr'"
            )
        stream = _interleaved_stream(split)[:n_events]
        arrivals = LoadGenerator.bursty_times(
            len(stream), seed=schedule_seed, **QUICK_BURSTY
        )
        return cls.from_parts(
            split, model, stream, arrivals, window, **QUICK_BURSTY
        )

    @classmethod
    def from_parts(
        cls,
        split,
        model,
        stream: List[Tuple[int, int]],
        arrivals: np.ndarray,
        window: WindowConfig,
        *,
        calm_rate_hz: float,
        burst_size: int,
        calm_between: int,
        top_n: int = 10,
    ) -> "ServingWorkload":
        """Wrap explicit parts (the bench's path) into a workload."""
        width = float(
            np.mean([
                max(len(set(split.train_sequence(u).items.tolist())), 1)
                for u in range(split.n_users)
            ])
        )
        shape = WorkloadShape(
            calm_rate_hz=calm_rate_hz,
            burst_size=burst_size,
            calm_between=calm_between,
            candidates_per_request=width,
            requests=len(stream),
            active_users=split.n_users,
        )
        return cls(
            split=split,
            model=model,
            stream=list(stream),
            arrivals=np.asarray(arrivals, dtype=np.float64),
            window=window,
            shape=shape,
            top_n=top_n,
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _drive_once(self, knobs: Mapping[str, object]) -> Dict[str, float]:
        from repro.serving.service import ServiceConfig, service_for_split

        overrides = {
            name: knobs[name] for name in _SERVICE_KNOBS if name in knobs
        }
        config = ServiceConfig(
            window=self.window,
            default_k=self.top_n,
            n_items=self.split.n_items,
            **overrides,  # type: ignore[arg-type]
        )
        capacity = int(knobs.get("capacity", 1024))
        store = str(knobs.get("store", "arena"))
        latencies: List[float] = []
        pending = []
        with service_for_split(
            self.model, self.split, config=config,
            capacity=capacity, store=store,
        ) as service:
            session_store = service.store
            start = time.perf_counter()
            for index, (user, item) in enumerate(self.stream):
                delay = self.arrivals[index] - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
                with session_store.lock:
                    session = session_store.get(user)
                    is_target = session.is_next_target(item) and bool(
                        session.candidates()
                    )
                if is_target:
                    pending.append(service.submit(user, k=self.top_n))
                service.ingest(user, item)
            for handle in pending:
                latencies.append(handle.result(timeout=600.0).latency_s)
            elapsed = time.perf_counter() - start
        if not latencies:
            raise TuningError(
                "serving workload produced no recommend requests; the "
                "stream has no RRC targets"
            )
        stats = LoadGenerator.percentiles_ms(latencies)
        stats["requests"] = float(len(latencies))
        stats["requests_per_s"] = round(len(latencies) / elapsed, 1)
        stats["elapsed_s"] = round(elapsed, 3)
        return stats

    def measure(
        self, knobs: Mapping[str, object], reps: int = 1
    ) -> Dict[str, float]:
        """Replay the schedule ``reps`` times; best rep by p99.

        Paced runs all take the same wall-clock (the schedule dictates
        it), so best-of-reps by the guarded percentile suppresses
        scheduler noise, exactly as the serving bench does.
        """
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, reps)):
            stats = self._drive_once(knobs)
            if best is None or stats["p99_ms"] < best["p99_ms"]:
                best = stats
        assert best is not None
        return best


@dataclass
class TrainingWorkload:
    """A small real ``fit`` timed under candidate training knobs."""

    split: object
    window: WindowConfig
    config: TSPPRConfig = field(
        default_factory=lambda: TSPPRConfig(max_epochs=4000, seed=11)
    )

    @classmethod
    def quick(cls, seed: int = 7) -> "TrainingWorkload":
        from repro.data.split import temporal_split
        from repro.synth.base import SyntheticConfig, generate_dataset

        config = SyntheticConfig(
            name="tune-training",
            n_users=6,
            n_items=900,
            sequence_length_range=(320, 400),
            catalog_size_range=(70, 110),
            zipf_exponent=0.8,
            p_explore_range=(0.2, 0.3),
            memory_span=100,
            frequency_exponent=0.05,
            recency_exponent=0.05,
            explore_weight_exponent=0.0,
        )
        split = temporal_split(generate_dataset(config, seed))
        return cls(split=split, window=WindowConfig())

    def measure(
        self, knobs: Mapping[str, object], reps: int = 1
    ) -> Dict[str, float]:
        """Time a fresh fit per rep; best rep by wall-clock."""
        from repro.models.tsppr import TSPPRRecommender

        fit_workers = int(knobs.get("fit_workers", 1))
        sgd_block = int(knobs.get("sgd_block", 0))
        best: Optional[float] = None
        for _ in range(max(1, reps)):
            model = TSPPRRecommender(self.config)
            start = time.perf_counter()
            model.fit(
                self.split,
                self.window,
                fit_workers=fit_workers,
                sgd_block=sgd_block or None,
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        assert best is not None
        return {
            "fit_s": round(best, 3),
            # The shared p99 key lets the tuner pick "measured best" with
            # one comparator across subsystems.
            "p99_ms": round(best * 1e3, 3),
            "p50_ms": round(best * 1e3, 3),
        }


__all__ = [
    "QUICK_BURSTY",
    "ServingWorkload",
    "TrainingWorkload",
]
