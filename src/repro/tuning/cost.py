"""Analytic cost model ranking candidate configurations before measurement.

The autotuner enumerates every candidate configuration of a subsystem's
knob spaces — dozens to hundreds — but only the top few are worth
validating by real (seconds-long) measurement. This module predicts, for
each candidate, the latency shape a bursty workload would see and the
resident memory the configuration commits to, using only the machine
constants from one quick probe (:mod:`repro.tuning.probe`):

* a scoring kernel over ``q`` queries of width ``w`` costs
  ``overhead + us_per_row * q * w`` microseconds (the probe's
  least-squares line);
* **micro-batch** mode pays its ``max_wait_ms`` straggler wait on every
  calm single (that is the p50) and, on a burst of ``B``, drains
  ``ceil(B / max_batch)`` sequential batches head-of-line (the p99);
* **in-flight** mode admits at kernel boundaries: a calm single waits
  one admission poll (only when the growth gate is enabled) plus one
  single-query kernel; the last request of a burst drains behind
  ``ceil(B / check_interval)`` boundary kernels, and a
  ``max_inflight_rows`` bound below the burst's row demand serializes
  extra admission passes on top;
* memory is ``capacity × bytes_per_user[store]`` plus the packed
  batch's row budget.

The model is deliberately simple — monotone in every knob and correct
about *ordering*, which is all ranking needs; absolute accuracy comes
from the measured validation pass. The training-side model prices the
fork-pool cache build (startup cost vs. per-row payoff, capped at the
core count) and the block-SGD kernel amortization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.exceptions import TuningError
from repro.tuning.probe import MachineProbe

#: Poll period (ms) of the in-flight growth-gated admission wait; one
#: poll is what a calm single pays when the gate is enabled (mirrors
#: ``repro.serving.service._COALESCE_POLL_S``).
ADMISSION_POLL_MS = 0.5

#: Bytes per packed candidate row (int64 arena + offsets bookkeeping).
PACKED_ROW_BYTES = 16.0


@dataclass(frozen=True)
class WorkloadShape:
    """The arrival/shape facts the serving cost model conditions on.

    Mirrors the bursty load-generator parameters plus the per-request
    candidate width, so predictions describe the same schedule the
    measured validation replays.
    """

    calm_rate_hz: float = 400.0
    burst_size: int = 16
    calm_between: int = 32
    candidates_per_request: float = 64.0
    requests: int = 200
    active_users: int = 4


@dataclass(frozen=True)
class Prediction:
    """Predicted cost of one candidate configuration."""

    p50_ms: float
    p99_ms: float
    mem_bytes: float

    def rank_key(self, tiebreak: str = "") -> tuple:
        """Sort key: tail first, then typical latency, then memory.

        ``tiebreak`` (the candidate's canonical string) makes the total
        order deterministic across equal predictions, which resume
        identity depends on.
        """
        return (
            round(self.p99_ms, 6),
            round(self.p50_ms, 6),
            round(self.mem_bytes, 1),
            tiebreak,
        )


class CostModel:
    """Analytic time/memory predictions calibrated by one machine probe."""

    def __init__(self, probe: MachineProbe) -> None:
        self.probe = probe

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def kernel_ms(self, queries: float, width: float) -> float:
        """Predicted one-call scoring time for ``queries`` × ``width`` rows."""
        rows = max(queries, 0.0) * max(width, 1.0)
        return (
            self.probe.kernel_overhead_us + self.probe.kernel_us_per_row * rows
        ) / 1e3

    # ------------------------------------------------------------------
    # Serving / cluster
    # ------------------------------------------------------------------
    def predict_serving(
        self, knobs: Mapping[str, object], shape: WorkloadShape
    ) -> Prediction:
        """Latency/memory prediction for one serving (or cluster) config.

        Cluster configs carry no micro-batch knobs; their defaults are
        substituted, which is exactly what the shards do.
        """
        width = shape.candidates_per_request
        burst = max(int(shape.burst_size), 1)
        batching = str(knobs.get("batching", "inflight"))
        if batching == "microbatch":
            max_batch = int(knobs.get("max_batch", 64))
            max_wait_ms = float(knobs.get("max_wait_ms", 2.0))
            # Every calm single waits the full straggler window, then
            # runs a one-query kernel.
            p50 = max_wait_ms + self.kernel_ms(1, width)
            # The last request of a burst waits its own straggler
            # window, then drains behind ceil(B/max_batch) sequential
            # batches (head-of-line).
            n_batches = math.ceil(burst / max_batch)
            p99 = max_wait_ms + n_batches * self.kernel_ms(
                min(burst, max_batch), width
            )
            inflight_rows = 0.0
        elif batching == "inflight":
            check_interval = int(knobs.get("check_interval", 16))
            max_rows = int(knobs.get("max_inflight_rows", 32768))
            admission_wait_ms = float(knobs.get("admission_wait_ms", 0.0))
            poll = ADMISSION_POLL_MS if admission_wait_ms > 0 else 0.0
            p50 = poll + self.kernel_ms(1, width)
            # The burst drains in ceil(B/check_interval) boundary
            # kernels; a row bound below the burst's demand forces
            # extra admission passes that serialize on retirements.
            n_chunks = math.ceil(burst / check_interval)
            p99 = poll + n_chunks * self.kernel_ms(
                min(burst, check_interval), width
            )
            demanded_rows = burst * width
            if max_rows < demanded_rows:
                p99 *= demanded_rows / max_rows
            inflight_rows = float(max_rows)
        else:
            raise TuningError(f"unknown batching mode {batching!r}")
        capacity = int(knobs.get("capacity", 1024))
        store = str(knobs.get("store", "arena"))
        bytes_per_user = self.probe.bytes_per_user.get(store)
        if bytes_per_user is None:
            # Probe skipped the store sweep: assume parity so memory
            # never silently breaks the ranking.
            bytes_per_user = 256.0
        mem = capacity * bytes_per_user + inflight_rows * PACKED_ROW_BYTES
        return Prediction(
            p50_ms=round(p50, 6), p99_ms=round(p99, 6), mem_bytes=round(mem, 1)
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def predict_training(
        self,
        knobs: Mapping[str, object],
        n_quadruples: int = 50_000,
        check_interval: int = 5_000,
    ) -> Prediction:
        """Predicted fit cost for one training config.

        The cache build parallelizes across ``fit_workers`` fork
        workers (payoff capped at the core count, each worker paying
        the probed startup cost); the SGD loop pays one kernel-call
        overhead per block, so tiny ``sgd_block`` values re-pay the
        call overhead ``check_interval / sgd_block`` times per
        convergence check.
        """
        fit_workers = int(knobs.get("fit_workers", 1))
        sgd_block = int(knobs.get("sgd_block", 0))
        effective = max(1, min(fit_workers, self.probe.cpu_count))
        row_us = self.probe.kernel_us_per_row
        build_ms = (n_quadruples * row_us) / 1e3 / effective
        if fit_workers > 1:
            build_ms += self.probe.fork_startup_ms * fit_workers
        block = check_interval if sgd_block == 0 else min(
            sgd_block, check_interval
        )
        n_calls = math.ceil(check_interval / max(block, 1))
        sgd_ms = (
            n_calls * self.probe.kernel_overhead_us
            + check_interval * row_us
        ) / 1e3
        # Peak block-kernel working set grows with the block size.
        mem = float(block) * 512.0
        total = build_ms + sgd_ms
        return Prediction(
            p50_ms=round(total, 6), p99_ms=round(total, 6),
            mem_bytes=round(mem, 1),
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def predict(
        self,
        subsystem: str,
        knobs: Mapping[str, object],
        shape: WorkloadShape,
    ) -> Prediction:
        """Route one candidate to the subsystem's predictor."""
        if subsystem in ("serving", "cluster"):
            return self.predict_serving(knobs, shape)
        if subsystem == "training":
            return self.predict_training(knobs)
        raise TuningError(f"unknown subsystem {subsystem!r}")

    def memory_budget_bytes(self, fraction: float = 0.5) -> float:
        """Memory a configuration may commit to (0 = unknown, no bound)."""
        return self.probe.mem_available_bytes * fraction


def predictions_as_dict(prediction: Prediction) -> Dict[str, float]:
    """JSON-ready rendering of one prediction."""
    return {
        "p50_ms": prediction.p50_ms,
        "p99_ms": prediction.p99_ms,
        "mem_bytes": prediction.mem_bytes,
    }


__all__ = [
    "ADMISSION_POLL_MS",
    "CostModel",
    "Prediction",
    "WorkloadShape",
    "predictions_as_dict",
]
