"""Cost-model-driven configuration search producing a machine profile.

The pipeline (``repro-experiments tune {serving,cluster,training}``):

1. **Probe** the machine once (:func:`~repro.tuning.probe.probe_machine`)
   — kernel µs/row at several batch sizes, bytes/user per store kind,
   fork startup cost, cores, memory. Seconds, not minutes.
2. **Enumerate** every candidate configuration from the knob registry's
   search spaces (:mod:`repro.tuning.defaults`), canonicalized per
   batching mode so e.g. an in-flight candidate never varies the
   micro-batch knobs it ignores.
3. **Predict** each candidate's latency/memory with the analytic cost
   model (:mod:`repro.tuning.cost`) and rank — candidates whose
   predicted memory exceeds the machine's budget sink to the bottom.
4. **Validate** only the top-k by real measurement
   (:mod:`repro.tuning.measure`, seeded bursty pacing shared with the
   benches). The built-in default configuration is *always* measured
   first, so the chosen config can never regress the hand-picked
   baseline on the machine it was tuned on.
5. **Emit** an atomic, checksummed machine profile
   (:mod:`repro.tuning.profile`) holding the probe, the winning knobs,
   and their measured validation numbers.

Every measurement (and the probe itself) is journaled through atomic
rewrites, so a killed tune resumes with ``--resume``: already-measured
candidates are skipped and the final profile is bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.exceptions import TuningError
from repro.logging_utils import get_logger
from repro.resilience.atomic import atomic_write_json
from repro.tuning.cost import (
    CostModel,
    Prediction,
    WorkloadShape,
    predictions_as_dict,
)
from repro.tuning.defaults import SUBSYSTEMS, defaults_for, knobs_for
from repro.tuning.probe import MachineProbe, probe_machine
from repro.tuning.profile import MachineProfile

logger = get_logger("tuning.autotune")

#: Tune-journal schema version; bump on breaking layout changes.
TUNE_JOURNAL_VERSION = 1

#: Serving/cluster knobs that only matter under one batching mode; a
#: candidate pins the other mode's knobs to their defaults so the
#: search space never multiplies across ignored axes.
MODE_KNOBS = {
    "inflight": ("check_interval", "max_inflight_rows", "admission_wait_ms"),
    "microbatch": ("max_batch", "max_wait_ms"),
}


def candidate_key(knobs: Mapping[str, object]) -> str:
    """Canonical stable identity of one candidate configuration."""
    return json.dumps(
        {name: knobs[name] for name in sorted(knobs)}, sort_keys=True
    )


@dataclass(frozen=True)
class CandidateResult:
    """One candidate after prediction (and, for the validated, measurement)."""

    knobs: Dict[str, object]
    predicted: Prediction
    measured: Optional[Dict[str, float]] = None

    @property
    def key(self) -> str:
        return candidate_key(self.knobs)


class TuneJournal:
    """Atomic, crash-safe book of a tune run's probe and measurements.

    Modeled on :class:`~repro.resilience.journal.RunJournal` but storing
    *values* (the probe dict and each candidate's measurement), because
    resume must reproduce the exact final profile, not merely skip work.
    """

    def __init__(self, path: Union[str, Path], subsystem: str) -> None:
        if subsystem not in SUBSYSTEMS:
            raise TuningError(
                f"unknown subsystem {subsystem!r}; expected one of "
                f"{SUBSYSTEMS}"
            )
        self.path = Path(path)
        self.subsystem = subsystem
        self.created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self.probe: Optional[Dict[str, object]] = None
        self._measurements: Dict[str, Dict[str, object]] = {}

    @classmethod
    def load(cls, path: Union[str, Path], subsystem: str) -> "TuneJournal":
        """Read a journal, or start an empty one if the file is absent."""
        journal = cls(path, subsystem)
        if not journal.path.exists():
            return journal
        try:
            payload = json.loads(journal.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TuningError(
                f"corrupt tune journal at {journal.path}: {exc}"
            ) from exc
        if payload.get("journal_version") != TUNE_JOURNAL_VERSION:
            raise TuningError(
                f"unsupported tune-journal version "
                f"{payload.get('journal_version')!r} in {journal.path}"
            )
        recorded = payload.get("subsystem")
        if recorded != subsystem:
            raise TuningError(
                f"tune journal at {journal.path} records a {recorded!r} "
                f"run; cannot resume it as {subsystem!r}"
            )
        journal.created = str(payload.get("created", journal.created))
        journal.probe = payload.get("probe")
        for key, entry in payload.get("candidates", {}).items():
            if not isinstance(entry, dict) or "measurement" not in entry:
                raise TuningError(
                    f"malformed candidate entry in {journal.path}"
                )
            journal._measurements[key] = entry
        return journal

    def set_probe(self, probe: Dict[str, object]) -> None:
        self.probe = probe
        self.save()

    def record(
        self,
        key: str,
        knobs: Mapping[str, object],
        measurement: Mapping[str, float],
    ) -> None:
        """Persist one candidate's measurement atomically."""
        self._measurements[key] = {
            "knobs": dict(knobs),
            "measurement": dict(measurement),
        }
        self.save()

    def measurement_of(self, key: str) -> Optional[Dict[str, float]]:
        entry = self._measurements.get(key)
        if entry is None:
            return None
        return dict(entry["measurement"])  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._measurements)

    def save(self) -> Path:
        payload = {
            "journal_version": TUNE_JOURNAL_VERSION,
            "subsystem": self.subsystem,
            "created": self.created,
            "probe": self.probe,
            "candidates": {
                key: self._measurements[key]
                for key in sorted(self._measurements)
            },
        }
        return atomic_write_json(self.path, payload)


@dataclass
class AutoTuner:
    """One cost-model search over a subsystem's knob spaces.

    Parameters
    ----------
    subsystem:
        ``"serving"``, ``"cluster"``, or ``"training"``.
    workload:
        A :class:`~repro.tuning.measure.ServingWorkload` /
        :class:`~repro.tuning.measure.TrainingWorkload`; defaults to the
        subsystem's seconds-scale quick workload.
    probe:
        A pre-measured :class:`MachineProbe`; measured fresh when absent
        (and journaled either way, so resume re-uses it).
    budget_s:
        Wall-clock budget of the measured-validation loop. The default
        configuration is always measured even on a tiny budget; further
        candidates stop once the budget is spent.
    top_k:
        Candidates validated by real measurement (beyond the always-
        measured default).
    journal_path:
        Where the resumable measurement journal lives; required when
        ``resume`` is set.
    resume:
        Reuse journaled probe/measurements instead of re-measuring —
        a killed tune continues where it stopped and produces an
        identical profile.
    reps:
        Measurement repetitions per candidate (best rep by p99).
    """

    subsystem: str
    workload: Optional[object] = None
    probe: Optional[MachineProbe] = None
    budget_s: float = 60.0
    top_k: int = 5
    journal_path: Optional[Union[str, Path]] = None
    resume: bool = False
    reps: int = 1
    #: Populated by :meth:`run`.
    results: List[CandidateResult] = field(default_factory=list, init=False)
    predictions: Dict[str, Prediction] = field(default_factory=dict, init=False)
    n_candidates: int = field(default=0, init=False)
    n_reused: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.subsystem not in SUBSYSTEMS:
            raise TuningError(
                f"unknown subsystem {self.subsystem!r}; expected one of "
                f"{SUBSYSTEMS}"
            )
        if self.top_k < 1:
            raise TuningError(f"top_k must be >= 1, got {self.top_k}")
        if self.budget_s <= 0:
            raise TuningError(f"budget_s must be positive, got {self.budget_s}")
        if self.resume and self.journal_path is None:
            raise TuningError("resume requires a journal_path")

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def enumerate_candidates(self) -> List[Dict[str, object]]:
        """Every canonical candidate config, deterministically ordered.

        Serving/cluster candidates vary only the knobs their batching
        mode consumes (the other mode's knobs stay at defaults);
        training candidates are the plain cross product. ``fit_workers``
        values beyond the probed core count are dropped — they cannot
        help and waste validation budget.
        """
        registry = knobs_for(self.subsystem)
        base = defaults_for(self.subsystem)
        candidates: List[Dict[str, object]] = []
        if self.subsystem == "training":
            names = sorted(name for name in registry if registry[name].search)
            spaces = [registry[name].search for name in names]
            for values in itertools.product(*spaces):
                candidate = dict(base)
                candidate.update(dict(zip(names, values)))
                candidates.append(candidate)
            if self.probe is not None:
                cores = self.probe.cpu_count
                candidates = [
                    c for c in candidates
                    if int(c.get("fit_workers", 1)) <= max(cores, 1)
                ]
        else:
            mode_specific = {
                name
                for names in MODE_KNOBS.values()
                for name in names
                if name in registry
            }
            shared = sorted(
                name
                for name in registry
                if name not in mode_specific
                and name != "batching"
                and registry[name].search
            )
            shared_spaces = [registry[name].search for name in shared]
            for mode in registry["batching"].search:
                varied = sorted(
                    name
                    for name in MODE_KNOBS.get(str(mode), ())
                    if name in registry
                )
                varied_spaces = [registry[name].search for name in varied]
                for mode_values in itertools.product(*varied_spaces):
                    for shared_values in itertools.product(*shared_spaces):
                        candidate = dict(base)
                        candidate["batching"] = mode
                        candidate.update(dict(zip(varied, mode_values)))
                        candidate.update(dict(zip(shared, shared_values)))
                        candidates.append(candidate)
        # Stable dedup (mode spaces can collide on the default point).
        seen = set()
        unique = []
        for candidate in candidates:
            key = candidate_key(candidate)
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
        return unique

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _workload(self):
        if self.workload is not None:
            return self.workload
        from repro.tuning.measure import ServingWorkload, TrainingWorkload

        if self.subsystem == "training":
            return TrainingWorkload.quick()
        return ServingWorkload.quick()

    def _shape(self, workload) -> WorkloadShape:
        return getattr(workload, "shape", WorkloadShape())

    def _ranked(
        self, candidates: List[Dict[str, object]], model: CostModel, shape
    ) -> List[Dict[str, object]]:
        budget = model.memory_budget_bytes()
        self.predictions = {
            candidate_key(c): model.predict(self.subsystem, c, shape)
            for c in candidates
        }

        def sort_key(candidate: Dict[str, object]):
            key = candidate_key(candidate)
            prediction = self.predictions[key]
            over_budget = bool(budget and prediction.mem_bytes > budget)
            return (over_budget,) + prediction.rank_key(key)

        return sorted(candidates, key=sort_key)

    def run(self) -> MachineProfile:
        """Probe → enumerate → predict → validate top-k → build profile."""
        journal = (
            TuneJournal.load(self.journal_path, self.subsystem)
            if self.resume
            else TuneJournal(
                self.journal_path
                or Path(f"tune-{self.subsystem}.journal.json"),
                self.subsystem,
            )
        )
        if self.probe is None:
            if journal.probe is not None:
                self.probe = MachineProbe.from_dict(journal.probe)
                logger.info("reusing journaled machine probe")
            else:
                self.probe = probe_machine()
        if journal.probe is None:
            journal.set_probe(self.probe.as_dict())
        workload = self._workload()
        shape = self._shape(workload)
        model = CostModel(self.probe)
        candidates = self.enumerate_candidates()
        self.n_candidates = len(candidates)
        ranked = self._ranked(candidates, model, shape)
        logger.info(
            "tune %s: %d candidate(s) enumerated, validating top %d by "
            "measurement (budget %.0fs)",
            self.subsystem, len(candidates), self.top_k, self.budget_s,
        )

        # The default config is always validated first: the tuned choice
        # is the measured argmin over a set containing the hand-picked
        # baseline, so it can never regress it on this machine.
        validation: List[Dict[str, object]] = []
        seen = set()
        for candidate in [defaults_for(self.subsystem)] + ranked[: self.top_k]:
            key = candidate_key(candidate)
            if key not in seen:
                seen.add(key)
                validation.append(candidate)

        start = time.monotonic()
        self.results = []
        self.n_reused = 0
        for index, candidate in enumerate(validation):
            key = candidate_key(candidate)
            measurement = journal.measurement_of(key)
            if measurement is not None:
                self.n_reused += 1
                logger.info(
                    "candidate %d/%d journaled, reusing: %s",
                    index + 1, len(validation), key,
                )
            else:
                spent = time.monotonic() - start
                if self.results and spent >= self.budget_s:
                    logger.info(
                        "budget spent (%.1fs); skipping %d unmeasured "
                        "candidate(s)",
                        spent, len(validation) - index,
                    )
                    break
                logger.info(
                    "measuring candidate %d/%d: %s",
                    index + 1, len(validation), key,
                )
                measurement = workload.measure(candidate, reps=self.reps)
                journal.record(key, candidate, measurement)
            self.results.append(
                CandidateResult(
                    knobs=dict(candidate),
                    predicted=self.predictions[key],
                    measured=dict(measurement),
                )
            )
        if not self.results:
            raise TuningError("tune run validated no candidates")
        best = min(
            self.results,
            key=lambda r: (float(r.measured["p99_ms"]), r.key),
        )
        logger.info(
            "tune %s winner: %s (measured p99 %.3fms over %d validated)",
            self.subsystem, best.key, float(best.measured["p99_ms"]),
            len(self.results),
        )
        profile = MachineProfile(
            machine=self.probe.as_dict(), created=journal.created
        )
        profile.set_subsystem(
            self.subsystem,
            best.knobs,
            validation=best.measured,
            predicted=predictions_as_dict(best.predicted),
        )
        return profile

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worst_candidate(self) -> Dict[str, object]:
        """The enumerated candidate with the worst predicted cost.

        The benchmark measures this deliberately bad-in-range config to
        prove the tuned choice separates from it; requires
        :meth:`run` (or at least prediction) to have happened.
        """
        if not self.predictions:
            candidates = self.enumerate_candidates()
            probe = self.probe or probe_machine()
            model = CostModel(probe)
            shape = self._shape(self._workload())
            self.predictions = {
                candidate_key(c): model.predict(self.subsystem, c, shape)
                for c in candidates
            }
            ranked = self._ranked(candidates, model, shape)
        else:
            ranked = sorted(
                self.enumerate_candidates(),
                key=lambda c: self.predictions[candidate_key(c)].rank_key(
                    candidate_key(c)
                ),
            )
        return dict(ranked[-1])


__all__ = [
    "AutoTuner",
    "CandidateResult",
    "MODE_KNOBS",
    "TUNE_JOURNAL_VERSION",
    "TuneJournal",
    "candidate_key",
]
