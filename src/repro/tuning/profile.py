"""The machine-profile file: probed facts + chosen knobs, checksummed.

A profile is the durable output of one tune run and the startup input of
every profile-aware entry point (``repro-serve serve --profile``,
``repro-serve cluster --profile``, ``Recommender.fit(profile=...)``).
One JSON document holds:

* ``machine`` — the probed hardware facts
  (:class:`~repro.tuning.probe.MachineProbe`), recording *why* the
  knobs were chosen;
* ``subsystems`` — per subsystem (``serving`` / ``cluster`` /
  ``training``): the chosen knob values, the measured validation
  numbers they earned, and the cost model's prediction for them;
* ``profile_version`` + ``checksum`` — a schema version gate and a
  sha256 over the canonical body, so a stale, hand-edited, or torn
  profile raises a typed :class:`~repro.exceptions.TuningError` at
  load time instead of silently misconfiguring a server.

Writes go through the atomic temp+fsync+rename layer
(:mod:`repro.resilience.atomic`); loads re-validate every knob against
the registry (:mod:`repro.tuning.defaults`), so an out-of-range value —
whatever wrote it — can never reach a ``ServiceConfig``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.exceptions import TuningError
from repro.resilience.atomic import atomic_write_text, sha256_bytes
from repro.tuning.defaults import SUBSYSTEMS, knobs_for

#: Profile schema version; bump on breaking layout changes.
PROFILE_VERSION = 1

PathLike = Union[str, Path]


def _canonical_json(payload: object) -> str:
    """Deterministic rendering the checksum is computed over."""
    return json.dumps(payload, indent=2, sort_keys=True)


@dataclass
class MachineProfile:
    """One machine's probed facts and tuned knob choices.

    ``subsystems`` maps a subsystem name to a block shaped as::

        {"knobs": {...}, "validation": {...}, "predicted": {...}}

    ``validation``/``predicted`` are optional measurement metadata;
    ``knobs`` is what consumers load.
    """

    machine: Dict[str, object] = field(default_factory=dict)
    subsystems: Dict[str, Dict[str, object]] = field(default_factory=dict)
    created: str = ""
    profile_version: int = PROFILE_VERSION

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_subsystem(
        self,
        subsystem: str,
        knobs: Mapping[str, object],
        validation: Optional[Mapping[str, object]] = None,
        predicted: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one subsystem's chosen knobs (validated immediately)."""
        registry = knobs_for(subsystem)
        validated = {}
        for name in sorted(knobs):
            if name not in registry:
                raise TuningError(
                    f"unknown knob {name!r} for subsystem {subsystem!r}"
                )
            validated[name] = registry[name].validate(knobs[name])
        block: Dict[str, object] = {"knobs": validated}
        if validation is not None:
            block["validation"] = dict(validation)
        if predicted is not None:
            block["predicted"] = dict(predicted)
        self.subsystems[subsystem] = block

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knobs_for(
        self, subsystem: str, required: bool = True
    ) -> Dict[str, object]:
        """The chosen knob values of one subsystem.

        ``required=False`` returns ``{}`` when the profile has no block
        for the subsystem (e.g. a serving-only profile consulted by a
        training run).
        """
        block = self.subsystems.get(subsystem)
        if block is None:
            if required:
                raise TuningError(
                    f"profile has no {subsystem!r} block; tuned subsystems: "
                    f"{sorted(self.subsystems) or 'none'} — run "
                    f"'repro-experiments tune {subsystem}' first"
                )
            return {}
        return dict(block.get("knobs", {}))  # type: ignore[union-attr]

    def validation_for(self, subsystem: str) -> Dict[str, object]:
        """Measured validation numbers recorded for one subsystem."""
        block = self.subsystems.get(subsystem, {})
        return dict(block.get("validation", {}))  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def body(self) -> Dict[str, object]:
        """The checksummed document body (everything but the checksum)."""
        return {
            "profile_version": self.profile_version,
            "created": self.created,
            "machine": self.machine,
            "subsystems": self.subsystems,
        }

    def checksum(self) -> str:
        """sha256 over the canonical JSON body."""
        return sha256_bytes(_canonical_json(self.body()).encode("utf-8"))

    def save(self, path: PathLike) -> Path:
        """Atomically write the profile (body + checksum) to ``path``."""
        payload = self.body()
        payload["checksum"] = self.checksum()
        return atomic_write_text(path, _canonical_json(payload) + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "MachineProfile":
        """Read and fully validate a profile file.

        Raises
        ------
        TuningError
            When the file is missing, not JSON, not an object, carries
            an unsupported ``profile_version``, fails its checksum, or
            names an unknown subsystem / unknown knob / out-of-range
            knob value.
        """
        path = Path(path)
        if not path.exists():
            raise TuningError(f"machine profile not found: {path}")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TuningError(
                f"malformed machine profile at {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise TuningError(
                f"malformed machine profile at {path}: expected a JSON "
                f"object, got {type(payload).__name__}"
            )
        version = payload.get("profile_version")
        if version != PROFILE_VERSION:
            raise TuningError(
                f"stale machine profile at {path}: version {version!r}, "
                f"this build reads version {PROFILE_VERSION} — re-run "
                f"'repro-experiments tune'"
            )
        subsystems = payload.get("subsystems", {})
        if not isinstance(subsystems, dict):
            raise TuningError(
                f"malformed machine profile at {path}: 'subsystems' must "
                f"be an object"
            )
        profile = cls(
            machine=dict(payload.get("machine", {})),
            subsystems={},
            created=str(payload.get("created", "")),
            profile_version=PROFILE_VERSION,
        )
        for subsystem, block in subsystems.items():
            if subsystem not in SUBSYSTEMS:
                raise TuningError(
                    f"machine profile at {path} names unknown subsystem "
                    f"{subsystem!r}; expected one of {SUBSYSTEMS}"
                )
            if not isinstance(block, dict) or not isinstance(
                block.get("knobs", {}), dict
            ):
                raise TuningError(
                    f"malformed machine profile at {path}: subsystem "
                    f"{subsystem!r} block must be an object with a "
                    f"'knobs' object"
                )
            profile.set_subsystem(
                subsystem,
                block.get("knobs", {}),
                validation=block.get("validation"),
                predicted=block.get("predicted"),
            )
        recorded = payload.get("checksum")
        expected = profile.checksum()
        if recorded != expected:
            raise TuningError(
                f"machine profile at {path} fails its checksum "
                f"(recorded {str(recorded)[:12]}…, computed "
                f"{expected[:12]}…) — the file was edited or torn; "
                f"re-run 'repro-experiments tune'"
            )
        return profile


def load_profile_knobs(
    profile: Optional[Union[PathLike, MachineProfile]],
    subsystem: str,
    required: bool = True,
) -> Dict[str, object]:
    """Convenience: ``None`` → ``{}``, path → load, profile → query.

    The one helper every profile-aware entry point funnels through.
    """
    if profile is None:
        return {}
    if not isinstance(profile, MachineProfile):
        profile = MachineProfile.load(profile)
    return profile.knobs_for(subsystem, required=required)


__all__ = [
    "MachineProfile",
    "PROFILE_VERSION",
    "load_profile_knobs",
]
