"""Quick micro-probes of the machine feeding the analytic cost model.

A tune run starts by measuring a handful of hardware facts in a few
seconds — never minutes — because the cost model only needs *relative*
constants to rank thousands of candidate configurations before the
expensive measured validation of the top few:

* **kernel µs/row** at several batch sizes — one ``recommend_batch``
  timing sweep fit to ``time = overhead + us_per_row * rows`` by least
  squares, capturing both the per-call overhead (which penalizes tiny
  ``check_interval``) and the marginal row cost;
* **bytes/user** for every history-store kind (dict vs arena vs
  mmap-backed arena) via :func:`repro.store.store_memory_profile`,
  which prices the LRU ``capacity`` × ``store`` memory trade;
* **fork/worker startup cost** — one fork-pool spawn + roundtrip,
  pricing ``fit_workers`` against the parallel cache build's payoff;
* core count and available memory, bounding worker counts and the
  memory budget.

The probe result is a plain dataclass that serializes into the machine
profile, so a profile records *why* its knobs were chosen.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import TuningError
from repro.logging_utils import get_logger

logger = get_logger("tuning.probe")

#: Query counts of the kernel timing sweep.
PROBE_BATCH_SIZES = (1, 4, 16, 64)

#: Users × events of the bytes-per-user probe population.
PROBE_STORE_USERS = 256
PROBE_STORE_EVENTS = 96


@dataclass(frozen=True)
class MachineProbe:
    """Measured hardware facts of one machine (profile ``machine`` block).

    Attributes
    ----------
    cpu_count:
        Cores visible to the process.
    kernel_overhead_us / kernel_us_per_row:
        Least-squares fit of the scoring-kernel sweep:
        ``call time (µs) = overhead + us_per_row * candidate rows``.
    probe_batch_sizes / probe_kernel_us:
        The raw sweep (query counts and measured µs per call) the fit
        came from, kept for auditability.
    probe_candidate_width:
        Mean candidates per query during the sweep (the ``rows`` unit).
    bytes_per_user:
        Resident bytes per active user for each history-store kind.
    fork_startup_ms:
        One fork-pool worker spawn + roundtrip; 0.0 when the platform
        has no fork start method.
    mem_available_bytes:
        ``MemAvailable`` from ``/proc/meminfo`` (0 when unreadable).
    probe_s:
        Wall-clock the whole probe took.
    """

    cpu_count: int
    kernel_overhead_us: float
    kernel_us_per_row: float
    probe_batch_sizes: Tuple[int, ...]
    probe_kernel_us: Tuple[float, ...]
    probe_candidate_width: float
    bytes_per_user: Dict[str, float] = field(default_factory=dict)
    fork_startup_ms: float = 0.0
    mem_available_bytes: float = 0.0
    probe_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["probe_batch_sizes"] = list(self.probe_batch_sizes)
        payload["probe_kernel_us"] = list(self.probe_kernel_us)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MachineProbe":
        try:
            return cls(
                cpu_count=int(payload["cpu_count"]),  # type: ignore[arg-type]
                kernel_overhead_us=float(payload["kernel_overhead_us"]),  # type: ignore[arg-type]
                kernel_us_per_row=float(payload["kernel_us_per_row"]),  # type: ignore[arg-type]
                probe_batch_sizes=tuple(
                    int(v) for v in payload.get("probe_batch_sizes", ())  # type: ignore[union-attr]
                ),
                probe_kernel_us=tuple(
                    float(v) for v in payload.get("probe_kernel_us", ())  # type: ignore[union-attr]
                ),
                probe_candidate_width=float(
                    payload.get("probe_candidate_width", 1.0)  # type: ignore[arg-type]
                ),
                bytes_per_user={
                    str(k): float(v)
                    for k, v in dict(payload.get("bytes_per_user", {})).items()  # type: ignore[arg-type]
                },
                fork_startup_ms=float(payload.get("fork_startup_ms", 0.0)),  # type: ignore[arg-type]
                mem_available_bytes=float(
                    payload.get("mem_available_bytes", 0.0)  # type: ignore[arg-type]
                ),
                probe_s=float(payload.get("probe_s", 0.0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningError(f"malformed machine-probe payload: {exc}") from exc


def _mem_available_bytes() -> float:
    """``MemAvailable`` in bytes from /proc/meminfo, 0 where unreadable."""
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    return 0.0


def _probe_fork_startup_ms() -> float:
    """Spawn one fork-pool worker, run a trivial task, tear it down."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return 0.0
    context = multiprocessing.get_context("fork")
    start = time.perf_counter()
    with context.Pool(processes=1) as pool:
        pool.apply(os.getpid)
    return (time.perf_counter() - start) * 1e3


def _probe_stores() -> Dict[str, float]:
    """Bytes per active user for each history-store kind."""
    import tempfile

    from repro.store import STORE_KINDS, make_history_store, store_memory_profile

    rng = np.random.default_rng(20)
    histories = [
        rng.integers(0, 512, size=PROBE_STORE_EVENTS).tolist()
        for _ in range(PROBE_STORE_USERS)
    ]
    bytes_per_user: Dict[str, float] = {}
    for kind in STORE_KINDS:
        directory = (
            tempfile.mkdtemp(prefix="repro-probe-arena-")
            if kind == "arena-mmap"
            else None
        )
        store = make_history_store(histories, kind=kind, directory=directory)
        profile = store_memory_profile(store, range(PROBE_STORE_USERS))
        bytes_per_user[kind] = round(profile["bytes_per_user"], 1)
    return bytes_per_user


def _probe_kernel(model, split, window, repeats: int = 3):
    """Time ``recommend_batch`` at several query counts; fit a line.

    Returns ``(overhead_us, us_per_row, per_call_us, width)`` where
    ``width`` is the mean candidate count per query (rows = queries ×
    width) and ``per_call_us`` is the median measured time per sweep
    point.
    """
    from repro.engine.query import Query

    # The longest training prefix gives the widest realistic candidate
    # sets; queries walk backwards from its end like live traffic.
    user = max(
        range(split.n_users), key=lambda u: split.train_boundary(u)
    )
    sequence = split.train_sequence(user)
    t_max = len(sequence)
    candidates_pool = sorted(set(sequence.items.tolist()))
    if not candidates_pool:
        raise TuningError("kernel probe needs a non-empty training prefix")
    width = max(1, len(candidates_pool))
    per_call_us = []
    for n_queries in PROBE_BATCH_SIZES:
        queries = [
            Query(
                t=max(1, t_max - 1 - (i % max(1, t_max - 1))),
                candidates=list(candidates_pool),
            )
            for i in range(n_queries)
        ]
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            model.recommend_batch(sequence, queries, 10)
            timings.append((time.perf_counter() - start) * 1e6)
        per_call_us.append(float(np.median(timings)))
    rows = np.asarray(PROBE_BATCH_SIZES, dtype=np.float64) * width
    design = np.stack([np.ones_like(rows), rows], axis=1)
    coeffs, *_ = np.linalg.lstsq(
        design, np.asarray(per_call_us, dtype=np.float64), rcond=None
    )
    overhead_us = max(float(coeffs[0]), 0.0)
    us_per_row = max(float(coeffs[1]), 1e-4)
    return overhead_us, us_per_row, per_call_us, float(width)


def _quick_split(seed: int):
    """A tiny synthetic split for self-contained probes."""
    from repro.data.split import temporal_split
    from repro.synth.base import SyntheticConfig, generate_dataset

    config = SyntheticConfig(
        name="probe",
        n_users=4,
        n_items=600,
        sequence_length_range=(260, 320),
        catalog_size_range=(60, 90),
        zipf_exponent=0.8,
        p_explore_range=(0.2, 0.3),
        memory_span=80,
        frequency_exponent=0.05,
        recency_exponent=0.05,
        explore_weight_exponent=0.0,
    )
    return temporal_split(generate_dataset(config, seed))


def probe_machine(
    model=None,
    split=None,
    window=None,
    seed: int = 7,
    include_stores: bool = True,
    include_fork: bool = True,
) -> MachineProbe:
    """Measure the machine facts the cost model needs (a few seconds).

    ``model``/``split`` default to a Recency recommender over a tiny
    synthetic split; pass the real serving model and split (as the
    autotune bench does) to calibrate the kernel constants on the exact
    workload being tuned.
    """
    from repro.config import WindowConfig
    from repro.models.recency import RecencyRecommender

    start = time.perf_counter()
    if split is None:
        split = _quick_split(seed)
    if model is None:
        model = RecencyRecommender().fit(split)
    window = window or WindowConfig()
    overhead_us, us_per_row, per_call_us, width = _probe_kernel(
        model, split, window
    )
    probe = MachineProbe(
        cpu_count=os.cpu_count() or 1,
        kernel_overhead_us=round(overhead_us, 2),
        kernel_us_per_row=round(us_per_row, 4),
        probe_batch_sizes=tuple(PROBE_BATCH_SIZES),
        probe_kernel_us=tuple(round(v, 1) for v in per_call_us),
        probe_candidate_width=round(width, 1),
        bytes_per_user=_probe_stores() if include_stores else {},
        fork_startup_ms=(
            round(_probe_fork_startup_ms(), 2) if include_fork else 0.0
        ),
        mem_available_bytes=_mem_available_bytes(),
        probe_s=round(time.perf_counter() - start, 3),
    )
    logger.info(
        "machine probe: %d core(s), kernel %.1fus + %.3fus/row, "
        "fork %.1fms, %s",
        probe.cpu_count, probe.kernel_overhead_us, probe.kernel_us_per_row,
        probe.fork_startup_ms,
        {k: f"{v:.0f}B/user" for k, v in probe.bytes_per_user.items()},
    )
    return probe


__all__ = [
    "MachineProbe",
    "PROBE_BATCH_SIZES",
    "probe_machine",
]
