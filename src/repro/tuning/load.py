"""Seeded arrival processes shared by the tuner and the benchmarks.

Latency measurements are only comparable when every candidate
configuration replays the *same* arrival schedule, so the generators
here are seeded and pure. They started life in ``benchmarks/conftest.py``
pacing the serving/cluster benches; the autotuner
(:mod:`repro.tuning.autotune`) validates candidate configurations with
the identical pacing, so one implementation now lives in the library and
the bench conftest re-exports it.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


class LoadGenerator:
    """Deterministic arrival processes shared by benches and the tuner.

    Latency guards are only comparable when every mode replays the
    *same* arrival schedule, so the generators are seeded and pure: the
    serving bench feeds both batching modes one schedule from
    :meth:`bursty_times`, the cluster benches pace their client threads
    with :meth:`poisson_gaps` instead of ad-hoc tight loops, and the
    autotuner measures every validated candidate against one shared
    bursty schedule.
    """

    @staticmethod
    def poisson_gaps(n: int, rate_hz: float, seed: int) -> np.ndarray:
        """``n`` exponential inter-arrival gaps (seconds) at ``rate_hz``."""
        rng = np.random.default_rng(seed)
        return rng.exponential(1.0 / rate_hz, size=n)

    @staticmethod
    def bursty_times(
        n: int,
        *,
        seed: int,
        calm_rate_hz: float,
        burst_size: int,
        calm_between: int,
    ) -> np.ndarray:
        """Absolute arrival times of a bursty (Markov-modulated) process.

        Alternates a calm phase — ``calm_between`` arrivals with
        exponential gaps at ``calm_rate_hz`` — with a burst phase of
        ``burst_size`` simultaneous arrivals. This is the adversarial
        shape for drain-then-refill batching: bursts overwhelm one
        batch window while calm singles pay the full straggler wait.
        """
        rng = np.random.default_rng(seed)
        times: List[float] = []
        t = 0.0
        while len(times) < n:
            for _ in range(calm_between):
                t += rng.exponential(1.0 / calm_rate_hz)
                times.append(t)
                if len(times) >= n:
                    break
            if len(times) >= n:
                break
            t += rng.exponential(1.0 / calm_rate_hz)
            times.extend([t] * min(burst_size, n - len(times)))
        return np.asarray(times[:n], dtype=np.float64)

    @staticmethod
    def percentiles_ms(latencies) -> Dict[str, float]:
        """p50/p95/p99 of a latency list (seconds in, milliseconds out)."""
        values = np.asarray(latencies, dtype=np.float64) * 1e3
        return {
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p95_ms": round(float(np.percentile(values, 95)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
        }


__all__ = ["LoadGenerator"]
