"""Tuning: hyper-parameter grid search + profile-guided autotuning.

Two layers live here:

* **Model hyper-parameters** — :class:`~repro.tuning.grid.GridSearch`
  generalizes the paper's Section 5.5 one-axis-at-a-time sweeps over
  λ, γ, K, S, Ω into a reusable utility.
* **System knobs** — the profile-guided autotuner: a knob registry
  (:mod:`~repro.tuning.defaults`), machine micro-probes
  (:mod:`~repro.tuning.probe`), an analytic cost model
  (:mod:`~repro.tuning.cost`), measured validation
  (:mod:`~repro.tuning.measure`), the search engine
  (:mod:`~repro.tuning.autotune`), and the checksummed machine-profile
  file servers load at startup (:mod:`~repro.tuning.profile`).

Attribute access is lazy (PEP 562) so importing :mod:`repro.tuning` —
which :mod:`repro.serving.service` does at class-definition time for
registry defaults — never drags in the model/serving stacks.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "GridPointResult": "repro.tuning.grid",
    "GridSearch": "repro.tuning.grid",
    "expand_grid": "repro.tuning.grid",
    "AutoTuner": "repro.tuning.autotune",
    "TuneJournal": "repro.tuning.autotune",
    "CostModel": "repro.tuning.cost",
    "Prediction": "repro.tuning.cost",
    "WorkloadShape": "repro.tuning.cost",
    "Knob": "repro.tuning.defaults",
    "KNOBS": "repro.tuning.defaults",
    "ResolvedKnob": "repro.tuning.defaults",
    "SUBSYSTEMS": "repro.tuning.defaults",
    "default_of": "repro.tuning.defaults",
    "defaults_for": "repro.tuning.defaults",
    "describe": "repro.tuning.defaults",
    "knobs_for": "repro.tuning.defaults",
    "resolve": "repro.tuning.defaults",
    "values_of": "repro.tuning.defaults",
    "LoadGenerator": "repro.tuning.load",
    "ServingWorkload": "repro.tuning.measure",
    "TrainingWorkload": "repro.tuning.measure",
    "MachineProbe": "repro.tuning.probe",
    "probe_machine": "repro.tuning.probe",
    "MachineProfile": "repro.tuning.profile",
    "load_profile_knobs": "repro.tuning.profile",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.tuning.autotune import AutoTuner, TuneJournal
    from repro.tuning.cost import CostModel, Prediction, WorkloadShape
    from repro.tuning.defaults import (
        KNOBS,
        SUBSYSTEMS,
        Knob,
        ResolvedKnob,
        default_of,
        defaults_for,
        describe,
        knobs_for,
        resolve,
        values_of,
    )
    from repro.tuning.grid import GridPointResult, GridSearch, expand_grid
    from repro.tuning.load import LoadGenerator
    from repro.tuning.measure import ServingWorkload, TrainingWorkload
    from repro.tuning.probe import MachineProbe, probe_machine
    from repro.tuning.profile import MachineProfile, load_profile_knobs


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.tuning' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)
