"""Hyper-parameter search over :class:`~repro.config.TSPPRConfig`.

The paper's Section 5.5 sweeps λ, γ, K, S, and Ω one axis at a time;
:class:`~repro.tuning.grid.GridSearch` generalizes that into a reusable
utility: give it a parameter grid (including the window's ``min_gap``),
it trains one model per point, evaluates with the RRC protocol, and
returns a ranked table of results.
"""

from repro.tuning.grid import GridPointResult, GridSearch, expand_grid

__all__ = ["GridPointResult", "GridSearch", "expand_grid"]
