"""Grid search for TS-PPR (and config-compatible models).

Example
-------
>>> from repro.tuning import GridSearch
>>> search = GridSearch(
...     {"n_factors": [10, 40], "gamma_latent": [0.05, 0.1]},
...     metric="maap", top_n=10,
... )  # doctest: +SKIP
>>> best = search.fit(split).best  # doctest: +SKIP
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Sequence

from repro.config import EvaluationConfig, TSPPRConfig, WindowConfig
from repro.data.split import SplitDataset
from repro.evaluation.metrics import AccuracyResult
from repro.evaluation.protocol import evaluate_recommender
from repro.exceptions import ExperimentError
from repro.logging_utils import get_logger
from repro.models.base import Recommender
from repro.models.tsppr import TSPPRRecommender

logger = get_logger("tuning")

#: Grid keys routed to the window protocol rather than the model config.
WINDOW_KEYS = ("window_size", "min_gap")


def expand_grid(grid: Mapping[str, Sequence]) -> Iterator[Dict[str, object]]:
    """Yield every combination of the grid as a flat dict.

    Keys are iterated in sorted order so the expansion is deterministic
    regardless of dict construction order.
    """
    if not grid:
        raise ExperimentError("grid must contain at least one parameter")
    keys = sorted(grid)
    for key in keys:
        if not grid[key]:
            raise ExperimentError(f"grid axis {key!r} is empty")
    for values in itertools.product(*(grid[key] for key in keys)):
        yield dict(zip(keys, values))


@dataclass(frozen=True)
class GridPointResult:
    """One evaluated grid point."""

    parameters: Mapping[str, object]
    accuracy: AccuracyResult
    score: float

    def as_row(self) -> Dict[str, object]:
        row = dict(self.parameters)
        row["score"] = round(self.score, 4)
        return row


@dataclass
class GridSearch:
    """Exhaustive search over a TS-PPR parameter grid.

    Parameters
    ----------
    grid:
        Axis name → values. Axes may be any
        :class:`~repro.config.TSPPRConfig` field plus the window keys
        ``window_size`` / ``min_gap``.
    base_config:
        Starting configuration each point overrides.
    metric:
        ``"maap"`` or ``"miap"``.
    top_n:
        Cut-off the score is read at.
    model_factory:
        Model built per point; defaults to TS-PPR. Receives the
        resolved :class:`TSPPRConfig`.
    """

    grid: Mapping[str, Sequence]
    base_config: TSPPRConfig = field(default_factory=TSPPRConfig)
    metric: str = "maap"
    top_n: int = 10
    model_factory: Callable[[TSPPRConfig], Recommender] = TSPPRRecommender
    results: List[GridPointResult] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.metric not in ("maap", "miap"):
            raise ExperimentError(
                f"metric must be 'maap' or 'miap', got {self.metric!r}"
            )
        if self.top_n <= 0:
            raise ExperimentError(f"top_n must be positive, got {self.top_n}")
        config_fields = set(TSPPRConfig.__dataclass_fields__)
        for key in self.grid:
            if key not in config_fields and key not in WINDOW_KEYS:
                raise ExperimentError(
                    f"unknown grid axis {key!r}; config fields or "
                    f"{WINDOW_KEYS} expected"
                )

    def fit(self, split: SplitDataset) -> "GridSearch":
        """Train and evaluate every grid point; results sorted best-first."""
        self.results = []
        for parameters in expand_grid(self.grid):
            window_overrides = {
                key: parameters[key] for key in WINDOW_KEYS if key in parameters
            }
            config_overrides = {
                key: value
                for key, value in parameters.items()
                if key not in WINDOW_KEYS
            }
            config = (
                self.base_config.with_overrides(**config_overrides)
                if config_overrides
                else self.base_config
            )
            base_window = WindowConfig()
            window = WindowConfig(
                window_size=window_overrides.get(
                    "window_size", base_window.window_size
                ),
                min_gap=window_overrides.get("min_gap", base_window.min_gap),
            )
            logger.info("grid point %s", parameters)
            model = self.model_factory(config)
            model.fit(split, window)
            accuracy = evaluate_recommender(
                model,
                split,
                EvaluationConfig(top_ns=(self.top_n,), window=window),
            )
            values = accuracy.maap if self.metric == "maap" else accuracy.miap
            self.results.append(
                GridPointResult(
                    parameters=dict(parameters),
                    accuracy=accuracy,
                    score=values[self.top_n],
                )
            )
        self.results.sort(key=lambda point: -point.score)
        return self

    @property
    def best(self) -> GridPointResult:
        """The highest-scoring grid point."""
        if not self.results:
            raise ExperimentError("GridSearch.fit has not been run")
        return self.results[0]

    def as_rows(self) -> List[Dict[str, object]]:
        """All points as table rows, best first."""
        return [point.as_row() for point in self.results]
