"""The columnar session-memory arena.

A :class:`SessionArena` packs every user's base history into two (or
three) contiguous numpy columns — the cu_seqlens idiom of
:mod:`repro.engine.packed`:

::

    items   : int32[total]          one entry per consumption, all users
    offsets : int64[n_users + 1]    user u's history = items[offsets[u]:offsets[u+1]]
    stamps  : int64[total]          optional event timestamps, aligned with items

User ``u``'s history is the zero-copy slice
``items[offsets[u]:offsets[u+1]]`` — no per-user Python objects, no
pointer-per-element lists, and the whole arena can live in one
mmap-backed file (:meth:`SessionArena.save` / :meth:`SessionArena.open`)
so resident memory is only what the OS pages in.

:class:`ArenaHistoryStore` implements the
:class:`~repro.store.base.HistoryStore` protocol on top: reads are
zero-copy :class:`ArenaHistoryView` slices of the arena, live appends go
to small per-user **tail segments** (growable int32 buffers, doubling
like ``PackedCandidateBatch``) that :meth:`ArenaHistoryStore.compact`
merges back into a fresh arena. Eviction of a serving session costs
nothing here — the tail stays in the store, so rehydration is a view,
not a copy.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import StoreError
from repro.store.base import HistoryStore

#: Items are stored as int32: ids must fit the encoding.
_MAX_ITEM = np.iinfo(np.int32).max

#: Initial capacity of a per-user tail segment (doubles as it grows).
_TAIL_INITIAL_CAPACITY = 8

_ITEMS_FILE = "items.npy"
_OFFSETS_FILE = "offsets.npy"
_STAMPS_FILE = "stamps.npy"
_META_FILE = "arena.json"


def _as_item_column(values: Sequence[int]) -> np.ndarray:
    """Validate and narrow one user's items to the int32 encoding."""
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise StoreError(
            f"items must be one-dimensional, got shape {array.shape}"
        )
    if array.size:
        low, high = int(array.min()), int(array.max())
        if low < 0:
            raise StoreError("item indices must be non-negative")
        if high > _MAX_ITEM:
            raise StoreError(
                f"item {high} does not fit the arena's int32 encoding"
            )
    return array.astype(np.int32)


class ArenaHistoryView(ConsumptionSequence):
    """A user's history as a zero-copy window into arena columns.

    Behaviourally a :class:`~repro.data.sequence.ConsumptionSequence`
    (every model, session, and feature kernel consumes it unchanged);
    representationally a borrowed read-only int32 slice — construction
    copies nothing and allocates only the wrapper object.
    """

    __slots__ = ()

    def __init__(self, user: int, raw: np.ndarray) -> None:
        # Deliberately bypasses ConsumptionSequence.__init__: the parent
        # would copy to an owned int64 array, which is exactly the
        # per-user cost the arena exists to avoid. ``raw`` is trusted to
        # be a validated, read-only 1-D slice of an arena column.
        self.user = int(user)
        self._items = raw
        self._positions_of = None


class SessionArena:
    """Immutable columnar base histories for a population of users.

    Parameters
    ----------
    items:
        All users' consumptions concatenated, int32, consumption order
        within each user.
    offsets:
        int64 array of ``n_users + 1`` cumulative lengths; user ``u``
        owns ``items[offsets[u]:offsets[u+1]]``.
    stamps:
        Optional int64 timestamps aligned with ``items``.
    """

    __slots__ = ("items", "offsets", "stamps")

    def __init__(
        self,
        items: np.ndarray,
        offsets: np.ndarray,
        stamps: Optional[np.ndarray] = None,
    ) -> None:
        # asanyarray, not asarray: mmap-backed columns must keep their
        # np.memmap identity so accounting can tell pages from heap.
        items = np.asanyarray(items)
        offsets = np.asanyarray(offsets)
        if items.dtype != np.int32:
            raise StoreError(
                f"arena items must be int32, got {items.dtype}"
            )
        if items.ndim != 1 or offsets.ndim != 1:
            raise StoreError("arena columns must be one-dimensional")
        if offsets.dtype != np.int64:
            raise StoreError(
                f"arena offsets must be int64, got {offsets.dtype}"
            )
        if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != items.size:
            raise StoreError(
                f"offsets must run from 0 to items.size ({items.size}), got "
                f"[{offsets[0] if offsets.size else '∅'}, "
                f"{offsets[-1] if offsets.size else '∅'}]"
            )
        if offsets.size > 1 and np.any(np.diff(offsets) < 0):
            raise StoreError("offsets must be non-decreasing")
        if stamps is not None:
            stamps = np.asanyarray(stamps)
            if stamps.shape != items.shape:
                raise StoreError(
                    f"stamps shape {stamps.shape} does not match items "
                    f"shape {items.shape}"
                )
            if stamps.dtype != np.int64:
                raise StoreError(
                    f"arena stamps must be int64, got {stamps.dtype}"
                )
        for column in (items, offsets, stamps):
            if column is not None and not isinstance(column, np.memmap):
                column.setflags(write=False)
        self.items = items
        self.offsets = offsets
        self.stamps = stamps

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_histories(
        cls,
        histories: Iterable[Sequence[int]],
        stamps: Optional[Iterable[Sequence[int]]] = None,
    ) -> "SessionArena":
        """Pack per-user histories (index = dense user id) into an arena."""
        columns = [_as_item_column(history) for history in histories]
        lengths = np.array([c.size for c in columns], dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        items = (
            np.concatenate(columns)
            if columns
            else np.empty(0, dtype=np.int32)
        )
        stamp_column: Optional[np.ndarray] = None
        if stamps is not None:
            stamp_parts = [
                np.asarray(part, dtype=np.int64) for part in stamps
            ]
            if len(stamp_parts) != len(columns) or any(
                part.size != column.size
                for part, column in zip(stamp_parts, columns)
            ):
                raise StoreError(
                    "stamps must align with histories user by user"
                )
            stamp_column = (
                np.concatenate(stamp_parts)
                if stamp_parts
                else np.empty(0, dtype=np.int64)
            )
        return cls(items, offsets, stamps=stamp_column)

    @classmethod
    def from_sequences(
        cls, sequences: Iterable[ConsumptionSequence]
    ) -> "SessionArena":
        """Pack dense-user-indexed sequences (as from a ``Dataset``)."""
        return cls.from_histories(
            sequence.items for sequence in sequences
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def n_events(self) -> int:
        return int(self.items.size)

    @property
    def nbytes(self) -> int:
        """Total column bytes (counts mmap-backed columns at full size)."""
        total = self.items.nbytes + self.offsets.nbytes
        if self.stamps is not None:
            total += self.stamps.nbytes
        return int(total)

    def length(self, user: int) -> int:
        """History length of ``user`` (0 for users outside the arena)."""
        if not 0 <= user < self.n_users:
            return 0
        return int(self.offsets[user + 1] - self.offsets[user])

    def user_items(self, user: int) -> np.ndarray:
        """Zero-copy int32 slice of ``user``'s history."""
        if not 0 <= user < self.n_users:
            return np.empty(0, dtype=np.int32)
        return self.items[self.offsets[user] : self.offsets[user + 1]]

    def user_stamps(self, user: int) -> Optional[np.ndarray]:
        """Zero-copy timestamp slice, or ``None`` without a stamp column."""
        if self.stamps is None or not 0 <= user < self.n_users:
            return None
        return self.stamps[self.offsets[user] : self.offsets[user + 1]]

    # ------------------------------------------------------------------
    # Persistence (mmap backing)
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Write the columns under ``directory`` (one ``.npy`` per column)."""
        os.makedirs(directory, exist_ok=True)
        np.save(os.path.join(directory, _ITEMS_FILE), self.items)
        np.save(os.path.join(directory, _OFFSETS_FILE), self.offsets)
        if self.stamps is not None:
            np.save(os.path.join(directory, _STAMPS_FILE), self.stamps)
        meta = {
            "version": 1,
            "n_users": self.n_users,
            "n_events": self.n_events,
            "has_stamps": self.stamps is not None,
        }
        with open(os.path.join(directory, _META_FILE), "w") as handle:
            json.dump(meta, handle)

    @classmethod
    def exists(cls, directory: str) -> bool:
        """Whether ``directory`` holds a saved arena."""
        return os.path.exists(os.path.join(directory, _META_FILE))

    @classmethod
    def open(cls, directory: str, mmap: bool = True) -> "SessionArena":
        """Load a saved arena, mmap-backed by default.

        With ``mmap=True`` the columns are ``np.memmap`` views: resident
        memory is only the pages actually touched, so a million-user
        arena costs near-zero RAM until sliced.
        """
        meta_path = os.path.join(directory, _META_FILE)
        if not os.path.exists(meta_path):
            raise StoreError(f"no arena found under {directory!r}")
        with open(meta_path) as handle:
            meta = json.load(handle)
        mode = "r" if mmap else None
        items = np.load(os.path.join(directory, _ITEMS_FILE), mmap_mode=mode)
        offsets = np.load(
            os.path.join(directory, _OFFSETS_FILE), mmap_mode=mode
        )
        stamps = None
        if meta.get("has_stamps"):
            stamps = np.load(
                os.path.join(directory, _STAMPS_FILE), mmap_mode=mode
            )
        return cls(items, offsets, stamps=stamps)

    def __repr__(self) -> str:
        backing = "mmap" if isinstance(self.items, np.memmap) else "ram"
        return (
            f"SessionArena(users={self.n_users}, events={self.n_events}, "
            f"backing={backing})"
        )


class _TailSegment:
    """One user's live consumptions: a growable int32 column.

    Same doubling discipline as ``PackedCandidateBatch``; a tail holding
    ``n`` events costs ~``4n`` bytes plus one small Python object,
    against ~28 bytes *per event* for a list of boxed ints.
    """

    __slots__ = ("items", "stamps", "length")

    def __init__(self, record_stamps: bool) -> None:
        self.items = np.empty(_TAIL_INITIAL_CAPACITY, dtype=np.int32)
        self.stamps = (
            np.empty(_TAIL_INITIAL_CAPACITY, dtype=np.int64)
            if record_stamps
            else None
        )
        self.length = 0

    def push(self, item: int, stamp: Optional[int]) -> None:
        if self.length == self.items.size:
            self.items = np.concatenate(
                [self.items, np.empty(self.items.size, dtype=np.int32)]
            )
            if self.stamps is not None:
                self.stamps = np.concatenate(
                    [self.stamps, np.empty(self.stamps.size, dtype=np.int64)]
                )
        self.items[self.length] = item
        if self.stamps is not None:
            self.stamps[self.length] = -1 if stamp is None else stamp
        self.length += 1

    def view(self) -> np.ndarray:
        return self.items[: self.length]


class ArenaHistoryStore(HistoryStore):
    """:class:`~repro.store.base.HistoryStore` over a columnar arena.

    Reads of base-only users are zero-copy arena slices; a user with
    live events gets a cached fused int32 view (base ++ tail) that is
    invalidated by the next append and rebuilt lazily. Appends are O(1)
    amortized into the user's tail segment; :meth:`compact` folds every
    tail into a fresh arena when tails grow large.

    Writes are serialized with an internal lock so the store is safe to
    share between a serving ``SessionStore`` and read-only consumers
    (router fallbacks, fingerprint probes). The serving layer's
    one-writer-per-user discipline still applies to *ordering*, exactly
    as it does for the WAL.
    """

    def __init__(
        self, arena: SessionArena, record_stamps: bool = False
    ) -> None:
        self.arena = arena
        self.record_stamps = record_stamps or arena.stamps is not None
        self._tails: Dict[int, _TailSegment] = {}
        self._fused: Dict[int, ArenaHistoryView] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_histories(
        cls, histories: Iterable[Sequence[int]], record_stamps: bool = False
    ) -> "ArenaHistoryStore":
        return cls(
            SessionArena.from_histories(histories),
            record_stamps=record_stamps,
        )

    @classmethod
    def open(
        cls, directory: str, mmap: bool = True, record_stamps: bool = False
    ) -> "ArenaHistoryStore":
        """A store over a saved (optionally mmap-backed) arena."""
        return cls(
            SessionArena.open(directory, mmap=mmap),
            record_stamps=record_stamps,
        )

    # ------------------------------------------------------------------
    # HistoryStore protocol
    # ------------------------------------------------------------------
    def slice(self, user: int) -> Optional[ArenaHistoryView]:
        user = int(user)
        with self._lock:
            tail = self._tails.get(user)
            if tail is None or tail.length == 0:
                raw = self.arena.user_items(user)
                if raw.size == 0:
                    return None
                return ArenaHistoryView(user, raw)
            fused = self._fused.get(user)
            if fused is None:
                base = self.arena.user_items(user)
                combined = np.empty(
                    base.size + tail.length, dtype=np.int32
                )
                combined[: base.size] = base
                combined[base.size :] = tail.view()
                combined.setflags(write=False)
                fused = ArenaHistoryView(user, combined)
                self._fused[user] = fused
            return fused

    def append(self, user: int, item: int, t: Optional[int] = None) -> int:
        user, item = int(user), int(item)
        if user < 0:
            raise StoreError(f"user must be non-negative, got {user}")
        if not 0 <= item <= _MAX_ITEM:
            raise StoreError(
                f"item {item} does not fit the arena's int32 encoding"
            )
        with self._lock:
            tail = self._tails.get(user)
            if tail is None:
                tail = self._tails[user] = _TailSegment(self.record_stamps)
            position = self.arena.length(user) + tail.length
            tail.push(item, t)
            self._fused.pop(user, None)
            return position

    def base_length(self, user: int) -> int:
        return self.arena.length(int(user))

    def live_count(self, user: int) -> int:
        tail = self._tails.get(int(user))
        return tail.length if tail is not None else 0

    def item_at(self, user: int, position: int) -> int:
        user = int(user)
        if position < 0:
            raise StoreError(
                f"position must be non-negative, got {position}"
            )
        base_length = self.arena.length(user)
        if position < base_length:
            return int(self.arena.user_items(user)[position])
        with self._lock:
            tail = self._tails.get(user)
            live = tail.length if tail is not None else 0
            if position >= base_length + live:
                raise StoreError(
                    f"position {position} outside user {user}'s history of "
                    f"length {base_length + live}"
                )
            assert tail is not None
            return int(tail.items[position - base_length])

    def recent_items(self, user: int, n: int) -> np.ndarray:
        """Last ``n`` consumptions, gathered without fusing full history."""
        user = int(user)
        if n <= 0:
            return np.empty(0, dtype=np.int32)
        with self._lock:
            tail = self._tails.get(user)
            live = tail.length if tail is not None else 0
            if live >= n:
                assert tail is not None
                return tail.items[live - n : live].copy()
            base = self.arena.user_items(user)
            take = min(n - live, base.size)
            out = np.empty(take + live, dtype=np.int32)
            if take:
                out[:take] = base[base.size - take :]
            if live:
                assert tail is not None
                out[take:] = tail.view()
            return out

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def n_tail_events(self) -> int:
        """Total live events currently held in tail segments."""
        with self._lock:
            return sum(tail.length for tail in self._tails.values())

    def users(self) -> Iterable[int]:
        """Users with any history: arena rows plus tail-only cold users."""
        with self._lock:
            known = {
                user
                for user in range(self.arena.n_users)
                if self.arena.length(user) > 0
            }
            known.update(
                user
                for user, tail in self._tails.items()
                if tail.length > 0
            )
        return sorted(known)

    def compact(self) -> "SessionArena":
        """Fold every tail segment into a fresh arena; tails reset empty.

        After compaction the store answers identically (same slices,
        same fingerprints) but every history is again one contiguous
        arena run — ``base_length`` grows, ``live_count`` drops to zero.
        Returns the new arena.
        """
        with self._lock:
            if not any(tail.length for tail in self._tails.values()):
                self._tails.clear()
                self._fused.clear()
                return self.arena
            n_users = max(
                self.arena.n_users,
                max(self._tails) + 1 if self._tails else 0,
            )
            histories = []
            stamp_histories = [] if self.record_stamps else None
            for user in range(n_users):
                base = self.arena.user_items(user)
                tail = self._tails.get(user)
                if tail is None or tail.length == 0:
                    histories.append(base)
                else:
                    histories.append(
                        np.concatenate([base, tail.view()])
                    )
                if stamp_histories is not None:
                    base_stamps = self.arena.user_stamps(user)
                    if base_stamps is None:
                        base_stamps = np.full(
                            base.size, -1, dtype=np.int64
                        )
                    if tail is None or tail.length == 0 or tail.stamps is None:
                        tail_stamps = np.full(
                            tail.length if tail is not None else 0,
                            -1,
                            dtype=np.int64,
                        )
                    else:
                        tail_stamps = tail.stamps[: tail.length]
                    stamp_histories.append(
                        np.concatenate([base_stamps, tail_stamps])
                    )
            self.arena = SessionArena.from_histories(
                histories, stamps=stamp_histories
            )
            self._tails.clear()
            self._fused.clear()
            return self.arena

    def __repr__(self) -> str:
        return (
            f"ArenaHistoryStore(arena={self.arena!r}, "
            f"tail_users={len(self._tails)}, tail_events={self.n_tail_events})"
        )
