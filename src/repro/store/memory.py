"""Deterministic resident-memory accounting for history stores.

``BENCH_memory.json`` guards the arena's bytes-per-user advantage, so
the measurement must be reproducible across runs and machines — process
RSS is neither (allocator slack, interpreter state, import order).
:func:`deep_sizeof` instead walks an object graph with
``sys.getsizeof`` and id-level deduplication: every reachable Python
object and every *owned* numpy buffer is counted exactly once, borrowed
views count only their wrapper, and mmap-backed columns count as
resident only insofar as numpy reports them (the wrapper — the kernel
pages them lazily).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, Set

import numpy as np

from repro.store.base import HistoryStore


def deep_sizeof(obj: Any) -> int:
    """Total bytes of ``obj`` and everything reachable from it.

    Graph walk with id deduplication over containers, instance dicts,
    and ``__slots__``. numpy arrays report their buffer through
    ``__sizeof__`` only when they own it, which is exactly the
    accounting the arena needs: a thousand zero-copy views of one
    column cost a thousand wrappers, one buffer.
    """
    seen: Set[int] = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        identity = id(current)
        if identity in seen:
            continue
        seen.add(identity)
        if isinstance(current, np.memmap):
            # The wrapper only: the file backs the data, the kernel
            # decides residency.
            total += sys.getsizeof(object())
            continue
        total += sys.getsizeof(current)
        if isinstance(current, np.ndarray):
            if current.base is not None:
                stack.append(current.base)
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        instance_dict = getattr(current, "__dict__", None)
        if isinstance(instance_dict, dict):
            stack.append(instance_dict)
        for klass in type(current).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                try:
                    stack.append(getattr(current, slot))
                except AttributeError:
                    continue
    return total


def store_memory_profile(
    store: HistoryStore, users: Iterable[int]
) -> Dict[str, float]:
    """Resident bytes of a store, total and per active user.

    ``users`` is the active population the per-user figure is averaged
    over (typically every user with history).
    """
    user_list = list(users)
    total = deep_sizeof(store)
    return {
        "resident_bytes": float(total),
        "active_users": float(len(user_list)),
        "bytes_per_user": float(total) / max(len(user_list), 1),
    }
