"""The dict/list reference implementation of :class:`HistoryStore`.

This is today's representation — one Python list of boxed ints per user
— wrapped in the store protocol. It exists for two reasons: as the
semantic reference the arena store is proven element- and
fingerprint-identical against (the hypothesis equivalence suite drives
both through the same schedules), and as the ``--store dict`` escape
hatch while the arena is new. It is deliberately simple and deliberately
memory-hungry; ``BENCH_memory.json`` quantifies the gap.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import StoreError
from repro.store.base import HistoryStore


class DictHistoryStore(HistoryStore):
    """Per-user Python lists behind the :class:`HistoryStore` protocol."""

    def __init__(
        self, histories: Optional[Dict[int, Sequence[int]]] = None
    ) -> None:
        self._base: Dict[int, List[int]] = {}
        if histories:
            for user, items in histories.items():
                user = int(user)
                if user < 0:
                    raise StoreError(
                        f"user must be non-negative, got {user}"
                    )
                as_list = [int(item) for item in items]
                if any(item < 0 for item in as_list):
                    raise StoreError("item indices must be non-negative")
                self._base[user] = as_list
        self._tails: Dict[int, List[int]] = {}
        self._lock = threading.RLock()

    @classmethod
    def from_histories(
        cls, histories: Iterable[Sequence[int]]
    ) -> "DictHistoryStore":
        """Build from dense-user-indexed histories (index = user id)."""
        return cls(
            {user: items for user, items in enumerate(histories)}
        )

    # ------------------------------------------------------------------
    # HistoryStore protocol
    # ------------------------------------------------------------------
    def slice(self, user: int) -> Optional[ConsumptionSequence]:
        user = int(user)
        with self._lock:
            base = self._base.get(user)
            tail = self._tails.get(user)
            if not base and not tail:
                return None
            items = (base or []) + (tail or [])
            return ConsumptionSequence(user, items)

    def append(self, user: int, item: int, t: Optional[int] = None) -> int:
        user, item = int(user), int(item)
        if user < 0:
            raise StoreError(f"user must be non-negative, got {user}")
        if item < 0:
            raise StoreError(
                f"item indices must be non-negative, got {item}"
            )
        with self._lock:
            tail = self._tails.setdefault(user, [])
            position = len(self._base.get(user, ())) + len(tail)
            tail.append(item)
            return position

    def base_length(self, user: int) -> int:
        return len(self._base.get(int(user), ()))

    def live_count(self, user: int) -> int:
        return len(self._tails.get(int(user), ()))

    def item_at(self, user: int, position: int) -> int:
        user = int(user)
        if position < 0:
            raise StoreError(
                f"position must be non-negative, got {position}"
            )
        with self._lock:
            base = self._base.get(user, [])
            tail = self._tails.get(user, [])
            if position < len(base):
                return base[position]
            if position < len(base) + len(tail):
                return tail[position - len(base)]
            raise StoreError(
                f"position {position} outside user {user}'s history of "
                f"length {len(base) + len(tail)}"
            )

    def recent_items(self, user: int, n: int) -> np.ndarray:
        user = int(user)
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        with self._lock:
            base = self._base.get(user, [])
            tail = self._tails.get(user, [])
            combined = (
                tail[-n:]
                if len(tail) >= n
                else base[max(0, len(base) - (n - len(tail))):] + tail
            )
        return np.asarray(combined, dtype=np.int64)

    def users(self) -> Iterable[int]:
        """Users with any history, sorted."""
        with self._lock:
            known = {user for user, items in self._base.items() if items}
            known.update(
                user for user, tail in self._tails.items() if tail
            )
        return sorted(known)

    def __repr__(self) -> str:
        return (
            f"DictHistoryStore(users={len(self._base)}, "
            f"tail_users={len(self._tails)})"
        )
