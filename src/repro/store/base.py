"""The unified history-access API: ``HistoryStore`` and ``HistoryView``.

Before this package the repo kept per-user consumption histories in
three divergent shapes: dict/list-backed
:class:`~repro.data.sequence.ConsumptionSequence` objects on the data
side, the Python-list ``_items`` of a serving
:class:`~repro.serving.state.LiveSession`, and ad-hoc
``{user: [items]}`` dicts in tests and tools. A :class:`HistoryStore`
replaces all three behind one protocol:

* :meth:`HistoryStore.slice` — the user's full history (base + live
  tail) as a :class:`HistoryView`, a
  :class:`~repro.data.sequence.ConsumptionSequence`-compatible object
  every model, session, and feature kernel already consumes;
* :meth:`HistoryStore.append` — ingest one live consumption event into
  the user's tail segment;
* :meth:`HistoryStore.fingerprint` — the canonical
  :func:`~repro.engine.session.fingerprint_state` digest of the user's
  end-of-history window/Ω/recency state, bit-comparable across every
  store implementation and with live/offline sessions.

Two implementations ship: :class:`~repro.store.dict_store.DictHistoryStore`
(the reference, today's dict/list representation) and
:class:`~repro.store.arena.ArenaHistoryStore` (the columnar
session-memory arena). The equivalence suite drives both through random
interleaved append/evict/rehydrate schedules and asserts element- and
fingerprint-identity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import StoreError

#: A history view is any ``ConsumptionSequence``-compatible object:
#: models, sessions, windows, and feature kernels consume views and
#: plain sequences interchangeably. Arena-backed stores return zero-copy
#: subclasses (:class:`~repro.store.arena.ArenaHistoryView`).
HistoryView = ConsumptionSequence


class HistoryStore(ABC):
    """Storage of every user's consumption history behind one API.

    A store separates each user's history into an immutable **base**
    (the dataset-side prefix the store was built from) and a growable
    **live tail** (events ingested through :meth:`append`). The split is
    observable — :meth:`base_length` / :meth:`live_count` — because the
    serving layer's WAL-replay recovery needs to know how many live
    events the store already holds; the *contents* are always served
    fused, in consumption order, by :meth:`slice`.

    Implementations must be usable for any non-negative user id: users
    outside the base (cold users, served purely from live events) have
    an empty base and grow a tail like anyone else.
    """

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def slice(self, user: int) -> Optional[HistoryView]:
        """The user's full history (base + tail), or ``None`` if empty.

        ``None`` mirrors the legacy ``HistoryProvider`` contract for
        users the store knows nothing about; a user with any base or
        live events always gets a view. Views are snapshots: a later
        :meth:`append` is not visible through a previously returned
        view.
        """

    @abstractmethod
    def append(self, user: int, item: int, t: Optional[int] = None) -> int:
        """Append one live event to the user's tail; returns its position.

        ``t`` is an optional event timestamp recorded in the store's
        timestamp column when one is configured; it never affects
        ordering (histories are append-ordered, exactly like the WAL).
        """

    @abstractmethod
    def base_length(self, user: int) -> int:
        """Number of base (pre-live) consumptions of ``user``."""

    @abstractmethod
    def live_count(self, user: int) -> int:
        """Number of live events appended for ``user`` so far."""

    # ------------------------------------------------------------------
    # Derived accessors (override for O(1)/zero-copy fast paths)
    # ------------------------------------------------------------------
    def length(self, user: int) -> int:
        """Total history length: base plus live tail."""
        return self.base_length(user) + self.live_count(user)

    def item_at(self, user: int, position: int) -> int:
        """The item consumed at ``position`` of the user's history."""
        if position < 0:
            raise StoreError(
                f"position must be non-negative, got {position}"
            )
        view = self.slice(user)
        if view is None or position >= len(view):
            raise StoreError(
                f"position {position} outside user {user}'s history of "
                f"length {0 if view is None else len(view)}"
            )
        return int(view[position])

    def recent_items(self, user: int, n: int) -> np.ndarray:
        """The last ``n`` consumptions (fewer if the history is shorter).

        This is the window-seeding primitive: building a live session
        over a store touches only this suffix, never the full history —
        the base implementation slices a view, arena stores override it
        with an O(``n``) gather that avoids materializing anything else.
        """
        view = self.slice(user)
        if view is None:
            return np.empty(0, dtype=np.int64)
        return view.items[max(0, len(view) - n):]

    def fingerprint(self, user: int, window_size: int, min_gap: int = 0) -> str:
        """Canonical digest of the user's end-of-history session state.

        Equals ``ScoringSession(slice(user), window_size, min_gap,
        start=length).state_fingerprint()`` and the digest of a
        :class:`~repro.serving.state.LiveSession` fed the same events —
        one string comparison proves two stores (or a store and a live
        session) hold bit-identical observable state.
        """
        from repro.engine.session import fingerprint_history

        view = self.slice(user)
        items = (
            view.items if view is not None else np.empty(0, dtype=np.int64)
        )
        return fingerprint_history(user, items, window_size, min_gap)

    def session(self, user: int, window_size: int, min_gap: int = 0):
        """A live :class:`~repro.store.session.StoreSession` over this store."""
        from repro.store.session import StoreSession

        return StoreSession(self, user, window_size, min_gap)
