"""Columnar session memory behind the unified :class:`HistoryStore` API.

See :mod:`repro.store.base` for the protocol, :mod:`repro.store.arena`
for the columnar arena implementation, and :mod:`repro.store.session`
for the store-native live session the serving layer runs on.
"""

import tempfile
from typing import Iterable, Optional, Sequence

from repro.exceptions import StoreError
from repro.store.arena import (
    ArenaHistoryStore,
    ArenaHistoryView,
    SessionArena,
)
from repro.store.base import HistoryStore, HistoryView
from repro.store.dict_store import DictHistoryStore
from repro.store.memory import deep_sizeof, store_memory_profile
from repro.store.session import StoreSession

#: CLI-facing store kinds accepted by ``--store`` and the factories.
STORE_KINDS = ("dict", "arena", "arena-mmap")


def make_history_store(
    histories: Iterable[Sequence[int]],
    kind: str = "arena",
    directory: Optional[str] = None,
) -> HistoryStore:
    """Build a history store of the requested ``kind``.

    ``histories`` are dense-user-indexed item sequences (index = user
    id). ``"arena-mmap"`` persists the packed columns under
    ``directory`` (a fresh temporary directory when omitted) and reopens
    them memory-mapped, so base histories cost file pages, not heap. A
    directory that already holds a saved arena is reused as-is without
    consuming ``histories`` — which is how N cluster shards on one box
    map one shared read-only copy of the columns.
    """
    if kind == "dict":
        return DictHistoryStore.from_histories(histories)
    if kind == "arena":
        return ArenaHistoryStore.from_histories(histories)
    if kind == "arena-mmap":
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-arena-")
        if not SessionArena.exists(directory):
            SessionArena.from_histories(histories).save(directory)
        return ArenaHistoryStore(SessionArena.open(directory, mmap=True))
    raise StoreError(
        f"unknown store kind {kind!r}; expected one of {STORE_KINDS}"
    )


__all__ = [
    "ArenaHistoryStore",
    "ArenaHistoryView",
    "DictHistoryStore",
    "HistoryStore",
    "HistoryView",
    "SessionArena",
    "StoreSession",
    "STORE_KINDS",
    "deep_sizeof",
    "make_history_store",
    "store_memory_profile",
]
