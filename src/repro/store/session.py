"""Live window/Ω/recency session state backed by a :class:`HistoryStore`.

A :class:`StoreSession` is the store-native replacement for the serving
layer's list-carrying :class:`~repro.serving.state.LiveSession`: same
accessor surface, same O(1) per-event updates, same
:func:`~repro.engine.session.fingerprint_state` digests — but the
history itself stays in the store. The session holds only the
*fixed-size* observable state:

* a ring buffer of the last ``max(window_size, min_gap)`` items (what
  window and Ω eviction need to know);
* the window and Ω count dicts, bounded by ``window_size`` / ``min_gap``
  distinct entries;
* last-position entries for items touched since the session started
  (ring seed + live appends) — which provably covers every candidate,
  since a window item's global last occurrence lies inside the window.

Construction therefore costs O(``window_size``) regardless of history
length (one :meth:`~repro.store.base.HistoryStore.recent_items` gather),
and an LRU-evicted session rehydrates as a view, not a copy: the store
kept the history, so nothing is re-fetched and nothing is replayed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError
from repro.store.base import HistoryStore


class StoreSession:
    """One user's live window state over a shared :class:`HistoryStore`.

    Accessor contracts are identical to ``LiveSession`` /
    ``ScoringSession``; the equivalence suite asserts digest equality
    under random interleaved schedules. Appends write through to the
    store (the store is the single source of truth for history), so two
    sessions must never be live for the same user at once — the serving
    ``SessionStore``'s per-user residency already guarantees that.
    """

    __slots__ = (
        "store",
        "user",
        "window_size",
        "min_gap",
        "_t",
        "_ring",
        "_window_counts",
        "_recent_counts",
        "_last_pos",
        "_view_cache",
    )

    def __init__(
        self,
        store: HistoryStore,
        user: int,
        window_size: int,
        min_gap: int = 0,
    ) -> None:
        if window_size <= 0:
            raise DataError(f"window_size must be positive, got {window_size}")
        if min_gap < 0:
            raise DataError(f"min_gap must be non-negative, got {min_gap}")
        if user < 0:
            raise DataError(f"user index must be non-negative, got {user}")
        self.store = store
        self.user = int(user)
        self.window_size = window_size
        self.min_gap = min_gap
        t = store.length(self.user)
        self._t = t
        span = max(window_size, min_gap)
        recent = store.recent_items(self.user, span).tolist()
        # Fixed-size circular buffer over absolute positions: the item
        # at position p (for p >= t - span) sits in slot p % span.
        ring: List[int] = [-1] * span
        first = t - len(recent)
        for offset, item in enumerate(recent):
            ring[(first + offset) % span] = item
        self._ring = ring
        window_counts: Dict[int, int] = {}
        for item in recent[max(0, len(recent) - window_size):]:
            window_counts[item] = window_counts.get(item, 0) + 1
        recent_counts: Dict[int, int] = {}
        if min_gap > 0:
            for item in recent[max(0, len(recent) - min_gap):]:
                recent_counts[item] = recent_counts.get(item, 0) + 1
        self._window_counts = window_counts
        self._recent_counts = recent_counts
        # Last positions for the ring span only; enumeration overwrites,
        # so each entry is that item's most recent — and therefore
        # *global* — last position. Items older than the span miss and
        # fall back to the store slice's occurrence index.
        last_pos: Dict[int, int] = {}
        for offset, item in enumerate(recent):
            last_pos[item] = first + offset
        self._last_pos = last_pos
        self._view_cache: Optional[ConsumptionSequence] = None

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    @property
    def t(self) -> int:
        """Current position: state describes the window before ``t``."""
        return self._t

    @property
    def n_live_events(self) -> int:
        """Live events of this user held by the store.

        Unlike ``LiveSession`` this survives session eviction — the
        events live in the store, not the session — which is exactly
        what the ingest idempotency check wants: the count of durable
        live events, however many session objects came and went.
        """
        return self.store.live_count(self.user)

    def append(self, item: int) -> int:
        """Ingest one live event; returns its position.

        The counting updates are ``ScoringSession.advance`` verbatim;
        the evicted window/Ω items are read from the ring instead of a
        full item list. The event is written through to the store first,
        so store and session can never disagree about the history.
        """
        item = int(item)
        if item < 0:
            raise DataError(f"item indices must be non-negative, got {item}")
        t = self._t
        position = self.store.append(self.user, item)
        if position != t:
            raise DataError(
                f"store holds {position} events for user {self.user} but "
                f"this session is at t={t}: two writers on one user?"
            )
        ring = self._ring
        span = len(ring)
        window_tail = t - self.window_size
        leaving_window = ring[window_tail % span] if window_tail >= 0 else -1
        recent_tail = t - self.min_gap
        leaving_recent = (
            ring[recent_tail % span]
            if self.min_gap > 0 and recent_tail >= 0
            else -1
        )
        ring[t % span] = item
        self._last_pos[item] = t
        window_counts = self._window_counts
        window_counts[item] = window_counts.get(item, 0) + 1
        if window_tail >= 0:
            remaining = window_counts[leaving_window] - 1
            if remaining:
                window_counts[leaving_window] = remaining
            else:
                del window_counts[leaving_window]
        if self.min_gap > 0:
            recent_counts = self._recent_counts
            recent_counts[item] = recent_counts.get(item, 0) + 1
            if recent_tail >= 0:
                remaining = recent_counts[leaving_recent] - 1
                if remaining:
                    recent_counts[leaving_recent] = remaining
                else:
                    del recent_counts[leaving_recent]
        self._t = t + 1
        self._view_cache = None
        return t

    # ------------------------------------------------------------------
    # State accessors (contracts identical to LiveSession's)
    # ------------------------------------------------------------------
    def window_length(self) -> int:
        """Number of consumptions in the window before ``t``."""
        return min(self._t, self.window_size)

    def window_count(self, item: int) -> int:
        """Occurrences of ``item`` in the window before ``t``."""
        return self._window_counts.get(int(item), 0)

    def window_counts_map(self) -> Dict[int, int]:
        """The live item → window-count dict. Treat as read-only."""
        return self._window_counts

    def candidates(self) -> List[int]:
        """The Ω-filtered RRC candidate set before ``t`` (sorted)."""
        recent = self._recent_counts
        if recent:
            return sorted(
                [item for item in self._window_counts if item not in recent]
            )
        return sorted(self._window_counts)

    def last_position(self, item: int) -> int:
        """``l_ut(v)`` — last occurrence strictly before ``t`` (-1 if never).

        O(1) for anything consumed within the ring span (every window
        item, hence every candidate); older items fall back to the
        cached slice's occurrence index.
        """
        item = int(item)
        position = self._last_pos.get(item)
        if position is not None:
            return position
        return self.sequence().last_position_before(item, self._t)

    def last_positions(self, items) -> np.ndarray:
        """Last occurrences before ``t`` for many items (-1 if never)."""
        keys = items.tolist() if isinstance(items, np.ndarray) else items
        return np.array(
            [self.last_position(key) for key in keys], dtype=np.int64
        )

    def last_positions_list(self, keys) -> List[int]:
        """Plain-int last positions (feature-filler fast path)."""
        return [self.last_position(key) for key in keys]

    def is_next_target(self, item: int) -> bool:
        """Whether consuming ``item`` *now* would be an RRC target.

        Equivalent to ``LiveSession``'s last-position arithmetic via the
        multisets alone: gap ≤ ``window_size`` ⟺ the item is in the
        window multiset, and gap > ``min_gap`` ⟺ it is not in the Ω
        multiset — no history lookup at all.
        """
        item = int(item)
        return (
            item in self._window_counts
            and item not in self._recent_counts
        )

    def sequence(self) -> ConsumptionSequence:
        """The full history as an immutable sequence (zero-copy view).

        Arena-backed stores answer this with a borrowed slice (plus the
        fused tail when live events exist); nothing is re-fetched per
        session. Cached until the next append.
        """
        if self._view_cache is None:
            view = self.store.slice(self.user)
            self._view_cache = (
                view
                if view is not None
                else ConsumptionSequence(self.user, [])
            )
        return self._view_cache

    def state_fingerprint(self) -> str:
        """Digest comparable with ``LiveSession``/``ScoringSession``.

        Delegates to the store's canonical full-history digest — the
        fixed-size session state never holds every last position, so the
        digest is recomputed from the (zero-copy) history view.
        """
        return self.store.fingerprint(
            self.user, self.window_size, self.min_gap
        )

    def __repr__(self) -> str:
        return (
            f"StoreSession(user={self.user}, t={self._t}, "
            f"live={self.n_live_events}, window_size={self.window_size}, "
            f"min_gap={self.min_gap})"
        )
