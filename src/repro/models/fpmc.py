"""FPMC baseline: factorized personalized Markov chains (Rendle, WWW'10).

Adapted to RRC as the paper describes (Section 5.2): the "basket" that
conditions the transition is the current time window, and the model
estimates the probability of transitioning from that set of items to the
incoming item:

``x̂(u, t, i) = ⟨v_u^{U,I}, v_i^{I,U}⟩
             + (1/|L_t|) Σ_{l ∈ L_t} ⟨v_i^{I,L}, v_l^{L,I}⟩``

with ``L_t`` the *distinct* items of the window before ``t``.

Training follows the original S-BPR protocol: every training consumption
(novel or repeat) is a positive whose negatives are drawn uniformly from
the whole item universe. The learned *global* transition factors are
then applied to rank the RRC window candidates.

The paper's adaptation "only considers the transition probability
between items using [the] Markov Chain model" — i.e. the factorized
Markov-chain term, personalized only through the user's own window, not
the user-item matrix-factorization term. That is the default here
(``use_user_term=False``); enabling the user term recovers Rendle's full
FPMC and is covered by an ablation benchmark. Without behavioural
features and with its diffuse globally trained ranking, the paper finds
FPMC "shows little difference in the accuracy performance compared with
Pop, Random and Recency" on RRC.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query, iter_queries_in_order
from repro.engine.session import ScoringSession
from repro.exceptions import SamplingError
from repro.models.base import Recommender
from repro.optim.kernels import fpmc_sequential_update
from repro.optim.lasso import sigmoid_scalar
from repro.optim.sgd import SGDResult, run_sgd
from repro.rng import ensure_rng
from repro.windows.window import window_before


class FPMCRecommender(Recommender):
    """Window-basket FPMC trained with classical S-BPR.

    Accepts a :class:`~repro.config.TSPPRConfig` for hyper-parameter
    parity (K, S, γ, learning rate, convergence budget); the
    feature-related fields are unused.
    """

    name = "FPMC"

    def __init__(
        self,
        config: Optional[TSPPRConfig] = None,
        use_user_term: bool = False,
    ) -> None:
        super().__init__()
        self.config = config or TSPPRConfig()
        self.use_user_term = use_user_term
        self.user_factors_: Optional[np.ndarray] = None       # v^{U,I}
        self.item_user_factors_: Optional[np.ndarray] = None  # v^{I,U}
        self.item_basket_factors_: Optional[np.ndarray] = None  # v^{I,L}
        self.basket_item_factors_: Optional[np.ndarray] = None  # v^{L,I}
        self.sgd_result_: Optional[SGDResult] = None
        self.n_positives_: int = 0

    def _collect_positives(
        self, split: SplitDataset, window: WindowConfig
    ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
        """All (user, positive item) training pairs and their baskets.

        One entry per training position ``t >= 1``; the basket is the
        distinct-item set of the window before ``t``.
        """
        users: List[int] = []
        positives: List[int] = []
        baskets: List[np.ndarray] = []
        for user in range(split.n_users):
            sequence = split.full_sequence(user)
            boundary = split.train_boundary(user)
            for t in range(1, boundary):
                view = window_before(sequence, t, window.window_size)
                users.append(user)
                positives.append(int(sequence[t]))
                baskets.append(np.asarray(view.distinct_items(), dtype=np.int64))
        if not users:
            raise SamplingError("no FPMC training positions available")
        return (
            np.asarray(users, dtype=np.int64),
            np.asarray(positives, dtype=np.int64),
            baskets,
        )

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        config = self.config
        rng = ensure_rng(config.seed)
        users, positives, baskets = self._collect_positives(split, window)
        self.n_positives_ = int(users.size)
        n_items = split.n_items

        K = config.n_factors
        scale = config.init_scale_latent
        UI = rng.normal(0.0, scale, (split.n_users, K))
        IU = rng.normal(0.0, scale, (n_items, K))
        IL = rng.normal(0.0, scale, (n_items, K))
        LI = rng.normal(0.0, scale, (n_items, K))
        self.user_factors_ = UI
        self.item_user_factors_ = IU
        self.item_basket_factors_ = IL
        self.basket_item_factors_ = LI

        alpha, gamma = config.learning_rate, config.gamma_latent

        # Fixed small batch for the convergence check: a deterministic
        # sample of positions with pre-drawn negatives.
        n_batch = max(1, int(users.size * config.batch_fraction))
        batch_positions = rng.choice(users.size, size=n_batch, replace=False)
        batch_negatives = rng.integers(n_items, size=n_batch)

        use_user_term = self.use_user_term

        def margin_of(position: int, negative: int) -> float:
            user = int(users[position])
            v_i = int(positives[position])
            basket = baskets[position]
            eta = LI[basket].mean(axis=0)
            margin = float(eta @ (IL[v_i] - IL[negative]))
            if use_user_term:
                margin += float(UI[user] @ (IU[v_i] - IU[negative]))
            return margin

        def apply_update(position: int) -> None:
            user = int(users[position])
            v_i = int(positives[position])
            v_j = int(rng.integers(n_items))
            if v_j == v_i:
                return
            basket = baskets[position]
            eta = LI[basket].mean(axis=0)
            margin = margin_of(position, v_j)
            coeff = alpha * sigmoid_scalar(-margin)

            il_diff = IL[v_i] - IL[v_j]
            if use_user_term:
                u_vec = UI[user].copy()
                iu_diff = IU[v_i] - IU[v_j]
                UI[user] = (1 - alpha * gamma) * u_vec + coeff * iu_diff
                IU[v_i] = (1 - alpha * gamma) * IU[v_i] + coeff * u_vec
                IU[v_j] = (1 - alpha * gamma) * IU[v_j] - coeff * u_vec
            IL[v_i] = (1 - alpha * gamma) * IL[v_i] + coeff * eta
            IL[v_j] = (1 - alpha * gamma) * IL[v_j] - coeff * eta
            LI[basket] = (1 - alpha * gamma) * LI[basket] + (
                coeff / basket.size
            ) * il_diff

        def batch_margin() -> float:
            total = 0.0
            for position, negative in zip(batch_positions, batch_negatives):
                total += margin_of(int(position), int(negative))
            return total / n_batch

        def draw_index() -> int:
            return int(rng.integers(users.size))

        def draw_block(k: int) -> np.ndarray:
            """``k`` (position, negative) pairs, stream-exact.

            S-BPR draws the negative *inside* each update, so the block
            pre-draw must interleave position and negative draws per
            entry to consume the rng in the scalar call sequence.
            """
            pairs = np.empty((k, 2), dtype=np.int64)
            integers = rng.integers
            n_positions = users.size
            for r in range(k):
                pairs[r, 0] = integers(n_positions)
                pairs[r, 1] = integers(n_items)
            return pairs

        # Block kernel, delegated to :mod:`repro.optim.kernels` so the
        # online trainer (``repro.online``) applies the exact same
        # arithmetic: buffered ufuncs with a single eta evaluation per
        # update (the scalar path computes the same eta twice),
        # bit-identical to ``apply_update`` in order.

        def _block_updates(pairs: np.ndarray):
            for position, v_j in pairs.tolist():
                v_i = int(positives[position])
                if v_j == v_i:
                    continue  # the draws are already consumed
                yield int(users[position]), v_i, int(v_j), baskets[position]

        def apply_block(pairs: np.ndarray) -> None:
            fpmc_sequential_update(
                UI,
                IU,
                IL,
                LI,
                _block_updates(pairs),
                alpha=alpha,
                gamma=gamma,
                use_user_term=use_user_term,
            )

        def get_state() -> dict:
            return {
                "user_factors": UI,
                "item_user_factors": IU,
                "item_basket_factors": IL,
                "basket_item_factors": LI,
            }

        def set_state(params: dict) -> None:
            # In-place: the update closures alias all four matrices.
            UI[...] = params["user_factors"]
            IU[...] = params["item_user_factors"]
            IL[...] = params["item_basket_factors"]
            LI[...] = params["basket_item_factors"]

        check_interval = max(1, math.floor(users.size * config.batch_fraction))
        use_block = config.training_engine == "vectorized"
        self.sgd_result_ = run_sgd(
            draw_index=draw_index,
            apply_update=apply_update,
            draw_block=draw_block if use_block else None,
            apply_block=apply_block if use_block else None,
            batch_margin=batch_margin,
            max_updates=config.max_epochs,
            check_interval=check_interval,
            tol=config.convergence_tol,
            checkpoint=self._checkpoint_manager,
            get_state=get_state,
            set_state=set_state,
            rng=rng,
            fault_injector=self._fault_injector,
            block_size=self._sgd_block if use_block else None,
        )

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_user_factors_ is not None
        assert self.item_basket_factors_ is not None
        assert self.basket_item_factors_ is not None
        window = window_before(sequence, t, self.window_config.window_size)
        basket = np.asarray(window.distinct_items(), dtype=np.int64)
        items = np.asarray(candidates, dtype=np.int64)
        if basket.size:
            eta = self.basket_item_factors_[basket].mean(axis=0)
            scores = self.item_basket_factors_[items] @ eta
        else:
            scores = np.zeros(items.size)
        if self.use_user_term:
            scores = scores + (
                self.item_user_factors_[items] @ self.user_factors_[sequence.user]
            )
        return scores

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: incremental basket maintenance across queries.

        ``session.distinct_window_items()`` is sorted ascending, exactly
        the row order of ``window.distinct_items()``, so the basket mean
        reduces over identical rows in identical order.
        """
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_user_factors_ is not None
        assert self.item_basket_factors_ is not None
        assert self.basket_item_factors_ is not None
        if not queries:
            return []
        u_vec = self.user_factors_[sequence.user]
        IU = self.item_user_factors_
        IL = self.item_basket_factors_
        LI = self.basket_item_factors_
        use_user_term = self.use_user_term

        ordered = list(iter_queries_in_order(queries))
        session = ScoringSession(
            sequence,
            self.window_config.window_size,
            start=ordered[0][1].t,
        )
        results: List[np.ndarray] = [np.empty(0)] * len(queries)
        for index, query in ordered:
            session.advance_to(query.t)
            basket = np.asarray(session.distinct_window_items(), dtype=np.int64)
            items = np.asarray(query.candidates, dtype=np.int64)
            if basket.size:
                eta = LI[basket].mean(axis=0)
                scores = IL[items] @ eta
            else:
                scores = np.zeros(items.size)
            if use_user_term:
                scores = scores + (IU[items] @ u_vec)
            results[index] = scores
        return results
