"""STREC: the short-term reconsumption switch (Chen et al., AAAI'15).

The paper's Ref. [13] predicts *whether* the next consumption will be a
repeat from the current window — the switch that routes between novel
item recommendation and RRC. Table 5 combines its linear (Lasso) model
with TS-PPR, so this module implements that linear model: an
L1-regularized logistic classifier over four window-level behavioural
features, trained on our own proximal-gradient solver
(:class:`repro.optim.lasso.LogisticLasso`).

Window-level features at position ``t`` (all in ``[0, 1]``):

0. mean normalized item quality of the window's consumptions,
1. mean item reconsumption ratio of the window's distinct items,
2. repeat density — fraction of window positions that repeat an earlier
   window position,
3. distinct ratio — distinct items over window length (the
   novelty-seeking signal, negatively related to repeating).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.exceptions import NotFittedError
from repro.features.static import compute_item_quality, compute_reconsumption_ratio
from repro.optim.lasso import LogisticLasso
from repro.windows.window import WindowView, window_before

#: Number of window-level features the classifier consumes.
N_STREC_FEATURES = 4


@dataclass(frozen=True)
class STRECEvaluation:
    """Accuracy summary of the switch on a test stream."""

    accuracy: float
    n_positions: int
    n_repeats: int

    @property
    def repeat_base_rate(self) -> float:
        """Fraction of positions that truly are repeats."""
        if self.n_positions == 0:
            return 0.0
        return self.n_repeats / self.n_positions


class STRECClassifier:
    """Repeat-vs-novel switch over window-level behavioural features.

    Not a :class:`~repro.models.base.Recommender` — it answers a binary
    question per position, not a ranking one.
    """

    name = "STREC"

    def __init__(self, alpha: float = 1e-3) -> None:
        self.alpha = alpha
        self._model: Optional[LogisticLasso] = None
        self._quality: Optional[np.ndarray] = None
        self._reconsumption_ratio: Optional[np.ndarray] = None
        self._window_config: Optional[WindowConfig] = None

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted feature weights (Lasso may zero some out)."""
        if self._model is None or self._model.coef_ is None:
            raise NotFittedError("STRECClassifier used before fit")
        return self._model.coef_

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------
    def window_features(self, window: WindowView) -> np.ndarray:
        """The four window-level features for one position."""
        assert self._quality is not None
        assert self._reconsumption_ratio is not None
        length = len(window)
        if length == 0:
            return np.zeros(N_STREC_FEATURES)
        items = window.items
        distinct = np.asarray(window.distinct_items(), dtype=np.int64)
        mean_quality = float(self._quality[items].mean())
        mean_ratio = float(self._reconsumption_ratio[distinct].mean())
        repeat_density = 1.0 - distinct.size / length
        distinct_ratio = distinct.size / length
        return np.array(
            [mean_quality, mean_ratio, repeat_density, distinct_ratio],
            dtype=np.float64,
        )

    def _position_rows(
        self,
        sequence: ConsumptionSequence,
        start: int,
        stop: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix and repeat labels for positions in [start, stop)."""
        assert self._window_config is not None
        window_size = self._window_config.window_size
        rows: List[np.ndarray] = []
        labels: List[int] = []
        for t in range(max(start, 1), stop):
            view = window_before(sequence, t, window_size)
            rows.append(self.window_features(view))
            labels.append(1 if int(sequence[t]) in view else 0)
        if not rows:
            return np.empty((0, N_STREC_FEATURES)), np.empty(0, dtype=np.int64)
        return np.vstack(rows), np.asarray(labels, dtype=np.int64)

    # ------------------------------------------------------------------
    # Fit / predict
    # ------------------------------------------------------------------
    def fit(
        self,
        split: SplitDataset,
        window: Optional[WindowConfig] = None,
    ) -> "STRECClassifier":
        """Train the switch on every training-prefix position."""
        self._window_config = window or WindowConfig()
        train = split.train_dataset()
        self._quality = compute_item_quality(train.item_frequencies())
        self._reconsumption_ratio = compute_reconsumption_ratio(
            train, self._window_config.window_size
        )
        matrices: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for user in range(split.n_users):
            X, y = self._position_rows(
                split.full_sequence(user), 1, split.train_boundary(user)
            )
            if len(y):
                matrices.append(X)
                labels.append(y)
        X_all = np.vstack(matrices)
        y_all = np.concatenate(labels)
        self._model = LogisticLasso(alpha=self.alpha).fit(X_all, y_all)
        return self

    def predict_position(self, sequence: ConsumptionSequence, t: int) -> bool:
        """Predict whether the consumption at ``t`` will be a repeat."""
        if self._model is None or self._window_config is None:
            raise NotFittedError("STRECClassifier used before fit")
        view = window_before(sequence, t, self._window_config.window_size)
        probability = self._model.predict_proba(
            self.window_features(view)[None, :]
        )
        return bool(probability[0] >= 0.5)

    def evaluate(self, split: SplitDataset) -> STRECEvaluation:
        """Switch accuracy over every test-side position (Table 5 column)."""
        if self._model is None or self._window_config is None:
            raise NotFittedError("STRECClassifier used before fit")
        correct = 0
        total = 0
        repeats = 0
        for user in range(split.n_users):
            sequence = split.full_sequence(user)
            X, y = self._position_rows(
                sequence, split.train_boundary(user), len(sequence)
            )
            if not len(y):
                continue
            predictions = self._model.predict(X)
            correct += int((predictions == y).sum())
            total += len(y)
            repeats += int(y.sum())
        accuracy = correct / total if total else 0.0
        return STRECEvaluation(
            accuracy=accuracy, n_positions=total, n_repeats=repeats
        )
