"""The Pop baseline: rank candidates by global item popularity.

Section 5.2: popularity is ``ln(1 + n_v)`` with ``n_v`` the item's
frequency in the training data — the unnormalized form of the item
quality feature (Eq 16).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.exceptions import EvaluationError
from repro.models.base import Recommender


class PopRecommender(Recommender):
    """Rank by ``ln(1 + n_v)`` over training frequencies."""

    name = "Pop"

    def __init__(self) -> None:
        super().__init__()
        self._popularity: Optional[np.ndarray] = None

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        frequencies = split.train_dataset().item_frequencies()
        self._popularity = np.log1p(frequencies.astype(np.float64))

    def _gather(self, items: np.ndarray) -> np.ndarray:
        assert self._popularity is not None
        if items.size and (items.min() < 0 or items.max() >= self._popularity.size):
            raise EvaluationError(
                f"candidate outside fitted vocabulary of size {self._popularity.size}"
            )
        return self._popularity[items]

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        return self._gather(np.asarray(candidates, dtype=np.int64))

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: history-independent, one exact gather per query."""
        self._check_fitted()
        return [
            self._gather(np.asarray(query.candidates, dtype=np.int64))
            for query in queries
        ]
