"""Recommenders: TS-PPR and every baseline of Section 5.2.

===========  ==============================================================
Model        Summary
===========  ==============================================================
TS-PPR       The paper's contribution: time-sensitive personalized
             pairwise ranking over behavioural features (Section 4).
PPR          Static Bayesian personalized pairwise ranking (Eq 1-4);
             included to show why time-insensitivity fails on RRC.
Random       Uniform choice from the candidate window.
Pop          Rank by global item popularity ``ln(1 + n_v)``.
Recency      Rank by exponential recency ``e^{−Δt_uv}``.
FPMC         Factorized personalized Markov chains adapted to
             window → item transitions (Rendle et al., WWW'10).
Survival     Cox proportional-hazards return-time model
             (Kapoor et al., KDD'14) on our own Cox implementation.
DYRC         Mixed weighted quality/recency model
             (Anderson et al., WWW'14), learned by likelihood ascent.
STREC        Repeat-vs-novel switch (Chen et al., AAAI'15) used by the
             Table 5 combination experiment.
===========  ==============================================================
"""

from repro.models.base import Recommender
from repro.models.dyrc import DYRCRecommender
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.ppr import PPRRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.recency import RecencyRecommender
from repro.models.strec import STRECClassifier
from repro.models.survival import SurvivalRecommender
from repro.models.tsppr import TSPPRRecommender

__all__ = [
    "DYRCRecommender",
    "FPMCRecommender",
    "PopRecommender",
    "PPRRecommender",
    "RandomRecommender",
    "RecencyRecommender",
    "Recommender",
    "STRECClassifier",
    "SurvivalRecommender",
    "TSPPRRecommender",
]
