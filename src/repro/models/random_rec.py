"""The Random baseline: uniform recommendation from the window.

Section 5.2: "randomly recommends items from the given time window. No
weighting scheme on the items is used." Scores are i.i.d. uniform draws,
so the induced top-k is a uniform random subset/ordering of the
candidates — but reproducible given the seed.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.models.base import Recommender
from repro.rng import RandomState, ensure_rng


class RandomRecommender(Recommender):
    """Uniformly random ranking of the candidate set."""

    name = "Random"

    #: Scoring consumes RNG state, so results depend on call order; the
    #: parallel evaluation path must not shard this model across workers.
    deterministic = False

    def __init__(self, random_state: RandomState = None) -> None:
        super().__init__()
        self._rng = ensure_rng(random_state)

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        # Nothing to learn.
        return

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        return self._rng.random(len(candidates))

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Draws in query order — the same RNG stream as per-query calls."""
        self._check_fitted()
        return [self._rng.random(len(query.candidates)) for query in queries]
