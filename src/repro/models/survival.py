"""Survival baseline: Cox proportional-hazards return-time recommender.

Kapoor et al. (KDD'14) — the paper's Ref. [30] — predict when a user
returns with Cox's proportional-hazard model over return-gap
covariates. Adapted to discrete consumption steps (as the paper does for
its comparison), each (user, item) pair's *return intervals* are
survival observations with the pair's **time-weighted average return
time** and consumption depth as covariates. At recommendation time the
default ``mode="due"`` reproduces the continuous-time usage the paper
evaluated (and found weak under discretization): estimate each item's
expected return time from the fitted survival curve and rank by how
*due* the item is. ``mode="hazard"`` is the natively discrete
alternative — rank by the conditional next-step return probability —
kept as an ablation (see ``benchmarks/test_bench_ablation_survival.py``).

The time-weighted average return time must be recomputed online from
the user's past consumptions at every query — exactly the cost the
paper measures in Fig 13, where Survival's per-instance time is
proportional to the length of the whole consumption sequence and sits
2-4 orders of magnitude above the cheap baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query, iter_queries_in_order
from repro.models.base import Recommender
from repro.survival.cox import CoxPHModel
from repro.survival.datasets import (
    build_return_time_data,
    return_covariates,
    weighted_average_gap,
)


class SurvivalRecommender(Recommender):
    """Rank window candidates by Cox-modeled next-step return hazard."""

    name = "Survival"

    def __init__(
        self,
        l2_penalty: float = 1e-3,
        max_observations_per_user: int = 2000,
        mode: str = "due",
    ) -> None:
        super().__init__()
        if mode not in ("due", "hazard"):
            raise ValueError(f"mode must be 'due' or 'hazard', got {mode!r}")
        self.l2_penalty = l2_penalty
        self.max_observations_per_user = max_observations_per_user
        self.mode = mode
        self.cox_: Optional[CoxPHModel] = None

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        data = build_return_time_data(
            split.train_dataset(),
            max_observations_per_user=self.max_observations_per_user,
        )
        self.cox_ = CoxPHModel(l2_penalty=self.l2_penalty).fit(
            data.durations, data.events, data.covariates
        )

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        assert self.cox_ is not None

        # Full online pass over the user's history: per-candidate return
        # gaps, last occurrence and consumption count before t. This is
        # deliberately O(t) — the time-weighted average return time is an
        # online feature (see module docstring on the Fig 13 profile).
        wanted = {int(v) for v in candidates}
        last_seen: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        gaps: Dict[int, List[float]] = {}
        history = sequence.items[:t].tolist()
        for position, item in enumerate(history):
            if item in wanted:
                previous = last_seen.get(item)
                if previous is not None:
                    gaps.setdefault(item, []).append(float(position - previous))
                last_seen[item] = position
                counts[item] = counts.get(item, 0) + 1

        n = len(candidates)
        covariates = np.empty((n, 2), dtype=np.float64)
        elapsed = np.empty(n, dtype=np.float64)
        for row, item in enumerate(candidates):
            item = int(item)
            count = counts.get(item, 0)
            covariates[row] = return_covariates(
                weighted_average_gap(gaps.get(item, [])), max(count, 1)
            )
            if count:
                elapsed[row] = float(t - last_seen[item])
            else:
                # Candidate never consumed before t (cannot occur under
                # the RRC protocol, handled for robustness).
                elapsed[row] = float(t if t > 0 else 1)
        if self.mode == "hazard":
            return self.cox_.expected_return_score(elapsed, covariates)
        # "due" mode — the paper-faithful continuous-time usage: estimate
        # each item's return time and rank by how *due* it is (smallest
        # absolute deviation between the estimate and the elapsed gap).
        expected = self.cox_.expected_return_time(covariates)
        return -np.abs(expected - elapsed)

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: one shared history walk instead of O(t) per query.

        The per-query path rescans ``items[:t]`` for every position —
        the very cost Fig 13 charges Survival with. Batched, the walk
        advances once over the whole evaluated span, maintaining the
        same last-seen / count / gap-list state for *all* items; each
        query then reads its candidates' state, producing gap lists (and
        hence covariates) identical element-for-element to the scan in
        :meth:`score`.
        """
        self._check_fitted()
        assert self.cox_ is not None
        if not queries:
            return []
        if len(queries) == 1:
            # A lone query is cheaper through the candidate-filtered
            # scan than through a full-vocabulary walk.
            query = queries[0]
            return [self.score(sequence, list(query.candidates), query.t)]
        items_sequence = sequence.items
        last_seen: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        gaps: Dict[int, List[float]] = {}
        cursor = 0

        results: List[np.ndarray] = [np.empty(0)] * len(queries)
        for index, query in iter_queries_in_order(queries):
            t = query.t
            while cursor < t:
                item = int(items_sequence[cursor])
                previous = last_seen.get(item)
                if previous is not None:
                    gaps.setdefault(item, []).append(float(cursor - previous))
                last_seen[item] = cursor
                counts[item] = counts.get(item, 0) + 1
                cursor += 1

            n = len(query.candidates)
            covariates = np.empty((n, 2), dtype=np.float64)
            elapsed = np.empty(n, dtype=np.float64)
            for row, item in enumerate(query.candidates):
                item = int(item)
                count = counts.get(item, 0)
                covariates[row] = return_covariates(
                    weighted_average_gap(gaps.get(item, [])), max(count, 1)
                )
                if count:
                    elapsed[row] = float(t - last_seen[item])
                else:
                    elapsed[row] = float(t if t > 0 else 1)
            if self.mode == "hazard":
                results[index] = self.cox_.expected_return_score(
                    elapsed, covariates
                )
            else:
                expected = self.cox_.expected_return_time(covariates)
                results[index] = -np.abs(expected - elapsed)
        return results
