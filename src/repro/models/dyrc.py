"""DYRC baseline: the mixed weighted quality/recency model.

Anderson et al., "The dynamics of repeat consumption" (WWW'14) — the
paper's Ref. [7] — found that reconsumption is driven by item *quality*
and *recency*, and proposed a weighted model whose latent weights are
learned by maximizing a log-likelihood. We implement it as a conditional
softmax choice model over the window candidates:

``P(choose v | candidates C_t) ∝ exp(θ_q · q̄_v + θ_rank[rank_t(v)])``

where ``q̄_v`` is the normalized item quality (Eq 16-17) and
``rank_t(v)`` is the item's recency rank in the window (1 = most
recently consumed distinct item). ``θ_q`` (a scalar) and ``θ_rank``
(one latent weight per rank) are the "latent weights of item quality and
recency gap" learned by gradient ascent on the training reconsumptions.

The training likelihood is computed fully vectorized with segment
reductions (``np.maximum.reduceat`` / ``np.add.reduceat``) over the
flattened candidate lists of all training events.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query, iter_queries_in_order
from repro.engine.session import ScoringSession
from repro.exceptions import ModelError
from repro.features.static import compute_item_quality
from repro.models.base import Recommender
from repro.windows.repeat import iter_repeat_positions, recent_items
from repro.windows.window import WindowView, window_before


def recency_ranks(window: WindowView, items: Sequence[int]) -> np.ndarray:
    """1-based recency rank of each item among the window's distinct items.

    Rank 1 is the most recently consumed distinct item. Items absent from
    the window get the worst rank (number of distinct items + 1).
    """
    last_positions = {
        item: window.last_occurrence(item) for item in window.item_set
    }
    by_recency = sorted(last_positions, key=lambda v: -last_positions[v])
    rank_of = {item: rank for rank, item in enumerate(by_recency, start=1)}
    worst = len(by_recency) + 1
    return np.array([rank_of.get(int(v), worst) for v in items], dtype=np.int64)


def session_recency_ranks(
    session: ScoringSession, items: Sequence[int]
) -> np.ndarray:
    """:func:`recency_ranks` computed from incremental session state.

    Last-occurrence positions are unique within a window, so the sort is
    a total order and the ranks match the windowed computation exactly.
    """
    last_positions = {
        item: session.last_position(item)
        for item in session.distinct_window_items()
    }
    by_recency = sorted(last_positions, key=lambda v: -last_positions[v])
    rank_of = {item: rank for rank, item in enumerate(by_recency, start=1)}
    worst = len(by_recency) + 1
    return np.array([rank_of.get(int(v), worst) for v in items], dtype=np.int64)


class DYRCRecommender(Recommender):
    """Softmax choice model over quality and recency-rank weights.

    Parameters
    ----------
    learning_rate, n_iterations:
        Gradient-ascent controls for the likelihood maximization.
    l2_penalty:
        Small ridge on the weights; keeps rarely observed rank weights
        bounded.
    max_events:
        Cap on training events (most recent kept) to bound memory on
        very long histories.
    """

    name = "DYRC"

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 250,
        l2_penalty: float = 1e-4,
        max_events: int = 200_000,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ModelError(f"learning_rate must be positive, got {learning_rate}")
        if n_iterations <= 0:
            raise ModelError(f"n_iterations must be positive, got {n_iterations}")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2_penalty = l2_penalty
        self.max_events = max_events
        self.quality_weight_: float = 0.0
        self.rank_weights_: Optional[np.ndarray] = None
        self._quality: Optional[np.ndarray] = None
        self.log_likelihood_path_: List[float] = []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        train = split.train_dataset()
        self._quality = compute_item_quality(train.item_frequencies())
        max_rank = window.window_size + 1

        flat_quality, flat_rank, offsets, label_flat = self._collect_events(
            split, window
        )
        if offsets.size <= 1:
            # No training event offered a real choice; keep zero weights
            # (the model then ranks by nothing, i.e. candidate order).
            self.rank_weights_ = np.zeros(max_rank + 1)
            return

        theta_q = 0.0
        theta_rank = np.zeros(max_rank + 1)
        starts = offsets[:-1]
        n_events = starts.size
        step = self.learning_rate

        self.log_likelihood_path_ = []
        previous_ll = -np.inf
        for _ in range(self.n_iterations):
            scores = theta_q * flat_quality + theta_rank[flat_rank]
            seg_max = np.maximum.reduceat(scores, starts)
            shifted = np.exp(scores - np.repeat(seg_max, np.diff(offsets)))
            seg_sum = np.add.reduceat(shifted, starts)
            probabilities = shifted / np.repeat(seg_sum, np.diff(offsets))

            log_likelihood = float(
                np.sum(scores[label_flat] - (np.log(seg_sum) + seg_max))
            )
            self.log_likelihood_path_.append(log_likelihood)

            grad_q = (
                float(np.sum(flat_quality[label_flat]))
                - float(np.sum(probabilities * flat_quality))
            ) / n_events - self.l2_penalty * theta_q
            observed = np.bincount(
                flat_rank[label_flat], minlength=max_rank + 1
            ).astype(np.float64)
            expected = np.bincount(
                flat_rank, weights=probabilities, minlength=max_rank + 1
            )
            grad_rank = (observed - expected) / n_events - self.l2_penalty * theta_rank

            theta_q += step * grad_q
            theta_rank += step * grad_rank

            if log_likelihood < previous_ll:
                step *= 0.5  # overshoot: damp the step and continue
            previous_ll = log_likelihood

        self.quality_weight_ = theta_q
        self.rank_weights_ = theta_rank

    def _collect_events(
        self, split: SplitDataset, window: WindowConfig
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flatten every training reconsumption event's candidate list."""
        assert self._quality is not None
        flat_quality: List[np.ndarray] = []
        flat_rank: List[np.ndarray] = []
        offsets: List[int] = [0]
        label_flat: List[int] = []
        total = 0
        n_events = 0

        for user in range(split.n_users):
            sequence = split.full_sequence(user)
            boundary = split.train_boundary(user)
            for t, view in iter_repeat_positions(
                sequence, window.window_size, window.min_gap, stop=boundary
            ):
                chosen = int(sequence[t])
                excluded = recent_items(sequence, t, window.min_gap)
                candidates = sorted(view.item_set - excluded)
                if len(candidates) < 2 or chosen not in candidates:
                    continue
                items = np.asarray(candidates, dtype=np.int64)
                flat_quality.append(self._quality[items])
                flat_rank.append(recency_ranks(view, candidates))
                label_flat.append(total + candidates.index(chosen))
                total += items.size
                offsets.append(total)
                n_events += 1
                if n_events >= self.max_events:
                    break
            if n_events >= self.max_events:
                break

        if not flat_quality:
            return (
                np.empty(0),
                np.empty(0, dtype=np.int64),
                np.asarray(offsets, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(flat_quality),
            np.concatenate(flat_rank),
            np.asarray(offsets, dtype=np.int64),
            np.asarray(label_flat, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        assert self._quality is not None
        assert self.rank_weights_ is not None
        view = window_before(sequence, t, self.window_config.window_size)
        items = np.asarray(candidates, dtype=np.int64)
        ranks = recency_ranks(view, candidates)
        ranks = np.minimum(ranks, self.rank_weights_.size - 1)
        return self.quality_weight_ * self._quality[items] + self.rank_weights_[ranks]

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: ranks from session state, gathers per query."""
        self._check_fitted()
        assert self._quality is not None
        assert self.rank_weights_ is not None
        if not queries:
            return []
        quality = self._quality
        quality_weight = self.quality_weight_
        rank_weights = self.rank_weights_
        max_rank = rank_weights.size - 1

        ordered = list(iter_queries_in_order(queries))
        session = ScoringSession(
            sequence,
            self.window_config.window_size,
            start=ordered[0][1].t,
        )
        results: List[np.ndarray] = [np.empty(0)] * len(queries)
        for index, query in ordered:
            session.advance_to(query.t)
            items = np.asarray(query.candidates, dtype=np.int64)
            ranks = session_recency_ranks(session, query.candidates)
            ranks = np.minimum(ranks, max_rank)
            results[index] = quality_weight * quality[items] + rank_weights[ranks]
        return results
