"""The recommender interface shared by TS-PPR and all baselines.

An RRC recommender answers *queries*: rank the Ω-filtered window
candidates of a user at position ``t``, consulting only history before
``t``. Since the batch-engine redesign the primary interface is
batched — :meth:`Recommender.score_batch` and
:meth:`Recommender.recommend_batch` take a whole list of
:class:`~repro.engine.query.Query` objects for one user, letting models
amortize window and feature state across positions through a
:class:`~repro.engine.session.ScoringSession`. The single-query
:meth:`score` / :meth:`recommend` remain as thin compatibility wrappers.

Implementors override **either** method family:

* override :meth:`score_batch` for the fast path — the base
  :meth:`score` then routes a one-query batch through it;
* or override only :meth:`score` — the base :meth:`score_batch` falls
  back to a per-query loop and emits a one-time :class:`DeprecationWarning`
  (the per-query path stays correct but misses the engine's batching).

All bundled models override both: ``score`` keeps the seed's scalar
reference implementation and ``score_batch`` the vectorized kernel; the
equivalence suite asserts the two agree bit-identically.

Scores are "higher means more likely to be the reconsumption at ``t``";
ranking takes the deterministic top-k (candidate order breaks ties, and
candidates are always passed in sorted item order by the evaluation
protocol, so runs are reproducible).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from pathlib import Path
from typing import List, Optional, Sequence, Set, Union

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.exceptions import EvaluationError, NotFittedError
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultInjector

__all__ = ["Query", "Recommender", "rank_top_k"]

#: Classes already warned about their per-query score_batch fallback.
_FALLBACK_WARNED: Set[type] = set()


def rank_top_k(
    candidates: Sequence[int],
    scores: np.ndarray,
    k: int,
    owner: str = "rank_top_k received",
) -> List[int]:
    """Deterministic top-``k``: stable argsort on negated scores.

    Candidate order breaks ties, exactly as :meth:`Recommender._rank`
    always did — this is the single tie-breaking rule shared by every
    model and by the serving layer's deadline-fallback path.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != len(candidates):
        raise EvaluationError(
            f"{owner} {scores.shape[0]} scores "
            f"for {len(candidates)} candidates"
        )
    k = min(k, len(candidates))
    order = np.argsort(-scores, kind="stable")[:k]
    return [int(candidates[int(i)]) for i in order]


class Recommender(ABC):
    """Base class for RRC recommenders."""

    #: Display name used in result tables; subclasses must override.
    name: str = ""

    #: Whether scoring is a pure function of ``(sequence, candidates, t)``.
    #: Models that consume RNG state while scoring (e.g. the Random
    #: baseline) must set this False; the parallel evaluation path only
    #: shards users across processes for deterministic models, because a
    #: per-worker copy of mutable scoring state would change results.
    deterministic: bool = True

    def __init__(self) -> None:
        self._fitted = False
        self._window_config: Optional[WindowConfig] = None
        self._checkpoint_manager: Optional[CheckpointManager] = None
        self._fault_injector: Optional[FaultInjector] = None
        self._fit_workers = 1
        self._sgd_block: Optional[int] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        split: SplitDataset,
        window: Optional[WindowConfig] = None,
        *,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        fit_workers: Optional[int] = None,
        sgd_block: Optional[int] = None,
        profile: Optional[Union[str, Path, "object"]] = None,
    ) -> "Recommender":
        """Fit on the training prefixes of ``split``.

        Subclasses implement :meth:`_fit`; this wrapper records the
        window configuration and the fitted flag.

        Parameters
        ----------
        checkpoint_dir:
            When given, SGD-trained models snapshot their training
            state here every ``checkpoint_every`` convergence checks
            and transparently resume a partial run found in the
            directory, producing bit-identical results to an
            uninterrupted fit. Models without an SGD loop ignore it.
        fault_injector:
            Test hook killing training/persistence at scheduled points
            (see :mod:`repro.resilience.faults`).
        fit_workers:
            Worker processes for the parallelizable parts of training
            (currently the feature-cache build). Results are
            bit-identical at any worker count; models without a
            feature cache ignore it. ``None`` defers to the profile
            (when given), else the registry default.
        sgd_block:
            Cap on updates per block-SGD kernel call (see
            :func:`repro.optim.sgd.run_sgd`); results are bit-identical
            at any block size. ``None`` defers to the profile, else
            unbounded; 0 also means unbounded.
        profile:
            A machine profile (path or
            :class:`~repro.tuning.profile.MachineProfile`) written by
            ``repro-experiments tune training``. Fills any training
            knob not explicitly passed — precedence is explicit
            argument > profile > registry default — and logs the
            resolved values.
        """
        window = window or WindowConfig()
        resolved_workers, resolved_block = self._resolve_training_knobs(
            fit_workers, sgd_block, profile
        )
        fit_workers = resolved_workers
        if fit_workers < 1:
            raise EvaluationError(
                f"fit_workers must be positive, got {fit_workers}"
            )
        self._window_config = window
        self._fault_injector = fault_injector
        self._fit_workers = fit_workers
        self._sgd_block = resolved_block or None
        self._checkpoint_manager = None
        if checkpoint_dir is not None:
            self._checkpoint_manager = CheckpointManager(
                checkpoint_dir,
                every_n_checks=checkpoint_every,
                fault_injector=fault_injector,
            )
        self._fit(split, window)
        self._fitted = True
        return self

    @staticmethod
    def _resolve_training_knobs(
        fit_workers: Optional[int],
        sgd_block: Optional[int],
        profile: Optional[Union[str, Path, "object"]],
    ) -> "tuple[int, int]":
        """Resolve training knobs: explicit argument > profile > default.

        Imports lazily so models stay importable without the tuning
        stack and a plain ``fit()`` pays nothing for it.
        """
        from repro.tuning.defaults import describe, resolve, values_of
        from repro.tuning.profile import load_profile_knobs

        explicit = {"fit_workers": fit_workers, "sgd_block": sgd_block}
        profile_knobs = (
            load_profile_knobs(profile, "training")
            if profile is not None
            else {}
        )
        resolved = resolve(
            "training",
            cli={k: v for k, v in explicit.items() if v is not None},
            profile=profile_knobs,
        )
        if profile is not None:
            from repro.logging_utils import get_logger

            get_logger("models.base").info(
                "resolved training knobs: %s", describe(resolved)
            )
        values = values_of(resolved)
        return int(values["fit_workers"]), int(values["sgd_block"])  # type: ignore[arg-type]

    @abstractmethod
    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        """Model-specific training. Must only read training prefixes."""

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def window_config(self) -> WindowConfig:
        if self._window_config is None:
            raise NotFittedError(f"{type(self).__name__} used before fit")
        return self._window_config

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        """Preference scores for ``candidates`` at position ``t``.

        ``sequence`` is the user's *full* sequence; implementations must
        only consult positions ``< t``.

        The default routes a single-query batch through
        :meth:`score_batch`; models overriding only this method get the
        per-query fallback there.
        """
        if type(self).score_batch is Recommender.score_batch:
            raise NotImplementedError(
                f"{type(self).__name__} must override score or score_batch"
            )
        return self.score_batch(
            sequence, (Query(t=t, candidates=tuple(candidates)),)
        )[0]

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Score many queries of one user; one score array per query.

        This is the engine's primary entry point: implementations walk
        the sequence once (via a
        :class:`~repro.engine.session.ScoringSession`) instead of
        rebuilding window state per query, and must return scores
        bit-identical to per-query :meth:`score` calls. Queries may
        arrive in any ``t`` order (kernels visit them time-sorted and
        restore input order); the evaluation protocol always sends them
        ascending.

        The default falls back to one :meth:`score` call per query and
        warns once per class that the model predates the batch API.
        """
        if type(self).score is Recommender.score:
            raise NotImplementedError(
                f"{type(self).__name__} must override score or score_batch"
            )
        cls = type(self)
        if cls not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(cls)
            warnings.warn(
                f"{cls.__name__} only implements per-query score(); "
                f"score_batch() is falling back to a per-query loop. "
                f"Override score_batch() for batched scoring — the "
                f"per-query-only interface is deprecated.",
                DeprecationWarning,
                stacklevel=2,
            )
        return [
            self.score(sequence, list(query.candidates), query.t)
            for query in queries
        ]

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
        k: int,
    ) -> List[int]:
        """The top-``k`` candidates by score — a one-query batch.

        Ties are broken by candidate order, which the evaluation protocol
        fixes to ascending item index — so results are deterministic.
        """
        return self.recommend_batch(
            sequence, (Query(t=t, candidates=tuple(candidates)),), k
        )[0]

    def recommend_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
        k: int,
    ) -> List[List[int]]:
        """Top-``k`` lists for many queries of one user, in input order.

        Empty-candidate queries yield empty lists without being scored,
        matching the single-query contract.
        """
        self._check_fitted()
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        queries = list(queries)
        scorable = [query for query in queries if query.candidates]
        scores_list = self.score_batch(sequence, scorable) if scorable else []
        ranked: List[List[int]] = []
        by_query = iter(scores_list)
        for query in queries:
            if not query.candidates:
                ranked.append([])
                continue
            ranked.append(self._rank(query.candidates, next(by_query), k))
        return ranked

    def _rank(
        self,
        candidates: Sequence[int],
        scores: np.ndarray,
        k: int,
    ) -> List[int]:
        """Deterministic top-``k`` from one query's scores."""
        return rank_top_k(
            candidates, scores, k, owner=f"{type(self).__name__}.score returned"
        )

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"
