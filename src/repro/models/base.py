"""The recommender interface shared by TS-PPR and all baselines.

An RRC recommender sees one query at a time: a user's history up to
(excluding) position ``t`` and the Ω-filtered candidate set drawn from
the window before ``t``. It returns scores — higher means "more likely
to be the reconsumption at ``t``" — from which :meth:`recommend` takes
the deterministic top-k (candidate order breaks ties, and candidates are
always passed in sorted item order by the evaluation protocol, so runs
are reproducible).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.exceptions import EvaluationError, NotFittedError
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultInjector


class Recommender(ABC):
    """Base class for RRC recommenders."""

    #: Display name used in result tables; subclasses must override.
    name: str = ""

    def __init__(self) -> None:
        self._fitted = False
        self._window_config: Optional[WindowConfig] = None
        self._checkpoint_manager: Optional[CheckpointManager] = None
        self._fault_injector: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        split: SplitDataset,
        window: Optional[WindowConfig] = None,
        *,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        fault_injector: Optional[FaultInjector] = None,
    ) -> "Recommender":
        """Fit on the training prefixes of ``split``.

        Subclasses implement :meth:`_fit`; this wrapper records the
        window configuration and the fitted flag.

        Parameters
        ----------
        checkpoint_dir:
            When given, SGD-trained models snapshot their training
            state here every ``checkpoint_every`` convergence checks
            and transparently resume a partial run found in the
            directory, producing bit-identical results to an
            uninterrupted fit. Models without an SGD loop ignore it.
        fault_injector:
            Test hook killing training/persistence at scheduled points
            (see :mod:`repro.resilience.faults`).
        """
        window = window or WindowConfig()
        self._window_config = window
        self._fault_injector = fault_injector
        self._checkpoint_manager = None
        if checkpoint_dir is not None:
            self._checkpoint_manager = CheckpointManager(
                checkpoint_dir,
                every_n_checks=checkpoint_every,
                fault_injector=fault_injector,
            )
        self._fit(split, window)
        self._fitted = True
        return self

    @abstractmethod
    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        """Model-specific training. Must only read training prefixes."""

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def window_config(self) -> WindowConfig:
        if self._window_config is None:
            raise NotFittedError(f"{type(self).__name__} used before fit")
        return self._window_config

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")

    # ------------------------------------------------------------------
    # Scoring and recommendation
    # ------------------------------------------------------------------
    @abstractmethod
    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        """Preference scores for ``candidates`` at position ``t``.

        ``sequence`` is the user's *full* sequence; implementations must
        only consult positions ``< t``.
        """

    def recommend(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
        k: int,
    ) -> List[int]:
        """The top-``k`` candidates by :meth:`score`.

        Ties are broken by candidate order, which the evaluation protocol
        fixes to ascending item index — so results are deterministic.
        """
        self._check_fitted()
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        if not candidates:
            return []
        scores = np.asarray(self.score(sequence, candidates, t), dtype=np.float64)
        if scores.shape[0] != len(candidates):
            raise EvaluationError(
                f"{type(self).__name__}.score returned {scores.shape[0]} scores "
                f"for {len(candidates)} candidates"
            )
        k = min(k, len(candidates))
        # Stable mergesort on negated scores keeps candidate order on ties.
        order = np.argsort(-scores, kind="stable")[:k]
        return [int(candidates[int(i)]) for i in order]

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"
