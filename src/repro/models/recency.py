"""The Recency baseline: rank by exponential recency weight.

Section 5.2: items are weighted by ``e^{−Δt_uv}`` where ``Δt_uv`` is the
gap between the recommendation position and the user's last consumption
of the item. Candidates the user never consumed before ``t`` cannot
occur under the RRC protocol (candidates come from the window), but the
implementation still scores them at 0 for robustness.

The raw exponential underflows to 0 for gaps beyond ~745 steps; scoring
therefore works on the negated gap directly (a strictly monotone
transform of ``e^{−Δt}``), so the induced *ranking* is exact at any gap.
The :meth:`weight` helper exposes the paper's literal weighting scheme,
and the deliberately exp-shaped :meth:`score_with_exp` preserves the
baseline's Fig 13 cost profile for the timing experiment.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query, iter_queries_in_order
from repro.engine.session import ScoringSession
from repro.models.base import Recommender


class RecencyRecommender(Recommender):
    """Rank candidates by how recently the user consumed them."""

    name = "Recency"

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        # Nothing to learn: the model is a pure function of the history.
        return

    @staticmethod
    def weight(gap: int) -> float:
        """The paper's literal weight ``e^{−Δt}`` for a positive gap."""
        if gap <= 0:
            raise ValueError(f"gap must be positive, got {gap}")
        return float(np.exp(-float(gap)))

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        scores = np.empty(len(candidates), dtype=np.float64)
        for index, item in enumerate(candidates):
            last = sequence.last_position_before(int(item), t)
            # -inf for never-consumed keeps them strictly below any repeat.
            scores[index] = -(t - last) if last >= 0 else -np.inf
        return scores

    @staticmethod
    def scores_from_last_positions(lasts: np.ndarray, t: int) -> np.ndarray:
        """The batch-kernel arithmetic from pre-fetched last positions.

        ``lasts - t`` equals ``-(t - last)`` exactly (small integers are
        exact in float64), and never-consumed lanes get ``-inf`` as in
        the per-query path. Exposed so the serving layer's deadline
        fallback ranks with literally the same kernel.
        """
        scores = (np.asarray(lasts, dtype=np.int64) - t).astype(np.float64)
        scores[lasts < 0] = -np.inf
        return scores

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: session-tracked last positions, no binary search."""
        self._check_fitted()
        if not queries:
            return []
        ordered = list(iter_queries_in_order(queries))
        session = ScoringSession(
            sequence,
            self.window_config.window_size,
            start=ordered[0][1].t,
        )
        results: List[np.ndarray] = [np.empty(0)] * len(queries)
        for index, query in ordered:
            session.advance_to(query.t)
            items = np.asarray(query.candidates, dtype=np.int64)
            lasts = session.last_positions(items)
            results[index] = self.scores_from_last_positions(lasts, query.t)
        return results

    def score_with_exp(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        """Literal ``e^{−Δt}`` scores (used by the Fig 13 timing run)."""
        self._check_fitted()
        scores = np.empty(len(candidates), dtype=np.float64)
        for index, item in enumerate(candidates):
            last = sequence.last_position_before(int(item), t)
            scores[index] = np.exp(-(t - last)) if last >= 0 else 0.0
        return scores
