"""PPR: the static personalized pairwise ranking model (Section 4.1).

Classic BPR-style matrix factorization: ``r_uv = uᵀv`` trained with
``p(v_i >_u v_j) = σ(uᵀ(v_i − v_j))`` (Eq 1-3). The paper explains why
this cannot solve RRC — the learned order between two items is fixed,
while reconsumption preferences flip over time — and the model is
included here both as the natural ablation of TS-PPR's time-sensitive
term and as a reference implementation of Eq (4).

Training reuses the same pre-sampled quadruples as TS-PPR (positives are
observed reconsumptions, negatives window alternatives) but ignores the
time component entirely.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.models.base import Recommender
from repro.optim.kernels import ppr_block_update
from repro.optim.lasso import sigmoid, sigmoid_scalar
from repro.optim.sgd import SGDResult, run_sgd
from repro.rng import ensure_rng
from repro.sampling.quadruples import (
    sample_quadruples,
    sample_quadruples_reference,
)
from repro.sampling.schedule import UserUniformSchedule, small_batch_indices


class PPRRecommender(Recommender):
    """Time-insensitive pairwise ranking (BPR) over window candidates.

    Accepts a :class:`~repro.config.TSPPRConfig` for hyper-parameter
    parity with TS-PPR; the feature-related fields are simply unused.
    """

    name = "PPR"

    def __init__(self, config: Optional[TSPPRConfig] = None) -> None:
        super().__init__()
        self.config = config or TSPPRConfig()
        self.user_factors_: Optional[np.ndarray] = None
        self.item_factors_: Optional[np.ndarray] = None
        self.sgd_result_: Optional[SGDResult] = None
        self.n_quadruples_: int = 0

    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        config = self.config
        rng = ensure_rng(config.seed)
        sampler = (
            sample_quadruples_reference
            if config.training_engine == "scalar"
            else sample_quadruples
        )
        quadruples = sampler(
            split,
            window=window,
            n_negatives=config.n_negative_samples,
            random_state=rng,
        )
        self.n_quadruples_ = len(quadruples)

        K = config.n_factors
        U = rng.normal(0.0, config.init_scale_latent, (split.n_users, K))
        V = rng.normal(0.0, config.init_scale_latent, (split.n_items, K))
        self.user_factors_, self.item_factors_ = U, V

        users = quadruples.users
        positives = quadruples.positives
        negatives = quadruples.negatives
        alpha, gamma = config.learning_rate, config.gamma_latent

        schedule = UserUniformSchedule(quadruples, random_state=rng)
        batch = small_batch_indices(quadruples, config.batch_fraction)
        batch_users, batch_pos, batch_neg = users[batch], positives[batch], negatives[batch]

        def apply_update(index: int) -> None:
            user = int(users[index])
            v_i, v_j = int(positives[index]), int(negatives[index])
            u_vec = U[user]
            item_diff = V[v_i] - V[v_j]
            margin = float(u_vec @ item_diff)
            coeff = alpha * sigmoid_scalar(-margin)
            # U is written first, so the V updates below read the *new*
            # user vector through the ``u_vec`` view — part of the
            # model's update semantics the block kernel must preserve.
            U[user] = (1 - alpha * gamma) * u_vec + coeff * item_diff
            V[v_i] = (1 - alpha * gamma) * V[v_i] + coeff * u_vec
            V[v_j] = (1 - alpha * gamma) * V[v_j] - coeff * u_vec

        # Block kernel, delegated to :mod:`repro.optim.kernels` so the
        # online trainer (``repro.online``) applies the exact same
        # arithmetic.

        def apply_block(indices: np.ndarray) -> None:
            ppr_block_update(
                U,
                V,
                users[indices],
                positives[indices],
                negatives[indices],
                alpha=alpha,
                gamma=gamma,
            )

        def batch_margin() -> float:
            margins = np.einsum(
                "nk,nk->n", U[batch_users], V[batch_pos] - V[batch_neg]
            )
            return float(margins.mean())

        def get_state() -> dict:
            return {"user_factors": U, "item_factors": V}

        def set_state(params: dict) -> None:
            # In-place: apply_update/batch_margin close over U and V.
            U[...] = params["user_factors"]
            V[...] = params["item_factors"]

        check_interval = max(1, math.floor(len(quadruples) * config.batch_fraction))
        use_block = config.training_engine == "vectorized"
        self.sgd_result_ = run_sgd(
            draw_index=schedule.draw,
            apply_update=apply_update,
            draw_block=schedule.draw_many if use_block else None,
            apply_block=apply_block if use_block else None,
            batch_margin=batch_margin,
            max_updates=config.max_epochs,
            check_interval=check_interval,
            tol=config.convergence_tol,
            checkpoint=self._checkpoint_manager,
            get_state=get_state,
            set_state=set_state,
            rng=rng,
            fault_injector=self._fault_injector,
            block_size=self._sgd_block if use_block else None,
        )

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None
        items = np.asarray(candidates, dtype=np.int64)
        return self.item_factors_[items] @ self.user_factors_[sequence.user]

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Batch kernel: hoist the user vector, keep per-query GEMV shapes.

        PPR is time-insensitive, so no window state is needed; the
        ``(n, K) @ (K,)`` product stays per-query because concatenated
        GEMMs are not bit-identical to the sliced ones on this build.
        """
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None
        u_vec = self.user_factors_[sequence.user]
        item_factors = self.item_factors_
        return [
            item_factors[np.asarray(query.candidates, dtype=np.int64)] @ u_vec
            for query in queries
        ]
