"""TS-PPR: Time-Sensitive Personalized Pairwise Ranking (Section 4.2).

The preference of user ``u`` for item ``v`` at time ``t`` is

``r_uvt = uᵀ v + uᵀ A_u f_uvt``                                 (Eq 5)

combining a static latent term with a time-sensitive term that maps the
observable behavioural features ``f_uvt`` into the latent space through
the personalized matrix ``A_u``. Training maximizes

``p(v_i >_ut v_j) = σ(r_uv_i t − r_uv_j t)``                    (Eq 6)

over pre-sampled quadruples by stochastic gradient descent with the
updates of Algorithm 1, stopping when the small-batch mean margin ``r̃``
stabilizes (``Δr̃ ≤ 1e-3``, Section 5.6.1).

Ablation hooks (both default to the paper's choices):

* ``config.use_static_term=False`` drops the ``uᵀv`` term;
* ``config.share_mapping=True`` replaces the per-user ``A_u`` with one
  shared ``A``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.features import SessionFeatureMatrix
from repro.engine.query import Query, iter_queries_in_order
from repro.engine.session import ScoringSession
from repro.exceptions import ModelError, NotFittedError
from repro.features.cache import QuadrupleFeatureCache
from repro.features.vectorizer import BehavioralFeatureModel
from repro.models.base import Recommender
from repro.optim.kernels import tsppr_block_update, tsppr_shared_update
from repro.optim.lasso import sigmoid, sigmoid_scalar
from repro.optim.sgd import SGDResult, run_sgd
from repro.rng import ensure_rng
from repro.sampling.quadruples import (
    QuadrupleSet,
    sample_quadruples,
    sample_quadruples_reference,
)
from repro.sampling.schedule import UserUniformSchedule, small_batch_indices
from repro.windows.window import window_before


class TSPPRRecommender(Recommender):
    """The paper's model. See module docstring for the math.

    Parameters
    ----------
    config:
        Hyper-parameters (Table 4 defaults when omitted).
    feature_model:
        Optional pre-built (unfitted or fitted) feature model; used by
        experiments that share feature tables across models. When
        omitted, one is constructed from ``config.feature_names`` /
        ``config.recency_kind``.

    Attributes (after :meth:`fit`)
    ------------------------------
    user_factors_ / item_factors_:
        ``U ∈ R^{|U|×K}`` and ``V ∈ R^{|V|×K}``.
    mappings_:
        ``A ∈ R^{|U|×K×F}`` (or ``R^{K×F}`` when sharing is enabled).
    sgd_result_:
        The SGD run record, including the Fig 12 margin history.
    n_quadruples_:
        Size of the pre-sampled training set ``|D|``.
    """

    name = "TS-PPR"

    def __init__(
        self,
        config: Optional[TSPPRConfig] = None,
        feature_model: Optional[BehavioralFeatureModel] = None,
    ) -> None:
        super().__init__()
        self.config = config or TSPPRConfig()
        self._feature_model = feature_model
        self.user_factors_: Optional[np.ndarray] = None
        self.item_factors_: Optional[np.ndarray] = None
        self.mappings_: Optional[np.ndarray] = None
        self.sgd_result_: Optional[SGDResult] = None
        self.n_quadruples_: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _fit(self, split: SplitDataset, window: WindowConfig) -> None:
        config = self.config
        rng = ensure_rng(config.seed)

        if self._feature_model is None:
            self._feature_model = BehavioralFeatureModel(
                feature_names=config.feature_names,
                recency_kind=config.recency_kind,
            )
        if not self._feature_model.is_fitted:
            self._feature_model.fit(split.train_dataset(), window)
        if self._feature_model.n_features != config.n_features:
            raise ModelError(
                f"feature model provides {self._feature_model.n_features} "
                f"features but config expects {config.n_features}"
            )

        quadruples = self._sample_quadruples(split, window, rng)
        if config.training_engine == "scalar":
            cache = QuadrupleFeatureCache.build_reference(
                quadruples, split, self._feature_model
            )
        else:
            cache = QuadrupleFeatureCache.build(
                quadruples, split, self._feature_model,
                workers=self._fit_workers,
            )
        self.n_quadruples_ = len(quadruples)

        self._initialize_parameters(split.n_users, split.n_items, rng)
        self._run_training(quadruples, cache, rng)

    def _sample_quadruples(
        self,
        split: SplitDataset,
        window: WindowConfig,
        rng: np.random.Generator,
    ) -> QuadrupleSet:
        """The training-set source; subclasses may redefine "positive".

        The base class pre-samples RRC quadruples (observed
        reconsumptions against window alternatives);
        :class:`repro.novel.models.NovelTSPPRRecommender` overrides this
        with first-time consumptions against unconsumed items.
        """
        sampler = (
            sample_quadruples_reference
            if self.config.training_engine == "scalar"
            else sample_quadruples
        )
        return sampler(
            split,
            window=window,
            n_negatives=self.config.n_negative_samples,
            random_state=rng,
        )

    def _initialize_parameters(
        self, n_users: int, n_items: int, rng: np.random.Generator
    ) -> None:
        """Zero-mean Gaussian init (Algorithm 1, line 1)."""
        config = self.config
        K, F = config.n_factors, config.n_features
        self.user_factors_ = rng.normal(0.0, config.init_scale_latent, (n_users, K))
        self.item_factors_ = rng.normal(0.0, config.init_scale_latent, (n_items, K))
        if config.share_mapping:
            self.mappings_ = rng.normal(0.0, config.init_scale_mapping, (K, F))
        else:
            self.mappings_ = rng.normal(
                0.0, config.init_scale_mapping, (n_users, K, F)
            )

    def _mapping_of(self, user: int) -> np.ndarray:
        """``A_u`` — shared or per-user depending on configuration."""
        assert self.mappings_ is not None
        if self.config.share_mapping:
            return self.mappings_
        return self.mappings_[user]

    def _run_training(
        self,
        quadruples: QuadrupleSet,
        cache: QuadrupleFeatureCache,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None
        U, V = self.user_factors_, self.item_factors_
        alpha = config.learning_rate
        gamma, lam = config.gamma_latent, config.lambda_mapping
        use_static = config.use_static_term

        users = quadruples.users
        positives = quadruples.positives
        negatives = quadruples.negatives
        fdiff = cache.differences()

        schedule = UserUniformSchedule(quadruples, random_state=rng)
        batch = small_batch_indices(quadruples, config.batch_fraction)
        batch_users = users[batch]
        batch_pos = positives[batch]
        batch_neg = negatives[batch]
        batch_fdiff = fdiff[batch]

        def apply_update(index: int) -> None:
            user = int(users[index])
            v_i, v_j = int(positives[index]), int(negatives[index])
            diff = fdiff[index]

            u_vec = U[user]
            A_u = self._mapping_of(user)
            mapped = A_u @ diff
            if use_static:
                item_diff = V[v_i] - V[v_j]
                margin = float(u_vec @ (item_diff + mapped))
            else:
                item_diff = None
                margin = float(u_vec @ mapped)
            coeff = alpha * sigmoid_scalar(-margin)  # α(1 − p)

            # Gradients use the pre-update parameter values (Alg. 1, l. 10).
            if use_static:
                new_u = (1 - alpha * gamma) * u_vec + coeff * (item_diff + mapped)
                V[v_i] = (1 - alpha * gamma) * V[v_i] + coeff * u_vec
                V[v_j] = (1 - alpha * gamma) * V[v_j] - coeff * u_vec
            else:
                new_u = (1 - alpha * gamma) * u_vec + coeff * mapped
            new_A = (1 - alpha * lam) * A_u + coeff * np.outer(u_vec, diff)
            U[user] = new_u
            if self.config.share_mapping:
                self.mappings_ = new_A
            else:
                self.mappings_[user] = new_A  # type: ignore[index]

        # Block kernel, delegated to :mod:`repro.optim.kernels` so the
        # online trainer (``repro.online``) applies the exact same
        # arithmetic. Per-user mappings take the conflict-free batched
        # path; with a shared mapping every update conflicts through
        # ``A``, so that configuration keeps a buffered per-update loop.
        share_mapping = self.config.share_mapping

        def apply_block(indices: np.ndarray) -> None:
            if share_mapping:
                self.mappings_ = tsppr_shared_update(
                    U,
                    V,
                    self.mappings_,
                    users[indices].tolist(),
                    positives[indices].tolist(),
                    negatives[indices].tolist(),
                    fdiff[indices],
                    alpha=alpha,
                    gamma=gamma,
                    lam=lam,
                    use_static=use_static,
                )
                return
            tsppr_block_update(
                U,
                V,
                self.mappings_,
                users[indices],
                positives[indices],
                negatives[indices],
                fdiff[indices],
                alpha=alpha,
                gamma=gamma,
                lam=lam,
                use_static=use_static,
            )

        def batch_margin() -> float:
            u_rows = U[batch_users]
            if self.config.share_mapping:
                mapped = batch_fdiff @ self.mappings_.T  # type: ignore[union-attr]
            else:
                mapped = np.einsum(
                    "nkf,nf->nk", self.mappings_[batch_users], batch_fdiff
                )
            margins = np.einsum("nk,nk->n", u_rows, mapped)
            if use_static:
                item_diff = V[batch_pos] - V[batch_neg]
                margins = margins + np.einsum("nk,nk->n", u_rows, item_diff)
            return float(margins.mean())

        def get_state() -> dict:
            return {
                "user_factors": U,
                "item_factors": V,
                "mappings": np.asarray(self.mappings_),
            }

        def set_state(params: dict) -> None:
            # In-place writes keep the U/V aliases the update closures
            # hold valid; the mapping is only ever read through self.
            U[...] = params["user_factors"]
            V[...] = params["item_factors"]
            if self.config.share_mapping:
                self.mappings_ = params["mappings"].copy()
            else:
                self.mappings_[...] = params["mappings"]  # type: ignore[index]

        check_interval = max(
            1, math.floor(len(quadruples) * config.batch_fraction)
        )
        use_block = config.training_engine == "vectorized"
        self.sgd_result_ = run_sgd(
            draw_index=schedule.draw,
            apply_update=apply_update,
            draw_block=schedule.draw_many if use_block else None,
            apply_block=apply_block if use_block else None,
            batch_margin=batch_margin,
            max_updates=config.max_epochs,
            check_interval=check_interval,
            tol=config.convergence_tol,
            checkpoint=self._checkpoint_manager,
            get_state=get_state,
            set_state=set_state,
            rng=rng,
            fault_injector=self._fault_injector,
            block_size=self._sgd_block if use_block else None,
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @property
    def feature_model(self) -> BehavioralFeatureModel:
        if self._feature_model is None:
            raise NotFittedError("TSPPRRecommender used before fit")
        return self._feature_model

    def preference(
        self,
        user: int,
        item: int,
        sequence: ConsumptionSequence,
        t: int,
    ) -> float:
        """``r_uvt`` (Eq 5) for one item — convenience for inspection."""
        return float(self.score(sequence, [item], t)[0])

    def score(
        self,
        sequence: ConsumptionSequence,
        candidates: Sequence[int],
        t: int,
    ) -> np.ndarray:
        """Per-query reference kernel (rebuilds window state from scratch)."""
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None
        user = sequence.user
        u_vec = self.user_factors_[user]
        A_u = self._mapping_of(user)

        window = window_before(
            sequence, t, self.window_config.window_size
        )
        features = self.feature_model.matrix(sequence, candidates, t, window)
        mapped = features @ A_u.T  # (n, K)
        scores = mapped @ u_vec
        if self.config.use_static_term:
            items = np.asarray(candidates, dtype=np.int64)
            scores = scores + self.item_factors_[items] @ u_vec
        return scores

    def score_batch(
        self,
        sequence: ConsumptionSequence,
        queries: Sequence[Query],
    ) -> List[np.ndarray]:
        """Engine kernel: one session walk, vectorized feature columns.

        Per-query matmul shapes are kept identical to :meth:`score`
        (concatenating queries into one GEMM changes BLAS blocking and
        breaks bit-identity on this build); the win is the O(1)
        incremental window state and the per-column feature fills.
        """
        self._check_fitted()
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None
        if not queries:
            return []
        user = sequence.user
        u_vec = self.user_factors_[user]
        A_u = self._mapping_of(user)
        A_uT = A_u.T
        item_factors = self.item_factors_
        use_static = self.config.use_static_term

        ordered = list(iter_queries_in_order(queries))
        session = ScoringSession(
            sequence,
            self.window_config.window_size,
            start=ordered[0][1].t,
        )
        feature_matrix = SessionFeatureMatrix(self.feature_model, session)

        results: List[Optional[np.ndarray]] = [None] * len(queries)
        for index, query in ordered:
            session.advance_to(query.t)
            items = np.asarray(query.candidates, dtype=np.int64)
            features = feature_matrix.matrix(items)
            scores = (features @ A_uT) @ u_vec
            if use_static:
                scores = scores + item_factors[items] @ u_vec
            results[index] = scores
        return results  # type: ignore[return-value]
