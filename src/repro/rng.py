"""Deterministic random-number utilities.

All stochastic components of the library (synthetic data generation,
quadruple sampling, SGD initialization and shuffling) draw from
:class:`numpy.random.Generator` objects derived from explicit seeds, so
every experiment in the paper grid is exactly reproducible.

The helpers here centralize two conventions:

* ``ensure_rng`` accepts a seed, an existing generator, or ``None`` and
  always hands back a :class:`numpy.random.Generator`.
* ``spawn`` derives independent child generators from a parent seed so
  that parallel subsystems (e.g. the two synthetic datasets) do not share
  or correlate their streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]

#: Seed used across the experiment grid when none is supplied explicitly.
DEFAULT_SEED = 20170417  # ICDE 2017 week, purely a fixed arbitrary constant.


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn(random_state: RandomState, n_children: int) -> Iterator[np.random.Generator]:
    """Yield ``n_children`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence`
    spawning, which guarantees independent streams regardless of how many
    draws the parent has already made.
    """
    if n_children < 0:
        raise ValueError(f"n_children must be non-negative, got {n_children}")
    if isinstance(random_state, np.random.Generator):
        seed_seq = random_state.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seed = DEFAULT_SEED if random_state is None else int(random_state)
        seed_seq = np.random.SeedSequence(seed)
    for child in seed_seq.spawn(n_children):
        yield np.random.default_rng(child)


def derive_seed(base: Optional[int], *salts: int) -> int:
    """Mix ``base`` with integer ``salts`` into a stable derived seed.

    Used by experiment sweeps so each grid point gets its own seed that is
    still a pure function of the experiment's base seed.
    """
    base_value = DEFAULT_SEED if base is None else int(base)
    mixed = np.random.SeedSequence([base_value, *[int(s) for s in salts]])
    return int(mixed.generate_state(1, dtype=np.uint32)[0])
