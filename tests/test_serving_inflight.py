"""In-flight batching contracts: bit-identity, manual pump, accounting.

The continuously fed packed-batch loop must be *invisible* in the
answers: for every model, any chunk size, any admission-control bound,
and any interleaving of mid-batch admissions and early retirements, the
recommendation lists must equal the micro-batch loop's and the offline
protocol's bit for bit. This suite pins that, plus the single-step
manual-pump contract and the split fallback accounting.
"""

from __future__ import annotations

from typing import List

import pytest

from conftest import SMALL_WINDOW

from repro.data.split import SplitDataset
from repro.exceptions import ServingError
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.serving.service import ServiceConfig, service_for_split
from test_serving_service import (
    K,
    QUICK,
    SlowScorer,
    offline_recommendations,
    replay_online,
    small_config,
)

MODEL_FACTORIES = {
    "recency": lambda: RecencyRecommender(),
    "tsppr": lambda: TSPPRRecommender(QUICK),
    "ppr": lambda: PPRRecommender(QUICK),
    "fpmc": lambda: FPMCRecommender(QUICK),
}


class TestInflightBitIdentity:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_inflight_equals_microbatch_equals_offline(
        self, name: str, gowalla_split: SplitDataset
    ) -> None:
        model = MODEL_FACTORIES[name]().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1, 2, 3]
        inflight = replay_online(
            model, gowalla_split, users, batching="inflight"
        )
        microbatch = replay_online(
            model, gowalla_split, users, batching="microbatch"
        )
        assert inflight == microbatch
        for user in users:
            offline = offline_recommendations(model, gowalla_split, user)
            assert inflight[user] == offline, (
                f"{name}: in-flight diverges from offline for user {user}"
            )

    def test_chunk_shape_does_not_matter(
        self, gowalla_split: SplitDataset
    ) -> None:
        """check_interval 1, 3, and 64 answer identically."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1, 2]
        replays = [
            replay_online(
                model, gowalla_split, users,
                batching="inflight", check_interval=interval,
            )
            for interval in (1, 3, 64)
        ]
        assert replays[0] == replays[1] == replays[2]

    def test_admission_wait_does_not_matter(
        self, gowalla_split: SplitDataset
    ) -> None:
        """The growth-gated coalescing wait is a latency knob only."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1]
        gated = replay_online(
            model, gowalla_split, users,
            batching="inflight", admission_wait_ms=5.0,
        )
        ungated = replay_online(
            model, gowalla_split, users,
            batching="inflight", admission_wait_ms=0.0,
        )
        assert gated == ungated

    def test_admission_bound_does_not_matter(
        self, gowalla_split: SplitDataset
    ) -> None:
        """max_inflight_rows=1 forces constant overflow; answers unchanged.

        Every request is wider than one row, so each admits only into an
        empty batch (the no-starvation rule) and every other submission
        waits in overflow — the most hostile admission-control schedule.
        """
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1]
        tight = replay_online(
            model, gowalla_split, users,
            batching="inflight", max_inflight_rows=1,
        )
        roomy = replay_online(
            model, gowalla_split, users,
            batching="inflight", max_inflight_rows=32768,
        )
        assert tight == roomy


class TestManualPump:
    @pytest.mark.parametrize("batching", ["inflight", "microbatch"])
    def test_replay_identical_under_manual_pump(
        self, batching: str, gowalla_split: SplitDataset
    ) -> None:
        """The pump-driven loop replays exactly like the worker-driven one."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1]
        manual = replay_online(
            model, gowalla_split, users, batching=batching, manual_pump=True
        )
        threaded = replay_online(
            model, gowalla_split, users, batching=batching
        )
        assert manual == threaded

    @pytest.mark.parametrize("batching", ["inflight", "microbatch"])
    def test_pump_drains_everything_submitted(
        self, batching: str, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(
            n_items=gowalla_split.n_items, batching=batching, manual_pump=True
        )
        with service_for_split(
            model, gowalla_split, config=config
        ) as service:
            handles = [service.submit(user, k=K) for user in (0, 1, 2, 0, 1)]
            completed = service.pump()
            assert completed == len(handles)
            for pending in handles:
                # Already resolved: a zero-timeout wait must succeed.
                assert pending.result(timeout=0.0).items
            assert service.pump() == 0

    def test_mid_batch_admission_and_early_retirement(
        self, gowalla_split: SplitDataset
    ) -> None:
        """Kernel-boundary admissions/retirements stay bit-identical.

        Drives the engine one kernel at a time (check_interval=2) and
        submits new requests *between* boundaries, so later kernels run
        against a packed buffer that has both retired earlier rows and
        admitted new ones mid-flight — the exact schedule the
        background worker produces under load.
        """
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(
            n_items=gowalla_split.n_items,
            batching="inflight",
            check_interval=2,
            manual_pump=True,
        )
        with service_for_split(
            model, gowalla_split, config=config
        ) as service:
            engine = service._engine
            assert engine is not None
            handles = [service.submit(user, k=K) for user in (0, 0, 0, 1, 1)]
            with service._pump_lock:
                service._drain_submissions(engine)
                assert engine.n_inflight == 5
                # Boundary 1: two of user 0's requests retire early while
                # the rest stay admitted.
                assert engine.step() == 2
                assert engine.n_inflight == 3
            assert handles[0].result(timeout=0.0) is not None
            # Mid-batch admission: a new user arrives between kernels.
            handles.append(service.submit(2, k=K))
            assert service.pump() == 4
            assert engine.idle and len(engine.batch) == 0
            # Every answer equals a fresh one-request-per-call reference.
            with service_for_split(
                model, gowalla_split, config=small_config(
                    n_items=gowalla_split.n_items, batching="microbatch",
                    max_batch=1, max_wait_ms=0.0,
                )
            ) as reference:
                for pending in handles:
                    result = pending.result(timeout=0.0)
                    expected = reference.recommend(result.user, k=K)
                    assert result.items == expected.items

    def test_recommend_pumps_in_manual_mode(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(
            n_items=gowalla_split.n_items, manual_pump=True
        )
        with service_for_split(
            model, gowalla_split, config=config
        ) as service:
            # No background worker exists, yet recommend() must resolve.
            assert service._worker is None
            result = service.recommend(0, k=K, timeout=5.0)
            assert result.items

    def test_close_flushes_manual_service(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(
            n_items=gowalla_split.n_items, manual_pump=True
        )
        service = service_for_split(model, gowalla_split, config=config)
        pending = service.submit(0, k=K)
        service.close()
        assert pending.result(timeout=0.0).items


class TestAccounting:
    def test_scored_vs_fallback_split(
        self, gowalla_split: SplitDataset
    ) -> None:
        """Queue-expiry and scoring-overrun fallbacks count separately."""
        model = SlowScorer(delay_s=0.0)
        model.fit(gowalla_split, SMALL_WINDOW)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(
            model, gowalla_split, config=config
        ) as service:
            service.recommend(0, k=K)                       # scored
            service.recommend(0, k=K, deadline_ms=0.0)      # queue-expired
            model.delay_s = 0.2
            service.recommend(0, k=K, deadline_ms=50.0)     # overran scoring
            counters = service.metrics_snapshot()["counters"]
        assert counters["scored_answers"] == 1
        assert counters["fallback_answers"] == 2
        assert counters["fallbacks_queue_expired"] == 1
        assert counters["fallbacks_scoring_overrun"] == 1
        # Back-compat total still equals the split sum.
        assert counters["deadline_fallbacks"] == 2

    def test_inflight_gauges_are_sampled(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(
            model, gowalla_split, config=config
        ) as service:
            for _ in range(5):
                service.recommend(0, k=K)
            snapshot = service.metrics_snapshot()
        gauges = snapshot["gauges"]
        assert gauges["batch_occupancy_rows"]["count"] > 0
        assert gauges["inflight_requests"]["count"] > 0
        assert gauges["inflight_requests"]["max"] >= 1
        assert snapshot["latency"]["admission_wait"]["count"] >= 5
        assert 0 < snapshot["mean_batch_size"] <= 64

    def test_config_validation(self) -> None:
        with pytest.raises(ServingError, match="batching"):
            ServiceConfig(batching="adaptive")
        with pytest.raises(ServingError, match="max_inflight_rows"):
            ServiceConfig(max_inflight_rows=0)
        with pytest.raises(ServingError, match="check_interval"):
            ServiceConfig(check_interval=0)
