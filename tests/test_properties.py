"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# Several properties compare against intentionally naive O(n²) oracles;
# a moderate example budget keeps the suite fast while still exploring
# the repetition-heavy space well.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.evaluation.metrics import UserCounts, aggregate_accuracy
from repro.optim.lasso import sigmoid, soft_threshold
from repro.synth.popularity import ZipfPopularity
from repro.windows.repeat import (
    candidate_items,
    is_valid_target,
    iter_repeat_positions,
    recent_items,
)
from repro.windows.window import window_before

# Small alphabets force plenty of repetition — the interesting regime.
item_sequences = st.lists(
    st.integers(min_value=0, max_value=7), min_size=1, max_size=60
)
window_sizes = st.integers(min_value=2, max_value=20)


class TestVocabularyProperties:
    @given(st.lists(st.text(max_size=5)))
    def test_roundtrip_for_any_ids(self, ids):
        vocab = Vocabulary(ids)
        for raw_id in ids:
            assert vocab.id_of(vocab.index_of(raw_id)) == raw_id

    @given(st.lists(st.integers(), unique=True))
    def test_indices_are_dense(self, ids):
        vocab = Vocabulary(ids)
        assert sorted(vocab.index_of(i) for i in ids) == list(range(len(ids)))


class TestSequenceProperties:
    @given(item_sequences)
    def test_last_position_before_matches_naive(self, items):
        sequence = ConsumptionSequence(0, items)
        for t in range(len(items) + 1):
            for item in set(items):
                naive = max((p for p in range(t) if items[p] == item), default=-1)
                assert sequence.last_position_before(item, t) == naive

    @given(item_sequences)
    def test_count_before_matches_naive(self, items):
        sequence = ConsumptionSequence(0, items)
        for t in range(len(items) + 1):
            for item in set(items):
                assert sequence.count_before(item, t) == items[:t].count(item)

    @given(item_sequences, st.integers(min_value=0, max_value=60))
    def test_prefix_suffix_partition(self, items, cut):
        sequence = ConsumptionSequence(0, items)
        cut = min(cut, len(items))
        assert sequence.prefix(cut).concat(sequence.suffix(cut)) == sequence


class TestWindowProperties:
    @given(item_sequences, window_sizes)
    def test_window_contents_match_slice(self, items, size):
        sequence = ConsumptionSequence(0, items)
        for t in range(len(items) + 1):
            window = window_before(sequence, t, size)
            expected = items[max(0, t - size):t]
            assert window.items.tolist() == expected
            assert window.item_set == frozenset(expected)
            for item in set(expected):
                assert window.count(item) == expected.count(item)

    @given(item_sequences, window_sizes)
    def test_familiarity_sums_to_one(self, items, size):
        sequence = ConsumptionSequence(0, items)
        t = len(items)
        window = window_before(sequence, t, size)
        if len(window):
            total = sum(window.familiarity(v) for v in window.item_set)
            assert total == pytest.approx(1.0)


class TestRepeatProtocolProperties:
    @given(item_sequences, window_sizes, st.integers(min_value=1, max_value=10))
    def test_iter_positions_are_exactly_valid_targets(self, items, size, gap):
        if gap >= size:
            gap = size - 1
        if gap < 1:
            return
        sequence = ConsumptionSequence(0, items)
        fast = {t for t, _ in iter_repeat_positions(sequence, size, gap)}
        naive = {
            t
            for t in range(1, len(items))
            if is_valid_target(sequence, t, size, gap)
        }
        assert fast == naive

    @given(item_sequences, window_sizes, st.integers(min_value=1, max_value=10))
    def test_candidates_disjoint_from_recent(self, items, size, gap):
        if gap >= size:
            gap = size - 1
        if gap < 1:
            return
        sequence = ConsumptionSequence(0, items)
        for t in range(len(items) + 1):
            candidates = set(candidate_items(sequence, t, size, gap))
            recent = recent_items(sequence, t, gap)
            window = set(window_before(sequence, t, size).item_set)
            assert candidates.isdisjoint(recent)
            assert candidates <= window


class TestMetricProperties:
    counts_strategy = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),  # targets
            st.floats(min_value=0.0, max_value=1.0),  # hit rate
        ),
        min_size=1,
        max_size=20,
    )

    @given(counts_strategy)
    def test_metrics_bounded_and_consistent(self, raw):
        per_user = []
        any_targets = False
        for n_targets, rate in raw:
            hits = int(round(n_targets * rate))
            per_user.append(UserCounts(n_targets=n_targets, hits={1: hits}))
            any_targets = any_targets or n_targets > 0
        if not any_targets:
            return
        result = aggregate_accuracy(per_user, [1])
        assert 0.0 <= result.maap[1] <= 1.0
        assert 0.0 <= result.miap[1] <= 1.0

    @given(st.integers(min_value=1, max_value=100))
    def test_perfect_recommender_scores_one(self, n_targets):
        per_user = [UserCounts(n_targets=n_targets, hits={1: n_targets})]
        result = aggregate_accuracy(per_user, [1])
        assert result.maap[1] == 1.0
        assert result.miap[1] == 1.0


class TestOptimProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-700, max_value=700),
                    min_size=1, max_size=100))
    def test_sigmoid_bounded(self, values):
        out = sigmoid(np.array(values))
        assert np.all((out >= 0) & (out <= 1))

    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e6, max_value=1e6),
                 min_size=1, max_size=50),
        st.floats(min_value=0, max_value=1e5),
    )
    def test_soft_threshold_shrinks(self, values, threshold):
        array = np.array(values)
        out = soft_threshold(array, threshold)
        assert np.all(np.abs(out) <= np.abs(array) + 1e-12)
        assert np.all(np.sign(out) * np.sign(array) >= 0)


class TestZipfProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_distribution_valid(self, n_items, exponent):
        zipf = ZipfPopularity(n_items, exponent)
        probabilities = zipf.probabilities
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities > 0)
        assert np.all(np.diff(probabilities) <= 1e-18)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.integers(min_value=2, max_value=100))
    def test_samples_in_range(self, n_items):
        zipf = ZipfPopularity(n_items, 1.0)
        samples = zipf.sample(200, np.random.default_rng(0))
        assert samples.min() >= 0
        assert samples.max() < n_items
