"""Tier-2 soak: the arena at a million users.

Builds a 1M-user synthetic arena directly from columns (the layout is
the API: ``items[offsets[u]:offsets[u+1]]``), then exercises slicing,
live appends, eviction/rehydration churn, compaction, and the mmap
round-trip at scale. Excluded from tier-1 by the ``tier2`` marker; run
with ``pytest -m tier2 tests/test_store_soak.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.state import SessionStore
from repro.store import (
    ArenaHistoryStore,
    SessionArena,
    store_memory_profile,
)

pytestmark = pytest.mark.tier2

N_USERS = 1_000_000
N_ITEMS = 5_000
WS, MG = 10, 2


@pytest.fixture(scope="module")
def million_user_store() -> ArenaHistoryStore:
    rng = np.random.default_rng(4242)
    lengths = rng.integers(4, 16, size=N_USERS).astype(np.int64)
    offsets = np.zeros(N_USERS + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    items = rng.integers(0, N_ITEMS, size=int(offsets[-1])).astype(np.int32)
    return ArenaHistoryStore(SessionArena(items, offsets))


def sample_users(n: int = 500) -> np.ndarray:
    return np.random.default_rng(7).integers(0, N_USERS, size=n)


class TestMillionUserSoak:
    def test_slices_match_raw_columns(self, million_user_store):
        store = million_user_store
        arena = store.arena
        for user in sample_users():
            user = int(user)
            view = store.slice(user)
            expected = arena.items[
                arena.offsets[user] : arena.offsets[user + 1]
            ]
            assert view.items.tolist() == expected.tolist()
            assert np.shares_memory(view.items, arena.items)

    def test_bytes_per_user_stay_columnar(self, million_user_store):
        store = million_user_store
        profile = store_memory_profile(store, range(N_USERS))
        # ~9.5 avg events × 4 bytes + 8 bytes of offset ≈ 46; anything
        # pointer-per-event would be an order of magnitude above this.
        assert profile["bytes_per_user"] < 100

    def test_live_appends_and_fingerprints_at_scale(
        self, million_user_store
    ):
        store = million_user_store
        rng = np.random.default_rng(11)
        for user in sample_users(200):
            user = int(user)
            session = store.session(user, WS, MG)
            before = session.state_fingerprint()
            for item in rng.integers(0, N_ITEMS, size=5):
                session.append(int(item))
            rebuilt = store.session(user, WS, MG)
            assert rebuilt.n_live_events == session.n_live_events
            assert rebuilt.state_fingerprint() == session.state_fingerprint()
            assert rebuilt.state_fingerprint() != before

    def test_eviction_churn_over_lru_store(self, million_user_store):
        session_store = SessionStore(
            WS, MG, capacity=64, history_provider=million_user_store
        )
        users = [int(u) for u in sample_users(1_000)]
        digests = {
            user: session_store.get(user).state_fingerprint()
            for user in users
        }
        for user in reversed(users):  # every get past 64 is a rehydration
            assert session_store.get(user).state_fingerprint() == (
                digests[user]
            )
        assert session_store.counters.evictions > 0

    def test_compaction_at_scale(self, million_user_store):
        store = million_user_store
        touched = [int(u) for u in sample_users(300)]
        expected = {}
        for user in touched:
            store.append(user, user % N_ITEMS)
            expected[user] = store.slice(user).items.tolist()
        # Earlier soak tests may have left tails on overlapping users,
        # so compaction folds live_count events, not exactly one.
        folded = {
            user: store.base_length(user) + store.live_count(user)
            for user in touched
        }
        store.compact()
        assert store.n_tail_events == 0
        for user in touched:
            assert store.slice(user).items.tolist() == expected[user]
            assert store.base_length(user) == folded[user]

    def test_mmap_roundtrip_at_scale(self, million_user_store, tmp_path):
        directory = str(tmp_path / "arena")
        million_user_store.arena.save(directory)
        reopened = ArenaHistoryStore.open(directory)
        assert isinstance(reopened.arena.items, np.memmap)
        assert reopened.arena.n_users == N_USERS
        for user in sample_users(100):
            user = int(user)
            assert reopened.fingerprint(user, WS, MG) == (
                million_user_store.fingerprint(user, WS, MG)
            )
