"""Tests for repro.optim.lasso."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.optim.lasso import (
    LogisticLasso,
    sigmoid,
    sigmoid_scalar,
    soft_threshold,
)


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)
        assert sigmoid(np.array(np.log(3))) == pytest.approx(0.75)

    def test_extreme_values_do_not_overflow(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self, rng):
        z = rng.normal(size=50)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_monotone(self):
        z = np.linspace(-5, 5, 101)
        assert np.all(np.diff(sigmoid(z)) > 0)

    def test_scalar_variant_bit_equal(self, rng):
        # The per-update SGD paths use sigmoid_scalar while the block
        # kernels use the array form; the two must agree bit for bit,
        # including at ±0.0, saturation, and infinities.
        pinned = np.array([
            -np.inf, -710.0, -40.0, -1.5, -1e-300, -0.0,
            0.0, 1e-300, 1.5, 40.0, 710.0, np.inf,
        ])
        z = np.concatenate((pinned, rng.normal(scale=8.0, size=200)))
        array_values = sigmoid(z)
        scalar_values = np.array([sigmoid_scalar(float(v)) for v in z])
        assert np.array_equal(array_values, scalar_values)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        values = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(values, 1.0)
        assert out.tolist() == [-2.0, 0.0, 0.0, 0.0, 2.0]

    def test_zero_threshold_is_identity(self, rng):
        values = rng.normal(size=20)
        assert np.allclose(soft_threshold(values, 0.0), values)


class TestLogisticLasso:
    def _separable_data(self, rng, n=400):
        X = rng.normal(size=(n, 3))
        # Only feature 0 matters.
        y = (X[:, 0] > 0).astype(int)
        return X, y

    def test_fits_separable_problem(self, rng):
        X, y = self._separable_data(rng)
        model = LogisticLasso(alpha=1e-3).fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.95
        assert abs(model.coef_[0]) > abs(model.coef_[1])
        assert abs(model.coef_[0]) > abs(model.coef_[2])

    def test_strong_penalty_zeroes_noise_features(self, rng):
        X, y = self._separable_data(rng)
        model = LogisticLasso(alpha=0.05).fit(X, y)
        assert model.coef_[1] == 0.0
        assert model.coef_[2] == 0.0
        assert model.coef_[0] != 0.0
        assert model.sparsity() == pytest.approx(2 / 3)

    def test_huge_penalty_zeroes_everything(self, rng):
        X, y = self._separable_data(rng)
        model = LogisticLasso(alpha=10.0).fit(X, y)
        assert np.all(model.coef_ == 0.0)

    def test_intercept_learns_base_rate(self, rng):
        X = rng.normal(size=(500, 2)) * 0.01  # nearly useless features
        y = np.ones(500, dtype=int)
        y[:50] = 0  # 90% positive
        model = LogisticLasso(alpha=0.0).fit(X, y)
        assert model.intercept_ > 0
        base = model.predict_proba(np.zeros((1, 2)))[0]
        assert base == pytest.approx(0.9, abs=0.05)

    def test_no_intercept_option(self, rng):
        X, y = self._separable_data(rng)
        model = LogisticLasso(alpha=1e-3, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_accepts_plus_minus_labels(self, rng):
        X, y = self._separable_data(rng)
        signs = np.where(y == 1, 1.0, -1.0)
        a = LogisticLasso(alpha=1e-3).fit(X, y)
        b = LogisticLasso(alpha=1e-3).fit(X, signs)
        assert np.allclose(a.coef_, b.coef_)

    def test_rejects_nonbinary_labels(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="binary"):
            LogisticLasso().fit(X, np.arange(10))

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError, match="rows"):
            LogisticLasso().fit(rng.normal(size=(10, 2)), np.zeros(5))

    def test_rejects_1d_design(self):
        with pytest.raises(ValueError, match="2-D"):
            LogisticLasso().fit(np.zeros(10), np.zeros(10))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticLasso().predict(np.zeros((1, 2)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LogisticLasso(alpha=-1)
        with pytest.raises(ValueError):
            LogisticLasso(max_iter=0)
        with pytest.raises(ValueError):
            LogisticLasso(tol=0)
