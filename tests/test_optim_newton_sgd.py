"""Tests for repro.optim.newton, repro.optim.sgd, repro.optim.convergence."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.optim.convergence import ConvergenceMonitor
from repro.optim.newton import newton_minimize
from repro.optim.sgd import run_sgd


class TestNewtonMinimize:
    def test_quadratic_solves_in_one_step(self):
        A = np.array([[3.0, 1.0], [1.0, 2.0]])
        b = np.array([1.0, -1.0])

        def objective(x):
            value = 0.5 * x @ A @ x - b @ x
            return value, A @ x - b, A

        result = newton_minimize(objective, np.zeros(2))
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(A, b))
        assert result.n_iter <= 2

    def test_nonquadratic_convex(self):
        # f(x) = log(1 + e^x) - 0.3 x has root sigmoid(x) = 0.3.
        def objective(x):
            z = float(x[0])
            sig = 1.0 / (1.0 + np.exp(-z))
            value = np.logaddexp(0.0, z) - 0.3 * z
            grad = np.array([sig - 0.3])
            hess = np.array([[sig * (1 - sig)]])
            return value, grad, hess

        result = newton_minimize(objective, np.array([5.0]))
        assert result.converged
        assert result.x[0] == pytest.approx(np.log(0.3 / 0.7), abs=1e-6)

    def test_singular_hessian_gets_ridged(self):
        def objective(x):
            value = float((x[0] - 2.0) ** 2)
            grad = np.array([2 * (x[0] - 2.0), 0.0])
            hess = np.array([[2.0, 0.0], [0.0, 0.0]])  # singular
            return value, grad, hess

        result = newton_minimize(objective, np.zeros(2), max_iter=200)
        assert result.x[0] == pytest.approx(2.0, abs=1e-5)

    def test_budget_exhaustion_raises_by_default(self):
        def objective(x):
            # Gradient never below tol with max_iter=1 from far away.
            return float(x[0] ** 4), np.array([4 * x[0] ** 3]), np.array([[12 * x[0] ** 2]])

        with pytest.raises(ConvergenceError):
            newton_minimize(objective, np.array([50.0]), max_iter=1, tol=1e-14)

    def test_budget_exhaustion_soft_mode(self):
        def objective(x):
            return float(x[0] ** 4), np.array([4 * x[0] ** 3]), np.array([[12 * x[0] ** 2]])

        result = newton_minimize(
            objective, np.array([50.0]), max_iter=1, tol=1e-14,
            raise_on_failure=False,
        )
        assert not result.converged


class TestConvergenceMonitor:
    def test_first_check_never_converges(self):
        monitor = ConvergenceMonitor(tol=1.0)
        assert monitor.record(0, 0.0) is False

    def test_converges_on_small_delta(self):
        monitor = ConvergenceMonitor(tol=1e-3)
        monitor.record(0, 0.5)
        assert monitor.record(10, 0.5005) is True

    def test_does_not_converge_on_large_delta(self):
        monitor = ConvergenceMonitor(tol=1e-3)
        monitor.record(0, 0.5)
        assert monitor.record(10, 0.6) is False

    def test_patience(self):
        monitor = ConvergenceMonitor(tol=1e-3, patience=2)
        monitor.record(0, 0.5)
        assert monitor.record(1, 0.5001) is False
        assert monitor.record(2, 0.5002) is True

    def test_streak_resets(self):
        monitor = ConvergenceMonitor(tol=1e-3, patience=2)
        monitor.record(0, 0.5)
        monitor.record(1, 0.5001)
        monitor.record(2, 0.8)        # breaks the streak
        assert monitor.record(3, 0.8001) is False
        assert monitor.record(4, 0.8002) is True

    def test_history_records_everything(self):
        monitor = ConvergenceMonitor()
        monitor.record(0, 1.0)
        monitor.record(5, 2.0)
        assert monitor.history == [(0, 1.0), (5, 2.0)]
        assert monitor.last_margin == 2.0

    def test_reset(self):
        monitor = ConvergenceMonitor()
        monitor.record(0, 1.0)
        monitor.reset()
        assert monitor.history == []
        with pytest.raises(ValueError):
            monitor.last_margin

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(tol=0)
        with pytest.raises(ValueError):
            ConvergenceMonitor(patience=0)


class TestRunSGD:
    def test_stops_on_convergence(self):
        state = {"x": 0.0}

        def update(_index):
            state["x"] += (1.0 - state["x"]) * 0.5

        result = run_sgd(
            draw_index=lambda: 0,
            apply_update=update,
            batch_margin=lambda: state["x"],
            max_updates=10_000,
            check_interval=10,
            tol=1e-4,
        )
        assert result.converged
        assert result.n_updates < 10_000
        assert result.final_margin == pytest.approx(1.0, abs=1e-2)

    def test_respects_budget(self):
        counter = {"n": 0}

        def update(_index):
            counter["n"] += 1

        result = run_sgd(
            draw_index=lambda: 0,
            apply_update=update,
            batch_margin=lambda: float(counter["n"]),  # never stabilizes
            max_updates=55,
            check_interval=10,
            tol=1e-9,
        )
        assert not result.converged
        assert result.n_updates == 55
        assert counter["n"] == 55

    def test_margin_history_checkpoints(self):
        result = run_sgd(
            draw_index=lambda: 0,
            apply_update=lambda i: None,
            batch_margin=lambda: 1.0,
            max_updates=100,
            check_interval=25,
            tol=1e-6,
        )
        # Initial check at 0 updates plus the first interval check.
        assert result.margin_history[0] == (0, 1.0)
        assert result.margin_history[1][0] == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sgd(lambda: 0, lambda i: None, lambda: 0.0, 0, 1)
        with pytest.raises(ValueError):
            run_sgd(lambda: 0, lambda i: None, lambda: 0.0, 10, 0)

    def test_budget_smaller_than_check_interval(self):
        """Regression: max_updates < check_interval must still record a
        final check and produce a usable final_margin."""
        counter = {"n": 0}

        def update(_index):
            counter["n"] += 1

        result = run_sgd(
            draw_index=lambda: 0,
            apply_update=update,
            batch_margin=lambda: float(counter["n"]),
            max_updates=3,
            check_interval=100,
            tol=1e-9,
        )
        assert counter["n"] == 3
        assert result.n_updates == 3
        assert result.margin_history == ((0, 0.0), (3, 3.0))
        assert result.final_margin == 3.0

    def test_final_margin_empty_history_raises(self):
        from repro.optim.sgd import SGDResult

        hand_built = SGDResult(n_updates=0, converged=False, margin_history=())
        with pytest.raises(ValueError, match="no convergence checks"):
            hand_built.final_margin


class TestRunSGDBlockMode:
    def _problem(self, seed=0):
        """A tiny SGD problem runnable in either execution mode.

        The "parameters" are a counter vector; updates add their index,
        so any reordering or double-application changes the result.
        """
        rng = np.random.default_rng(seed)
        state = {"x": np.zeros(8), "drawn": []}

        def draw_index():
            return int(rng.integers(8))

        def draw_block(k):
            return np.array([draw_index() for _ in range(k)])

        def apply_update(index):
            state["drawn"].append(index)
            state["x"][index] += 1.0 + 0.01 * index

        def apply_block(indices):
            for index in indices:
                apply_update(int(index))

        def batch_margin():
            return float(state["x"].sum())

        return state, draw_index, draw_block, apply_update, apply_block, batch_margin

    def test_block_mode_matches_scalar_mode(self):
        state_s, draw, _, update, _, margin_s = self._problem(seed=7)
        scalar = run_sgd(
            draw_index=draw,
            apply_update=update,
            batch_margin=margin_s,
            max_updates=95,
            check_interval=20,
            tol=1e-12,
        )
        state_b, _, draw_block, _, apply_block, margin_b = self._problem(seed=7)
        block = run_sgd(
            draw_index=None,
            apply_update=None,
            draw_block=draw_block,
            apply_block=apply_block,
            batch_margin=margin_b,
            max_updates=95,
            check_interval=20,
            tol=1e-12,
        )
        assert scalar == block  # n_updates, converged, margin history
        assert np.array_equal(state_s["x"], state_b["x"])
        assert state_s["drawn"] == state_b["drawn"]

    def test_blocks_never_cross_check_boundaries(self):
        sizes = []
        _, _, draw_block, _, apply_block, _ = self._problem()

        def logging_draw(k):
            sizes.append(k)
            return draw_block(k)

        run_sgd(
            draw_index=None,
            apply_update=None,
            draw_block=logging_draw,
            apply_block=apply_block,
            batch_margin=lambda: float(len(sizes)),  # never stabilizes
            max_updates=55,
            check_interval=20,
            tol=1e-12,
        )
        # Whole check intervals, then the budget remainder.
        assert sizes == [20, 20, 15]

    def test_block_mode_requires_both_callables(self):
        _, draw, draw_block, update, apply_block, margin = self._problem()
        with pytest.raises(ValueError, match="block mode requires both"):
            run_sgd(
                draw_index=draw,
                apply_update=update,
                draw_block=draw_block,
                apply_block=None,
                batch_margin=margin,
                max_updates=10,
                check_interval=5,
            )
        with pytest.raises(ValueError, match="block mode requires both"):
            run_sgd(
                draw_index=draw,
                apply_update=update,
                draw_block=None,
                apply_block=apply_block,
                batch_margin=margin,
                max_updates=10,
                check_interval=5,
            )

    def test_scalar_mode_requires_both_callables(self):
        _, draw, _, _, _, margin = self._problem()
        with pytest.raises(ValueError, match="scalar mode requires both"):
            run_sgd(
                draw_index=draw,
                apply_update=None,
                batch_margin=margin,
                max_updates=10,
                check_interval=5,
            )
