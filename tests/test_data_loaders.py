"""Tests for repro.data.loaders."""

import pytest

from repro.data.loaders import (
    EventRecord,
    events_to_dataset,
    load_event_log,
    read_events,
    save_event_log,
    write_events,
)
from repro.exceptions import DataError


def _write(path, text):
    path.write_text(text)
    return path


class TestReadEvents:
    def test_reads_three_column_rows(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u1\ti1\t10.0\nu2\ti2\t5\n")
        events = list(read_events(path))
        assert events[0] == EventRecord("u1", "i1", 10.0, None)
        assert events[1].timestamp == 5.0

    def test_reads_duration_column(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u\ti\t1\t25.5\n")
        (event,) = read_events(path)
        assert event.duration == pytest.approx(25.5)

    def test_skips_blank_lines(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u\ti\t1\n\n\nu\tj\t2\n")
        assert len(list(read_events(path))) == 2

    def test_header_skipped_when_requested(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "user\titem\tts\nu\ti\t1\n")
        assert len(list(read_events(path, has_header=True))) == 1

    def test_too_few_columns(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u\ti\n")
        with pytest.raises(DataError, match="expected at least 3"):
            list(read_events(path))

    def test_bad_timestamp_reports_line(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u\ti\t1\nu\ti\tnot-a-number\n")
        with pytest.raises(DataError, match=":2:"):
            list(read_events(path))

    def test_bad_duration(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "u\ti\t1\txx\n")
        with pytest.raises(DataError, match="duration"):
            list(read_events(path))

    def test_empty_ids_rejected(self, tmp_path):
        path = _write(tmp_path / "log.tsv", "\ti\t1\n")
        with pytest.raises(DataError, match="empty user or item"):
            list(read_events(path))

    def test_custom_delimiter(self, tmp_path):
        path = _write(tmp_path / "log.csv", "u,i,3\n")
        (event,) = read_events(path, delimiter=",")
        assert event.item == "i"


class TestEventsToDataset:
    def test_groups_and_sorts_by_timestamp(self):
        events = [
            EventRecord("u", "b", 2.0),
            EventRecord("u", "a", 1.0),
            EventRecord("v", "a", 0.0),
        ]
        dataset = events_to_dataset(events)
        u = dataset.user_vocab.index_of("u")
        items = [dataset.item_vocab.id_of(i) for i in dataset.sequence(u)]
        assert items == ["a", "b"]

    def test_stable_order_for_tied_timestamps(self):
        events = [EventRecord("u", str(i), 1.0) for i in range(5)]
        dataset = events_to_dataset(events)
        items = [dataset.item_vocab.id_of(i) for i in dataset.sequence(0)]
        assert items == ["0", "1", "2", "3", "4"]

    def test_min_duration_filters_short_listens(self):
        events = [
            EventRecord("u", "keep", 1.0, duration=45.0),
            EventRecord("u", "skip", 2.0, duration=10.0),
            EventRecord("u", "nodur", 3.0, duration=None),
        ]
        dataset = events_to_dataset(events, min_duration=30.0)
        items = [dataset.item_vocab.id_of(i) for i in dataset.sequence(0)]
        assert items == ["keep", "nodur"]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        events = [EventRecord("u", "i", 1.5, duration=90.0)]
        path = tmp_path / "log.tsv"
        assert write_events(path, events) == 1
        (loaded,) = read_events(path)
        assert loaded == events[0]

    def test_save_and_load_dataset(self, tmp_path, tiny_dataset):
        path = tmp_path / "dataset.tsv"
        n_rows = save_event_log(tiny_dataset, path)
        assert n_rows == tiny_dataset.n_consumptions()
        reloaded = load_event_log(path)
        assert reloaded.n_users == tiny_dataset.n_users
        # Per-user item-id sequences survive the round trip.
        for user_id in reloaded.user_vocab:
            new_user = reloaded.user_vocab.index_of(user_id)
            old_user = tiny_dataset.user_vocab.index_of(int(user_id))
            new_items = [
                reloaded.item_vocab.id_of(i) for i in reloaded.sequence(new_user)
            ]
            old_items = [
                str(tiny_dataset.item_vocab.id_of(i))
                for i in tiny_dataset.sequence(old_user)
            ]
            assert new_items == old_items


class TestOnErrorSkip:
    def _mostly_good_log(self, tmp_path, n_good, n_bad):
        lines = [f"u{i}\ti{i}\t{float(i)}" for i in range(n_good)]
        bad_lines = ["u\ti\tnot-a-number" for _ in range(n_bad)]
        # Bad rows first so their line numbers are predictable.
        path = tmp_path / "log.tsv"
        path.write_text("\n".join(bad_lines + lines) + "\n")
        return path

    def test_skip_quarantines_with_line_numbers(self, tmp_path):
        from repro.data.loaders import LoaderReport

        path = self._mostly_good_log(tmp_path, n_good=40, n_bad=1)
        report = LoaderReport()
        events = list(read_events(path, on_error="skip", report=report))
        assert len(events) == 40
        assert report.n_rows == 41
        assert report.n_skipped == 1
        assert report.skipped[0].line_number == 1
        assert "not-a-number" in report.skipped[0].reason
        assert "line 1" in report.render()

    def test_exactly_at_budget_passes(self, tmp_path):
        # 1 bad of 20 rows = 5% — exactly the default budget.
        path = self._mostly_good_log(tmp_path, n_good=19, n_bad=1)
        events = list(read_events(path, on_error="skip", error_budget=0.05))
        assert len(events) == 19

    def test_one_over_budget_raises(self, tmp_path):
        # 2 bad of 21 rows > 5%.
        path = self._mostly_good_log(tmp_path, n_good=19, n_bad=2)
        with pytest.raises(DataError, match="error budget"):
            list(read_events(path, on_error="skip", error_budget=0.05))

    def test_budget_error_names_first_bad_row(self, tmp_path):
        path = self._mostly_good_log(tmp_path, n_good=1, n_bad=9)
        with pytest.raises(DataError, match="line 1"):
            list(read_events(path, on_error="skip"))

    def test_default_still_raises_on_first_bad_row(self, tmp_path):
        path = self._mostly_good_log(tmp_path, n_good=40, n_bad=1)
        with pytest.raises(DataError, match=":1:"):
            list(read_events(path))

    def test_invalid_on_error_rejected(self, tmp_path):
        path = self._mostly_good_log(tmp_path, n_good=1, n_bad=0)
        with pytest.raises(ValueError, match="on_error"):
            list(read_events(path, on_error="ignore"))

    def test_invalid_budget_rejected(self, tmp_path):
        path = self._mostly_good_log(tmp_path, n_good=1, n_bad=0)
        with pytest.raises(ValueError, match="error_budget"):
            list(read_events(path, on_error="skip", error_budget=1.5))

    def test_load_event_log_forwards_policy(self, tmp_path):
        from repro.data.loaders import LoaderReport

        path = self._mostly_good_log(tmp_path, n_good=40, n_bad=1)
        report = LoaderReport()
        dataset = load_event_log(path, on_error="skip", report=report)
        assert dataset.n_users == 40
        assert report.n_skipped == 1
