"""Tests for repro.data.vocab."""

import pytest

from repro.data.vocab import Vocabulary
from repro.exceptions import VocabularyError


class TestVocabulary:
    def test_add_assigns_dense_indices_in_order(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("c") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("a") == 0
        assert len(vocab) == 1

    def test_roundtrip(self):
        vocab = Vocabulary(["x", "y", "z"])
        for raw_id in ["x", "y", "z"]:
            assert vocab.id_of(vocab.index_of(raw_id)) == raw_id

    def test_index_of_unknown_raises(self):
        with pytest.raises(VocabularyError, match="unknown id"):
            Vocabulary().index_of("missing")

    def test_id_of_out_of_range_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(VocabularyError, match="out of range"):
            vocab.id_of(1)
        with pytest.raises(VocabularyError, match="out of range"):
            vocab.id_of(-1)

    def test_contains(self):
        vocab = Vocabulary(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    def test_iteration_preserves_insertion_order(self):
        vocab = Vocabulary(["c", "a", "b"])
        assert list(vocab) == ["c", "a", "b"]

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])

    def test_identity(self):
        vocab = Vocabulary.identity(3)
        assert list(vocab) == [0, 1, 2]
        assert vocab.index_of(2) == 2

    def test_identity_rejects_negative_size(self):
        with pytest.raises(ValueError, match="non-negative"):
            Vocabulary.identity(-1)

    def test_accepts_heterogeneous_hashables(self):
        vocab = Vocabulary()
        assert vocab.add(("artist", "track")) == 0
        assert vocab.add(42) == 1
        assert vocab.index_of(("artist", "track")) == 0
