"""Tests for repro.evaluation.protocol and timing."""

import numpy as np
import pytest

from repro.config import EvaluationConfig, SplitConfig, WindowConfig
from repro.data.dataset import Dataset
from repro.data.split import temporal_split
from repro.evaluation.protocol import evaluate_recommender, evaluate_user
from repro.evaluation.timing import collect_timing_instances, time_recommender
from repro.exceptions import EvaluationError
from repro.models.base import Recommender
from repro.models.pop import PopRecommender
from repro.windows.repeat import iter_evaluation_positions


class OracleRecommender(Recommender):
    """Test double that always ranks the true next item first."""

    name = "Oracle"

    def _fit(self, split, window):
        pass

    def score(self, sequence, candidates, t):
        truth = int(sequence[t])
        return np.array([1.0 if c == truth else 0.0 for c in candidates])


class AntiOracleRecommender(OracleRecommender):
    """Always ranks the true item last."""

    name = "AntiOracle"

    def score(self, sequence, candidates, t):
        return -super().score(sequence, candidates, t)


@pytest.fixture()
def cyclic_split():
    # Cycles of period 6 over 6 items: every position beyond t=5 is a
    # valid target with gap 6 (window 10, Ω=2 -> eligible).
    dataset = Dataset.from_user_items(
        [list(range(6)) * 10, list(range(6, 12)) * 10], name="cyclic"
    )
    return temporal_split(
        dataset, SplitConfig(train_fraction=0.7, min_train_length=1)
    )


SMALL_EVAL = EvaluationConfig(
    top_ns=(1, 3), window=WindowConfig(window_size=10, min_gap=2)
)


class TestEvaluateUser:
    def test_oracle_has_perfect_precision(self, cyclic_split):
        model = OracleRecommender().fit(cyclic_split, SMALL_EVAL.window)
        counts = evaluate_user(
            model, cyclic_split, 0, SMALL_EVAL.top_ns,
            SMALL_EVAL.window.window_size, SMALL_EVAL.window.min_gap,
        )
        assert counts.n_targets > 0
        assert counts.hits[1] == counts.n_targets

    def test_anti_oracle_misses_at_1(self, cyclic_split):
        model = AntiOracleRecommender().fit(cyclic_split, SMALL_EVAL.window)
        counts = evaluate_user(
            model, cyclic_split, 0, (1,),
            SMALL_EVAL.window.window_size, SMALL_EVAL.window.min_gap,
        )
        assert counts.hits[1] == 0

    def test_target_count_matches_protocol(self, cyclic_split):
        model = OracleRecommender().fit(cyclic_split, SMALL_EVAL.window)
        counts = evaluate_user(
            model, cyclic_split, 0, (1,),
            SMALL_EVAL.window.window_size, SMALL_EVAL.window.min_gap,
        )
        expected = sum(
            1
            for _ in iter_evaluation_positions(
                cyclic_split.full_sequence(0),
                cyclic_split.train_boundary(0),
                SMALL_EVAL.window.window_size,
                SMALL_EVAL.window.min_gap,
            )
        )
        assert counts.n_targets == expected

    def test_target_filter_excludes_positions(self, cyclic_split):
        model = OracleRecommender().fit(cyclic_split, SMALL_EVAL.window)
        unfiltered = evaluate_user(
            model, cyclic_split, 0, (1,), 10, 2,
        )
        filtered = evaluate_user(
            model, cyclic_split, 0, (1,), 10, 2,
            target_filter=lambda user, t: t % 2 == 0,
        )
        assert 0 < filtered.n_targets < unfiltered.n_targets


class TestEvaluateRecommender:
    def test_oracle_scores_one(self, cyclic_split):
        model = OracleRecommender().fit(cyclic_split, SMALL_EVAL.window)
        result = evaluate_recommender(model, cyclic_split, SMALL_EVAL)
        assert result.maap[1] == pytest.approx(1.0)
        assert result.miap[1] == pytest.approx(1.0)

    def test_hits_monotone_in_cutoff(self, gowalla_split):
        model = PopRecommender().fit(gowalla_split)
        result = evaluate_recommender(model, gowalla_split)
        assert result.maap[1] <= result.maap[5] <= result.maap[10]
        assert result.miap[1] <= result.miap[5] <= result.miap[10]

    def test_results_are_deterministic(self, gowalla_split):
        model = PopRecommender().fit(gowalla_split)
        a = evaluate_recommender(model, gowalla_split)
        b = evaluate_recommender(model, gowalla_split)
        assert a.maap == b.maap


class TestTiming:
    def test_collect_instances_round_robin(self, cyclic_split):
        instances = collect_timing_instances(
            cyclic_split, SMALL_EVAL, max_instances=10
        )
        assert len(instances) == 10
        # Round-robin: the first two instances come from different users.
        assert instances[0][0] != instances[1][0]

    def test_time_recommender_reports_positive_ms(self, cyclic_split):
        model = PopRecommender().fit(cyclic_split, SMALL_EVAL.window)
        instances = collect_timing_instances(
            cyclic_split, SMALL_EVAL, max_instances=20
        )
        timing = time_recommender(
            model, cyclic_split, instances=instances, n_trials=2
        )
        assert timing.mean_ms > 0
        assert timing.n_instances == 20
        assert timing.n_trials == 2
        assert timing.method == "Pop"

    def test_no_instances_raises(self):
        dataset = Dataset.from_user_items([[0, 1, 2, 3]], n_items=4)
        split = temporal_split(
            dataset, SplitConfig(train_fraction=0.7, min_train_length=1)
        )
        with pytest.raises(EvaluationError):
            collect_timing_instances(split, SMALL_EVAL)
